"""Incremental SNAPLE index: dirty-region rescoring over a :class:`GraphDelta`.

A cold batch run executes Algorithm 2's three phases for every vertex.  When
one edge ``a -> b`` streams in, almost all of that work is still valid; the
per-vertex RNG discipline (``vertex_rng(seed, salt, vertex)``, PRs 2–5) makes
each vertex's random draws independent of every other vertex, so the affected
region can be recomputed *exactly* without replaying anyone else's stream.

The dirty closure follows the data-flow of the kernel phases:

* ``Γ̂(u)`` depends only on ``u``'s raw out-adjacency and ``u``'s own RNG
  stream → only the edge *sources* are gamma-dirty;
* ``sims(w)`` (phase 2+3a) reads ``Γ̂(w)``, ``Γ̂(x)`` for ``x ∈ Γ(w)`` and
  ``w``'s raw adjacency → dirty when ``w`` is gamma-dirty or points at a
  gamma-dirty vertex: one reverse hop;
* the ranked scores of ``t`` (phase 3b) read ``sims(t)``, ``sims(v)`` for
  ``v ∈ Γ(t)``, ``Γ̂(t)`` and ``t``'s raw adjacency → dirty within one more
  reverse hop.

So a single edge rescores the 2-reverse-hop region around its source — the
k-hop dirty set — through the same vectorized kernel calls a batch run uses
(``gas_sample_step_columnar`` / ``edge_similarities`` / ``select_klocal`` /
``combine_and_rank_columnar`` with ``rng_mode="per_vertex"`` and GAS fold
order), which is why the result is bit-identical to a cold batch ``predict``
on the final graph with the parallel ``gas``/``bsp`` backends.

:class:`PairSimilarityCache` persists the expensive unordered-pair
intersections across refreshes through the ``pair_cache`` hook of
:func:`repro.snaple.kernel.edge_similarities`, invalidating only the pairs
touching a gamma-dirty vertex.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.errors import VertexNotFoundError
from repro.graph.digraph import DiGraph
from repro.runtime.state import indptr_from_counts
from repro.serving.delta import GraphDelta
from repro.snaple import kernel
from repro.snaple.config import SnapleConfig

__all__ = ["AppliedUpdate", "IncrementalIndex", "PairSimilarityCache"]

#: Bits reserved for the high vertex id in a packed pair key.
_PAIR_SHIFT = 32


class PairSimilarityCache:
    """Unordered-pair intersection cache with per-vertex invalidation.

    Implements the ``lookup``/``store`` protocol of
    :func:`repro.snaple.kernel.edge_similarities`.  Keys pack the unordered
    vertex pair as ``low << 32 | high`` (graphs stay far below 2^31
    vertices); a reverse map from vertex to its cached keys makes
    :meth:`invalidate` proportional to the invalidated pairs, not the cache.
    """

    __slots__ = ("_inter", "_by_vertex", "hits", "misses", "invalidated")

    def __init__(self) -> None:
        self._inter: dict[int, int] = {}
        self._by_vertex: dict[int, set[int]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidated = 0

    def __len__(self) -> int:
        return len(self._inter)

    def lookup(self, low: np.ndarray, high: np.ndarray
               ) -> tuple[np.ndarray, np.ndarray]:
        """Cached intersections for each pair plus the found-mask."""
        inter = np.zeros(low.size, dtype=np.int64)
        known = np.zeros(low.size, dtype=bool)
        table = self._inter
        for position, (a, b) in enumerate(zip(low.tolist(), high.tolist())):
            value = table.get((a << _PAIR_SHIFT) | b)
            if value is not None:
                inter[position] = value
                known[position] = True
        found = int(known.sum())
        self.hits += found
        self.misses += low.size - found
        return inter, known

    def store(self, low: np.ndarray, high: np.ndarray,
              inter: np.ndarray) -> None:
        table = self._inter
        by_vertex = self._by_vertex
        for a, b, value in zip(low.tolist(), high.tolist(), inter.tolist()):
            key = (a << _PAIR_SHIFT) | b
            table[key] = value
            by_vertex.setdefault(a, set()).add(key)
            if b != a:
                by_vertex.setdefault(b, set()).add(key)

    def invalidate(self, vertices) -> int:
        """Drop every cached pair touching any of ``vertices``."""
        dropped = 0
        for v in vertices:
            v = int(v)
            keys = self._by_vertex.pop(v, None)
            if not keys:
                continue
            for key in keys:
                if self._inter.pop(key, None) is not None:
                    dropped += 1
                low, high = key >> _PAIR_SHIFT, key & ((1 << _PAIR_SHIFT) - 1)
                other = high if low == v else low
                partner = self._by_vertex.get(other)
                if partner is not None:
                    partner.discard(key)
                    if not partner:
                        del self._by_vertex[other]
        self.invalidated += dropped
        return dropped

    def clear(self) -> None:
        self._inter.clear()
        self._by_vertex.clear()


@dataclass(frozen=True)
class AppliedUpdate:
    """Outcome of one :meth:`IncrementalIndex.apply_edges` /
    :meth:`IncrementalIndex.apply_removals` call."""

    added: list[tuple[int, int]]
    gamma_dirty: np.ndarray = field(repr=False)
    rescored: np.ndarray = field(repr=False)
    removed: list[tuple[int, int]] = field(default_factory=list)

    @property
    def num_rescored(self) -> int:
        return int(self.rescored.size)


class _ScoresView(Mapping):
    """Read-only ``vertex -> {candidate: score}`` view over the index arrays."""

    __slots__ = ("_index",)

    def __init__(self, index: "IncrementalIndex") -> None:
        self._index = index

    def __getitem__(self, u: int) -> dict[int, float]:
        if not 0 <= u < self._index.num_vertices:
            raise KeyError(u)
        return self._index.scores(u)

    def __iter__(self):
        return iter(range(self._index.num_vertices))

    def __len__(self) -> int:
        return self._index.num_vertices


class IncrementalIndex:
    """Maintains every vertex's Γ̂, kept neighbors, and ranked predictions.

    Construction runs a cold build (equivalent to a batch run over the whole
    graph); :meth:`apply_edges` / :meth:`apply_removals` then keep the state
    exact under streamed edge additions and deletions by rescoring only the
    dirty closure.  All randomness is per-vertex (``rng_mode="per_vertex"``,
    GAS fold order), so the maintained predictions and scores are
    bit-identical to a cold batch ``predict(backend="gas"/"bsp", workers=N)``
    on the current merged graph.

    ``target_filter`` restricts *phase 3b only* (the ranked-score refresh) to
    a subset of vertices — the sharding hook.  Phases 1 and 2 (Γ̂ and kept
    similarities) always run over the full dirty sets because phase 3b of an
    owned target reads its neighbors' Γ̂/kept rows, which may not be owned.
    Per-vertex RNG makes each target's phase-3b computation independent, so
    a filtered index's rows for owned vertices are bit-identical to an
    unfiltered index's rows for the same vertices.
    """

    def __init__(self, graph: DiGraph | GraphDelta, config: SnapleConfig,
                 *, use_pair_cache: bool = True,
                 target_filter=None) -> None:
        self._graph = (graph if isinstance(graph, GraphDelta)
                       else GraphDelta(graph))
        self._config = config
        self._target_filter = target_filter
        self.pair_cache = PairSimilarityCache() if use_pair_cache else None
        self.rescored_total = 0
        self.refreshes = 0
        self._gamma_rows: list[np.ndarray] = []
        self._kept_ids: list[np.ndarray] = []
        self._kept_sims: list[np.ndarray] = []
        self._pred_rows: list[list[int]] = []
        self._score_ids: list[np.ndarray] = []
        self._score_vals: list[np.ndarray] = []
        self._grow_to(self._graph.num_vertices)
        everything = np.arange(self._graph.num_vertices, dtype=np.int64)
        self._refresh(everything, everything,
                      self._filter_targets(everything))

    # ------------------------------------------------------------------
    # Read surface
    # ------------------------------------------------------------------
    @property
    def graph(self) -> GraphDelta:
        return self._graph

    @property
    def config(self) -> SnapleConfig:
        return self._config

    @property
    def num_vertices(self) -> int:
        return self._graph.num_vertices

    def _check_vertex(self, u: int) -> None:
        if not 0 <= u < self._graph.num_vertices:
            raise VertexNotFoundError(u, self._graph.num_vertices)

    def predictions(self, u: int) -> list[int]:
        """The ranked top-``k`` predicted targets of ``u``."""
        self._check_vertex(u)
        return list(self._pred_rows[u])

    def scores(self, u: int) -> dict[int, float]:
        """The full candidate score map of ``u`` (materialized on demand)."""
        self._check_vertex(u)
        return dict(zip(self._score_ids[u].tolist(),
                        self._score_vals[u].tolist()))

    def prediction_scores(self, u: int) -> list[float]:
        """Scores aligned with :meth:`predictions` (candidates are sorted
        ascending inside each score row, so each lookup is a binary search)."""
        self._check_vertex(u)
        ids = self._score_ids[u]
        vals = self._score_vals[u]
        out: list[float] = []
        for candidate in self._pred_rows[u]:
            position = int(np.searchsorted(ids, candidate))
            out.append(float(vals[position]))
        return out

    def all_predictions(self) -> dict[int, list[int]]:
        return {u: list(row) for u, row in enumerate(self._pred_rows)}

    def scores_view(self) -> Mapping:
        """Lazy mapping over every vertex's score map (for RunReport)."""
        return _ScoresView(self)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def apply_edges(self, edges) -> AppliedUpdate:
        """Absorb streamed edges and rescore exactly the dirty closure."""
        added = self._graph.add_edges(edges)
        if not added:
            return AppliedUpdate(added=[],
                                 gamma_dirty=np.empty(0, dtype=np.int64),
                                 rescored=np.empty(0, dtype=np.int64))
        self._grow_to(self._graph.num_vertices)
        sources = np.asarray([u for u, _ in added], dtype=np.int64)
        return self._rescore_dirty(sources, added=added)

    def apply_removals(self, edges) -> AppliedUpdate:
        """Remove streamed edges and rescore exactly the dirty closure.

        Removing ``u -> v`` changes only ``u``'s out-adjacency (plus ``v``'s
        in-adjacency, which no kernel phase reads), so the dirty data-flow is
        identical to adding ``u -> v``: ``u`` is gamma-dirty and the same
        2-reverse-hop closure covers every affected row.  The closure is
        walked on the post-removal graph; that is safe because ``u`` itself
        is in every dirty set and no other vertex's adjacency changed.
        """
        removed = self._graph.remove_edges(edges)
        if not removed:
            return AppliedUpdate(added=[],
                                 gamma_dirty=np.empty(0, dtype=np.int64),
                                 rescored=np.empty(0, dtype=np.int64))
        sources = np.asarray([u for u, _ in removed], dtype=np.int64)
        return self._rescore_dirty(sources, removed=removed)

    def _rescore_dirty(self, sources: np.ndarray, *,
                       added: list[tuple[int, int]] | None = None,
                       removed: list[tuple[int, int]] | None = None
                       ) -> AppliedUpdate:
        gamma_dirty = np.unique(sources)
        sims_dirty = self._reverse_closure(gamma_dirty)
        targets = self._filter_targets(self._reverse_closure(sims_dirty))
        self._refresh(gamma_dirty, sims_dirty, targets)
        self.rescored_total += int(targets.size)
        return AppliedUpdate(added=added or [], gamma_dirty=gamma_dirty,
                             rescored=targets, removed=removed or [])

    def compact(self) -> DiGraph:
        """Fold the delta overlay into a fresh CSR base (no rescoring:
        the merged adjacency — and therefore every maintained row — is
        unchanged by compaction)."""
        return self._graph.compact()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _grow_to(self, n: int) -> None:
        while len(self._gamma_rows) < n:
            self._gamma_rows.append(np.empty(0, dtype=np.int64))
            self._kept_ids.append(np.empty(0, dtype=np.int64))
            self._kept_sims.append(np.empty(0, dtype=np.float64))
            self._pred_rows.append([])
            self._score_ids.append(np.empty(0, dtype=np.int64))
            self._score_vals.append(np.empty(0, dtype=np.float64))

    def _filter_targets(self, targets: np.ndarray) -> np.ndarray:
        """Apply the shard ``target_filter`` (identity when unsharded)."""
        if self._target_filter is None:
            return targets
        return np.asarray(self._target_filter(targets), dtype=np.int64)

    def _reverse_closure(self, vertices: np.ndarray) -> np.ndarray:
        """``vertices`` plus their in-neighbors on the merged graph, sorted."""
        parts = [vertices]
        for u in vertices.tolist():
            parts.append(np.asarray(self._graph.in_neighbors(u),
                                    dtype=np.int64))
        return np.unique(np.concatenate(parts))

    def _build_gamma(self) -> kernel.NeighborhoodCSR:
        n = self._graph.num_vertices
        counts = np.fromiter((row.size for row in self._gamma_rows),
                             dtype=np.int64, count=n)
        flat = (np.concatenate(self._gamma_rows) if n
                else np.empty(0, dtype=np.int64))
        return kernel.NeighborhoodCSR.from_rows(n, counts, flat)

    def _build_kept(self) -> kernel.KeptNeighbors:
        n = self._graph.num_vertices
        counts = np.fromiter((row.size for row in self._kept_ids),
                             dtype=np.int64, count=n)
        if n:
            ids = np.concatenate(self._kept_ids)
            sims = np.concatenate(self._kept_sims)
        else:
            ids = np.empty(0, dtype=np.int64)
            sims = np.empty(0, dtype=np.float64)
        return kernel.KeptNeighbors(indptr=indptr_from_counts(counts),
                                    ids=ids, sims=sims)

    def _refresh(self, gamma_dirty: np.ndarray, sims_dirty: np.ndarray,
                 targets: np.ndarray) -> None:
        """Recompute phases 1/2+3a/3b for the given (nested) dirty sets."""
        graph, config = self._graph, self._config
        counts, flat, _gathers = kernel.gas_sample_step_columnar(
            graph, config, gamma_dirty
        )
        offsets = indptr_from_counts(counts)
        for position, u in enumerate(gamma_dirty.tolist()):
            self._gamma_rows[u] = flat[offsets[position]:
                                       offsets[position + 1]].copy()
        if self.pair_cache is not None:
            self.pair_cache.invalidate(gamma_dirty.tolist())
        gamma = self._build_gamma()
        edges = kernel.edge_similarities(graph, gamma, config,
                                         rows=sims_dirty,
                                         pair_cache=self.pair_cache)
        kept = kernel.select_klocal(edges, config, rng_mode="per_vertex",
                                    rows=sims_dirty)
        for u in sims_dirty.tolist():
            start, end = int(kept.indptr[u]), int(kept.indptr[u + 1])
            self._kept_ids[u] = kept.ids[start:end].copy()
            self._kept_sims[u] = kept.sims[start:end].copy()
        kept_full = self._build_kept()
        (pred_counts, pred_flat, score_counts, score_candidates,
         score_values) = kernel.combine_and_rank_columnar(
            graph, gamma, kept_full, config, targets, neighbor_order="csr"
        )
        pred_offsets = indptr_from_counts(pred_counts)
        score_offsets = indptr_from_counts(score_counts)
        for position, u in enumerate(targets.tolist()):
            self._pred_rows[u] = pred_flat[pred_offsets[position]:
                                           pred_offsets[position + 1]].tolist()
            start, end = score_offsets[position], score_offsets[position + 1]
            self._score_ids[u] = score_candidates[start:end].copy()
            self._score_vals[u] = score_values[start:end].copy()
        self.refreshes += 1
