"""Long-lived predictor service in the Queueing-middleware shape.

One ingest path, a bounded job queue, ``n`` worker threads, no busy polling:
callers submit jobs (top-k queries or edge ingests) which block on
``queue.put`` when the bound is reached — the closed-loop backpressure of the
middleware literature — and workers block on ``queue.get`` / condition
variables, never spinning.  Queries run concurrently under a
writer-preferring read/write lock; ingests take the write side, apply the
dirty-region rescoring of :class:`~repro.serving.index.IncrementalIndex`,
and invalidate exactly the result-cache entries whose vertices were
rescored, so a cached answer is always bit-identical to a fresh one.

The public API is asynchronous (``submit_*`` returns a
:class:`concurrent.futures.Future`) with blocking conveniences
(:meth:`PredictorService.top_k`, :meth:`PredictorService.ingest`) layered on
top.
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from collections.abc import Iterable
from concurrent.futures import Future
from contextlib import contextmanager
from dataclasses import dataclass

from repro.errors import ConfigurationError, ServingError
from repro.graph.digraph import DiGraph
from repro.runtime.report import RunReport
from repro.serving.index import IncrementalIndex
from repro.serving.stages import StageRecorder
from repro.snaple.config import SnapleConfig

__all__ = ["IngestResult", "PredictorService", "RemovalResult",
           "ServiceStats", "ServingConfig", "TopKResult"]

#: Queue sentinel that tells a worker to exit its loop.
_SHUTDOWN = object()


@dataclass(frozen=True)
class ServingConfig:
    """Service shape: worker count, queue bound, compaction cadence.

    Validation happens up front at construction (the repo-wide convention):
    a service can only exist with a runnable configuration.
    """

    workers: int = 2
    queue_bound: int = 64
    compact_every: int | None = 1024
    result_cache: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(
                f"serving workers must be >= 1, got {self.workers}"
            )
        if self.queue_bound < 1:
            raise ConfigurationError(
                f"queue bound must be >= 1, got {self.queue_bound}"
            )
        if self.compact_every is not None and self.compact_every < 1:
            raise ConfigurationError(
                f"compaction cadence must be >= 1 delta edges (or None to "
                f"disable), got {self.compact_every}"
            )


@dataclass(frozen=True)
class TopKResult:
    """Answer to one ``top_k`` request."""

    vertex: int
    predicted: list[int]
    scores: list[float]
    from_cache: bool


@dataclass(frozen=True)
class IngestResult:
    """Answer to one ingest request."""

    requested: int
    added: list[tuple[int, int]]
    rescored: int
    compacted: bool


@dataclass(frozen=True)
class RemovalResult:
    """Answer to one edge-removal request."""

    requested: int
    removed: list[tuple[int, int]]
    rescored: int


@dataclass(frozen=True)
class ServiceStats:
    """Counter snapshot of a running (or stopped) service."""

    requests_served: int
    edges_ingested: int
    dirty_vertices_rescored: int
    cache_hits: int
    cache_misses: int
    pair_cache_hits: int
    pair_cache_misses: int
    compactions: int
    delta_edges: int
    queue_depth: int
    workers: int


class _ReadWriteLock:
    """Writer-preferring read/write lock built on one condition variable.

    Readers (queries) share; writers (ingests) are exclusive and take
    priority over newly arriving readers so a stream of queries cannot
    starve updates.  All waiting happens in ``Condition.wait`` — no polling.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextmanager
    def read(self):
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextmanager
    def write(self):
        with self._cond:
            self._writers_waiting += 1
            while self._writer_active or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()


class PredictorService:
    """Serves ``top_k`` queries over a live graph absorbing streamed edges.

    ``start()`` runs the cold index build and spawns the workers; use the
    service as a context manager for deterministic shutdown.  Results are
    bit-identical to a cold batch ``predict`` on the merged graph at any
    point in the stream — the incremental index's parity contract.
    """

    def __init__(self, graph: DiGraph, config: SnapleConfig | None = None,
                 *, serving: ServingConfig | None = None) -> None:
        self._graph = graph
        self._config = config or SnapleConfig.paper_default()
        self._serving = serving or ServingConfig()
        self._queue: queue_module.Queue = queue_module.Queue(
            maxsize=self._serving.queue_bound
        )
        self._lock = _ReadWriteLock()
        self._counters_lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._index: IncrementalIndex | None = None
        self._result_cache: dict[int, TopKResult] = {}
        self._requests_served = 0
        self._edges_ingested = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._compactions = 0
        self._started = False
        self._stopped = False
        self._started_at: float | None = None
        workers = self._serving.workers
        self._stage_recorders = {
            "query": StageRecorder("query", servers=workers),
            "ingest": StageRecorder("ingest", servers=workers),
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def serving_config(self) -> ServingConfig:
        return self._serving

    @property
    def config(self) -> SnapleConfig:
        return self._config

    @property
    def num_vertices(self) -> int:
        if self._index is None:
            return self._graph.num_vertices
        return self._index.num_vertices

    def start(self) -> "PredictorService":
        """Cold-build the index and spawn the worker threads."""
        if self._started:
            raise ServingError("service already started")
        self._index = IncrementalIndex(self._graph, self._config)
        self._started = True
        self._started_at = time.perf_counter()
        for worker_id in range(self._serving.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"snaple-serve-{worker_id}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self) -> None:
        """Drain the queue and join every worker (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        if not self._started:
            return
        for _ in self._threads:
            self._queue.put(_SHUTDOWN)
        for thread in self._threads:
            thread.join()

    def __enter__(self) -> "PredictorService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Submission (the one ingest path)
    # ------------------------------------------------------------------
    def _submit(self, kind: str, payload,
                timeout: float | None) -> Future:
        if not self._started:
            raise ServingError(
                "service not started; call start() or use it as a "
                "context manager"
            )
        if self._stopped:
            raise ServingError("service already stopped")
        future: Future = Future()
        try:
            self._queue.put((kind, payload, future, time.perf_counter()),
                            timeout=timeout)
        except queue_module.Full:
            raise ServingError(
                f"job queue full (bound {self._serving.queue_bound}); "
                f"submission timed out after {timeout}s"
            ) from None
        return future

    def submit_top_k(self, vertex: int, k: int | None = None, *,
                     timeout: float | None = None) -> Future:
        """Enqueue a top-k query; resolves to a :class:`TopKResult`."""
        return self._submit("top_k", (int(vertex), k), timeout)

    def submit_ingest(self, edges: Iterable[tuple[int, int]], *,
                      timeout: float | None = None) -> Future:
        """Enqueue an edge-batch ingest; resolves to an :class:`IngestResult`."""
        return self._submit("ingest", [(int(u), int(v)) for u, v in edges],
                            timeout)

    def submit_remove(self, edges: Iterable[tuple[int, int]], *,
                      timeout: float | None = None) -> Future:
        """Enqueue an edge-batch removal; resolves to a
        :class:`RemovalResult`."""
        return self._submit("remove", [(int(u), int(v)) for u, v in edges],
                            timeout)

    def top_k(self, vertex: int, k: int | None = None,
              timeout: float | None = None) -> TopKResult:
        """Blocking convenience over :meth:`submit_top_k`."""
        return self.submit_top_k(vertex, k).result(timeout)

    def ingest(self, edges: Iterable[tuple[int, int]],
               timeout: float | None = None) -> IngestResult:
        """Blocking convenience over :meth:`submit_ingest`."""
        return self.submit_ingest(edges).result(timeout)

    def ingest_edge(self, u: int, v: int,
                    timeout: float | None = None) -> IngestResult:
        return self.ingest([(u, v)], timeout=timeout)

    def remove(self, edges: Iterable[tuple[int, int]],
               timeout: float | None = None) -> RemovalResult:
        """Blocking convenience over :meth:`submit_remove`."""
        return self.submit_remove(edges).result(timeout)

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            try:
                if job is _SHUTDOWN:
                    return
                kind, payload, future, submitted = job
                dequeued = time.perf_counter()
                if not future.set_running_or_notify_cancel():
                    continue
                try:
                    if kind == "top_k":
                        result = self._handle_top_k(*payload)
                    elif kind == "remove":
                        result = self._handle_remove(payload)
                    else:
                        result = self._handle_ingest(payload)
                except BaseException as exc:  # surfaces via Future.result()
                    future.set_exception(exc)
                else:
                    future.set_result(result)
                finished = time.perf_counter()
                stage = ("query" if kind == "top_k" else "ingest")
                with self._counters_lock:
                    recorder = self._stage_recorders[stage]
                    recorder.record(dequeued - submitted, finished - dequeued)
                    recorder.sample_depth(self._queue.qsize())
            finally:
                self._queue.task_done()

    def _handle_top_k(self, vertex: int, k: int | None) -> TopKResult:
        with self._lock.read():
            index = self._index
            cached = (self._result_cache.get(vertex)
                      if self._serving.result_cache else None)
            if cached is None:
                predicted = index.predictions(vertex)  # raises for bad vertex
                scores = index.prediction_scores(vertex)
                result = TopKResult(vertex=vertex, predicted=predicted,
                                    scores=scores, from_cache=False)
                with self._counters_lock:
                    self._cache_misses += 1
                    if self._serving.result_cache:
                        self._result_cache[vertex] = result
            else:
                result = TopKResult(vertex=vertex,
                                    predicted=list(cached.predicted),
                                    scores=list(cached.scores),
                                    from_cache=True)
                with self._counters_lock:
                    self._cache_hits += 1
        if k is not None and k < len(result.predicted):
            result = TopKResult(vertex=vertex,
                                predicted=result.predicted[:k],
                                scores=result.scores[:k],
                                from_cache=result.from_cache)
        with self._counters_lock:
            self._requests_served += 1
        return result

    def _handle_ingest(self, edges: list[tuple[int, int]]) -> IngestResult:
        with self._lock.write():
            update = self._index.apply_edges(edges)
            compacted = False
            cadence = self._serving.compact_every
            if (cadence is not None
                    and self._index.graph.num_delta_edges >= cadence):
                self._index.compact()
                compacted = True
            for u in update.rescored.tolist():
                self._result_cache.pop(u, None)
        with self._counters_lock:
            self._edges_ingested += len(update.added)
            self._compactions += int(compacted)
        return IngestResult(requested=len(edges), added=update.added,
                            rescored=update.num_rescored,
                            compacted=compacted)

    def _handle_remove(self, edges: list[tuple[int, int]]) -> RemovalResult:
        with self._lock.write():
            update = self._index.apply_removals(edges)
            for u in update.rescored.tolist():
                self._result_cache.pop(u, None)
        return RemovalResult(requested=len(edges), removed=update.removed,
                             rescored=update.num_rescored)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stage_stats(self) -> dict[str, dict]:
        """Per-stage queue/service-time snapshots (see
        :mod:`repro.serving.stages`)."""
        with self._counters_lock:
            return {name: recorder.snapshot()
                    for name, recorder in self._stage_recorders.items()}

    def reset_stage_stats(self) -> None:
        """Restart stage sampling (the load generator's warmup boundary)."""
        with self._counters_lock:
            for recorder in self._stage_recorders.values():
                recorder.reset()

    def stats(self) -> ServiceStats:
        """Consistent counter snapshot (takes the read side of the lock)."""
        with self._lock.read():
            index = self._index
            pair_cache = index.pair_cache if index is not None else None
            with self._counters_lock:
                return ServiceStats(
                    requests_served=self._requests_served,
                    edges_ingested=self._edges_ingested,
                    dirty_vertices_rescored=(
                        index.rescored_total if index is not None else 0
                    ),
                    cache_hits=self._cache_hits,
                    cache_misses=self._cache_misses,
                    pair_cache_hits=(pair_cache.hits if pair_cache else 0),
                    pair_cache_misses=(
                        pair_cache.misses if pair_cache else 0
                    ),
                    compactions=self._compactions,
                    delta_edges=(
                        index.graph.num_delta_edges
                        if index is not None else 0
                    ),
                    queue_depth=self._queue.qsize(),
                    workers=self._serving.workers,
                )

    def report(self) -> RunReport:
        """The service's accounting as a standard :class:`RunReport`.

        ``extra`` carries the serving counters (``requests_served``,
        ``edges_ingested``, ``dirty_vertices_rescored``,
        ``cache_hits``/``cache_misses``, ``pair_cache_hits``/``misses``,
        ``compactions``, ``delta_edges``); ``workers`` is the service's
        worker-thread count and ``wall_clock_seconds`` its uptime.
        """
        if self._index is None:
            raise ServingError("service not started; no report available")
        stats = self.stats()
        uptime = (time.perf_counter() - self._started_at
                  if self._started_at is not None else 0.0)
        with self._lock.read():
            predictions = self._index.all_predictions()
            scores = self._index.scores_view()
        return RunReport(
            backend="serving",
            predictions=predictions,
            scores=scores,
            wall_clock_seconds=uptime,
            workers=stats.workers,
            extra={
                "requests_served": float(stats.requests_served),
                "edges_ingested": float(stats.edges_ingested),
                "dirty_vertices_rescored": float(
                    stats.dirty_vertices_rescored
                ),
                "cache_hits": float(stats.cache_hits),
                "cache_misses": float(stats.cache_misses),
                "pair_cache_hits": float(stats.pair_cache_hits),
                "pair_cache_misses": float(stats.pair_cache_misses),
                "compactions": float(stats.compactions),
                "delta_edges": float(stats.delta_edges),
                "queue_bound": float(self._serving.queue_bound),
            },
        )
