"""Closed-loop load generator with windowed instrumentation and a stable cut.

Mirrors the memtier/middleware benchmarking methodology: ``clients`` closed
loops (each with exactly one outstanding request) drive the service for
``windows`` fixed-length instrumentation windows; completions are bucketed
into the window they finish in; warmup/cooldown windows are cut before the
stable aggregates are computed, so cold caches and ragged shutdown don't
pollute the reported throughput and percentiles.

The generator is deliberately service-shaped, not wall-clock-shaped: clients
block inside :meth:`~repro.serving.service.PredictorService.top_k` /
``ingest`` (closed loop, natural backpressure through the bounded queue) and
never busy-wait.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.serving.service import PredictorService
from repro.serving.stages import operational_analysis

__all__ = ["LoadConfig", "LoadGenerator", "LoadResult", "WindowStats"]


@dataclass(frozen=True)
class LoadConfig:
    """Shape of one closed-loop load run (validated up front)."""

    clients: int = 2
    windows: int = 5
    window_seconds: float = 1.0
    warmup_windows: int = 1
    cooldown_windows: int = 0
    ingest_fraction: float = 0.0
    seed: int = 0
    k: int | None = None

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ConfigurationError(
                f"load clients must be >= 1, got {self.clients}"
            )
        if self.windows < 1:
            raise ConfigurationError(
                f"load windows must be >= 1, got {self.windows}"
            )
        if self.window_seconds <= 0:
            raise ConfigurationError(
                f"window length must be positive, got {self.window_seconds}"
            )
        if not 0.0 <= self.ingest_fraction <= 1.0:
            raise ConfigurationError(
                f"ingest fraction must lie in [0, 1], got "
                f"{self.ingest_fraction}"
            )
        if self.warmup_windows < 0 or self.cooldown_windows < 0:
            raise ConfigurationError("warmup/cooldown windows must be >= 0")
        if self.warmup_windows + self.cooldown_windows >= self.windows:
            raise ConfigurationError(
                f"stable cut is empty: warmup {self.warmup_windows} + "
                f"cooldown {self.cooldown_windows} >= windows {self.windows}"
            )


@dataclass(frozen=True)
class WindowStats:
    """One instrumentation window's aggregates."""

    window: int
    operations: int
    queries: int
    ingests: int
    throughput_ops: float
    p50_ms: float
    p99_ms: float


@dataclass(frozen=True)
class LoadResult:
    """Windowed trajectory plus the stable-window aggregates."""

    offered_clients: int
    window_seconds: float
    ingest_fraction: float
    windows: list[WindowStats] = field(default_factory=list)
    stable_windows: int = 0
    stable_operations: int = 0
    stable_throughput_ops: float = 0.0
    stable_p50_ms: float = 0.0
    stable_p99_ms: float = 0.0
    stable_mean_ms: float = 0.0
    total_operations: int = 0
    total_queries: int = 0
    total_ingests: int = 0
    #: Raw per-stage queue/service-time snapshots, when the service exposes
    #: ``stage_stats()`` (both serving planes do).
    stages: dict | None = None
    #: Operational-law table over the run: per-stage utilization, Little's
    #: law fit, and the bottleneck stage (see repro.serving.stages).
    operational: dict | None = None

    def to_dict(self) -> dict:
        return asdict(self)


def _percentiles_ms(latencies: list[float]) -> tuple[float, float, float]:
    """(p50, p99, mean) of the latency samples, in milliseconds."""
    if not latencies:
        return 0.0, 0.0, 0.0
    array = np.asarray(latencies, dtype=np.float64) * 1000.0
    p50, p99 = np.percentile(array, [50.0, 99.0])
    return float(p50), float(p99), float(array.mean())


class LoadGenerator:
    """Drives a started :class:`PredictorService` with a closed-loop mix."""

    def __init__(self, service: PredictorService, config: LoadConfig) -> None:
        self._service = service
        self._config = config

    def run(self) -> LoadResult:
        config = self._config
        service = self._service
        num_vertices = service.num_vertices
        duration = config.windows * config.window_seconds
        reset_stages = getattr(service, "reset_stage_stats", None)
        if reset_stages is not None:
            reset_stages()
        run_started = time.perf_counter()
        barrier = threading.Barrier(config.clients)
        records: list[list[tuple[int, float, bool]]] = [
            [] for _ in range(config.clients)
        ]

        def client(client_id: int, out: list) -> None:
            rng = random.Random(config.seed * 1_000_003 + client_id)
            barrier.wait()
            origin = time.perf_counter()
            while True:
                now = time.perf_counter()
                if now - origin >= duration:
                    break
                is_ingest = rng.random() < config.ingest_fraction
                if is_ingest:
                    u = rng.randrange(num_vertices)
                    v = rng.randrange(num_vertices)
                    began = time.perf_counter()
                    service.ingest([(u, v)])
                else:
                    u = rng.randrange(num_vertices)
                    began = time.perf_counter()
                    service.top_k(u, k=config.k)
                finished = time.perf_counter()
                window = int((finished - origin) / config.window_seconds)
                if 0 <= window < config.windows:
                    out.append((window, finished - began, is_ingest))

        threads = [
            threading.Thread(target=client, args=(client_id, out),
                             name=f"snaple-load-{client_id}")
            for client_id, out in enumerate(records)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        run_elapsed = time.perf_counter() - run_started

        stage_stats = getattr(service, "stage_stats", None)
        stage_snapshots = stage_stats() if stage_stats is not None else None
        operational = (operational_analysis(stage_snapshots, run_elapsed)
                       if stage_snapshots else None)

        by_window: list[list[tuple[float, bool]]] = [
            [] for _ in range(config.windows)
        ]
        for out in records:
            for window, latency, is_ingest in out:
                by_window[window].append((latency, is_ingest))

        window_stats: list[WindowStats] = []
        for window, samples in enumerate(by_window):
            latencies = [latency for latency, _ in samples]
            ingests = sum(1 for _, is_ingest in samples if is_ingest)
            p50, p99, _mean = _percentiles_ms(latencies)
            window_stats.append(WindowStats(
                window=window,
                operations=len(samples),
                queries=len(samples) - ingests,
                ingests=ingests,
                throughput_ops=len(samples) / config.window_seconds,
                p50_ms=p50,
                p99_ms=p99,
            ))

        stable_lo = config.warmup_windows
        stable_hi = config.windows - config.cooldown_windows
        stable_samples = [
            sample for window in range(stable_lo, stable_hi)
            for sample in by_window[window]
        ]
        stable_latencies = [latency for latency, _ in stable_samples]
        stable_p50, stable_p99, stable_mean = _percentiles_ms(stable_latencies)
        stable_span = (stable_hi - stable_lo) * config.window_seconds
        total = sum(stats.operations for stats in window_stats)
        total_ingests = sum(stats.ingests for stats in window_stats)
        return LoadResult(
            offered_clients=config.clients,
            window_seconds=config.window_seconds,
            ingest_fraction=config.ingest_fraction,
            windows=window_stats,
            stable_windows=stable_hi - stable_lo,
            stable_operations=len(stable_samples),
            stable_throughput_ops=len(stable_samples) / stable_span,
            stable_p50_ms=stable_p50,
            stable_p99_ms=stable_p99,
            stable_mean_ms=stable_mean,
            total_operations=total,
            total_queries=total - total_ingests,
            total_ingests=total_ingests,
            stages=stage_snapshots,
            operational=operational,
        )
