"""Sharded multi-process serving plane: shard workers behind a dispatcher.

:class:`~repro.serving.service.PredictorService` runs worker *threads*: the
GIL serializes every rescoring kernel call and one writer-preferring lock
guards one :class:`~repro.serving.index.IncrementalIndex`.  This module is
the front-end-dispatcher / shared-nothing-back-end shape of the middleware
literature instead: ``N`` shard **processes**, each owning the predictions of
the vertices :func:`~repro.runtime.partition.partition_vertices` assigns to
it, behind a dispatcher that routes queries to owners and fans updates out.

How sharding preserves bit-exact parity
---------------------------------------
Phase 3b of the SNAPLE kernel (ranked scores of a target ``t``) reads the
Γ̂/kept rows of ``t``'s *neighbors*, which may be owned by other shards — so
the phase-1/2 planes cannot be partitioned.  Every shard therefore holds the
full :class:`~repro.serving.delta.GraphDelta` and refreshes Γ̂ and the kept
similarities for the complete dirty sets of every update (which is why
updates fan out to **all** shards: skipping one would leave stale Γ̂/kept
rows that a later overlapping closure would silently read).  Only phase 3b —
the expensive ranked-score refresh — is restricted, through the index's
``target_filter``, to the shard's owned slice of the 2-reverse-hop dirty
closure; shards outside the closure rescore nothing.  Per-vertex RNG makes
each target's phase-3b computation independent, so a shard's rows for its
owned vertices are bit-identical to an unsharded index's — and the owned
slices are disjoint and covering, so the sharded service answers exactly
like the single-process service and a cold batch ``predict`` for any shard
count.

Transport and batching
----------------------
The base CSR graph crosses the process boundary once, as a shared-memory
segment (:func:`repro.runtime.shm.share_graph` / ``attach_graph`` — shards
hold zero-copy read-only views), with an edge-array pickle fallback when shm
is unavailable.  Requests flow through per-shard bounded queues; the
dispatcher coalesces consecutive ``top_k`` submissions into one batch
message per shard, amortizing queue IPC, and flushes pending batches before
any update fan-out so every shard observes the submission order (FIFO per
shard queue ⇒ read-your-writes).  An update's future resolves only after
*all* shards acknowledged it.

Every pipeline stage — dispatch queue, shard queue, rescore, reply — records
queue-length and wait/service samples (:mod:`repro.serving.stages`), which
:class:`~repro.serving.loadgen.LoadGenerator` turns into the operational-law
bottleneck table in ``BENCH_serving.json``.

Crash and leak safety: the parent owns the :class:`ShmRegistry`, so
``close()`` unlinks the graph segment even after a SIGKILLed shard; the
collector detects dead shards and fails every pending future with
:class:`~repro.errors.ServingError` instead of hanging.
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from collections.abc import Iterable
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import (
    ConfigurationError,
    GraphError,
    ServingError,
    VertexNotFoundError,
)
from repro.graph.digraph import DiGraph
from repro.runtime import shm as shm_module
from repro.runtime.parallel import pool_context
from repro.runtime.partition import partition_vertices
from repro.serving.index import IncrementalIndex
from repro.serving.service import (
    IngestResult,
    RemovalResult,
    ServingConfig,
    TopKResult,
)
from repro.serving.stages import StageRecorder, merge_snapshots
from repro.snaple.config import SnapleConfig

__all__ = ["ShardMap", "ShardedPredictorService", "ShardedServiceStats"]

#: Dispatcher-loop sentinel (never crosses the process boundary).
_STOP = object()

#: How long the collector sleeps on an empty response queue before checking
#: shard health; bounds crash-detection latency.
_POLL_SECONDS = 0.2

#: Default cap on coalesced top-k requests per dispatch flush.
_DEFAULT_BATCH_MAX = 64


@dataclass(frozen=True, eq=False)
class ShardMap:
    """Vertex → shard assignment, consistent for vertices that don't exist yet.

    The base range uses the precomputed
    :func:`~repro.runtime.partition.partition_vertices` assignment; vertices
    grown by streamed edges fall back to the same multiplicative hash the
    default :class:`~repro.runtime.partition.HashVertexPartitioner` applies,
    so the dispatcher and every shard agree on ownership without any
    coordination as the graph grows.
    """

    num_shards: int
    seed: int
    base_assignment: np.ndarray

    def owners(self, vertices: np.ndarray) -> np.ndarray:
        vertices = np.asarray(vertices, dtype=np.int64)
        out = np.empty(vertices.shape, dtype=np.int64)
        base = self.base_assignment
        within = vertices < base.size
        out[within] = base[vertices[within]]
        if not within.all():
            ids = vertices[~within]
            mixed = ((ids * np.int64(2654435761) + np.int64(self.seed))
                     & np.int64(0x7FFFFFFF))
            out[~within] = mixed % self.num_shards
        return out

    def owner(self, vertex: int) -> int:
        return int(self.owners(np.asarray([vertex], dtype=np.int64))[0])

    def target_filter(self, shard_id: int):
        """The :class:`IncrementalIndex` ``target_filter`` for one shard."""
        def owned_only(targets: np.ndarray) -> np.ndarray:
            targets = np.asarray(targets, dtype=np.int64)
            return targets[self.owners(targets) == shard_id]
        return owned_only


@dataclass(frozen=True)
class ShardedServiceStats:
    """Dispatcher-side counter snapshot of a sharded service."""

    requests_served: int
    edges_ingested: int
    edges_removed: int
    updates_applied: int
    batches_dispatched: int
    mean_batch_size: float
    compactions: int
    shards: int
    queue_depth: int
    pending: int


def _materialize_graph(payload: tuple) -> Any:
    """Rebuild the base graph inside a shard from its transport payload."""
    kind = payload[0]
    if kind == "shm":
        return shm_module.attach_graph(payload[1],
                                       shm_module.attachment_cache())
    _, num_vertices, src, dst = payload
    return DiGraph(num_vertices, src, dst)


def _describe(exc: BaseException) -> str:
    """Exceptions cross the process boundary as strings — some repo
    exception types take multiple constructor arguments and would break
    pickling mid-flight."""
    return f"{type(exc).__name__}: {exc}"


def _shard_main(shard_id: int, graph_payload: tuple, config: SnapleConfig,
                shard_map: ShardMap, compact_every: int | None,
                request_queue, response_queue) -> None:
    """One shard process: cold-build, then serve its request queue forever.

    All timestamps use ``time.perf_counter`` — ``CLOCK_MONOTONIC`` on Linux,
    comparable across processes — so cross-process queue waits are real.
    """
    try:
        graph = _materialize_graph(graph_payload)
        index = IncrementalIndex(graph, config,
                                 target_filter=shard_map.target_filter(shard_id))
        query_stage = StageRecorder("shard_queue")
        rescore_stage = StageRecorder("rescore")
        response_queue.put(("ready", shard_id))
        while True:
            message = request_queue.get()
            received = time.perf_counter()
            kind = message[0]
            if kind == "stop":
                response_queue.put(("stopped", shard_id))
                return
            if kind == "batch":
                _, entries, send_ts = message
                try:
                    query_stage.sample_depth(request_queue.qsize())
                except NotImplementedError:  # pragma: no cover - macOS
                    pass
                results = []
                for req_id, vertex, k in entries:
                    try:
                        predicted = index.predictions(vertex)
                        scores = index.prediction_scores(vertex)
                        if k is not None and k < len(predicted):
                            predicted = predicted[:k]
                            scores = scores[:k]
                        results.append((req_id, "ok",
                                        (vertex, predicted, scores)))
                    except BaseException as exc:
                        results.append((req_id, "err", _describe(exc)))
                done = time.perf_counter()
                each = (done - received) / max(len(entries), 1)
                for _ in entries:
                    query_stage.record(received - send_ts, each)
                response_queue.put(("results", shard_id, results, done))
            elif kind in ("ingest", "remove"):
                _, update_id, edges, send_ts = message
                try:
                    if kind == "ingest":
                        update = index.apply_edges(edges)
                        compacted = False
                        if (compact_every is not None
                                and index.graph.num_delta_edges
                                >= compact_every):
                            index.compact()
                            compacted = True
                        payload: Any = {"added": update.added,
                                        "rescored": update.num_rescored,
                                        "compacted": compacted}
                    else:
                        update = index.apply_removals(edges)
                        payload = {"removed": update.removed,
                                   "rescored": update.num_rescored,
                                   "compacted": False}
                    status = "ok"
                except BaseException as exc:
                    status, payload = "err", _describe(exc)
                done = time.perf_counter()
                rescore_stage.record(received - send_ts, done - received)
                response_queue.put(("update_ack", shard_id, update_id,
                                    status, payload))
            elif kind == "control":
                _, token, command = message
                if command == "stats":
                    payload = {
                        "shard_queue": query_stage.snapshot(),
                        "rescore": rescore_stage.snapshot(),
                        "rescored_total": index.rescored_total,
                        "delta_edges": index.graph.num_delta_edges,
                        "num_vertices": index.num_vertices,
                    }
                else:  # reset_stages
                    query_stage.reset()
                    rescore_stage.reset()
                    payload = True
                response_queue.put(("control_ack", shard_id, token, payload))
    except BaseException as exc:  # pragma: no cover - crash path
        try:
            response_queue.put(("crashed", shard_id, _describe(exc)))
        except Exception:
            pass
        raise


class _Pending:
    """One in-flight request: its future plus bookkeeping for fan-outs."""

    __slots__ = ("future", "kind", "requested", "acks", "payloads", "error")

    def __init__(self, future: Future, kind: str, requested: int = 0) -> None:
        self.future = future
        self.kind = kind
        self.requested = requested
        self.acks = 0
        self.payloads: dict[int, Any] = {}
        self.error: str | None = None


class ShardedPredictorService:
    """Serves ``top_k`` over ``N`` shard processes behind one dispatcher.

    API mirrors :class:`~repro.serving.service.PredictorService` (``start``/
    ``stop``, ``submit_top_k``/``top_k``, ``submit_ingest``/``ingest``,
    ``submit_remove``/``remove``, context manager); answers are bit-identical
    to it — and to a cold batch ``predict`` on the merged graph — for any
    shard count, including across compaction boundaries.
    """

    def __init__(self, graph: DiGraph, config: SnapleConfig | None = None,
                 *, shards: int = 2, serving: ServingConfig | None = None,
                 partition_seed: int = 0,
                 batch_max: int = _DEFAULT_BATCH_MAX) -> None:
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if batch_max < 1:
            raise ConfigurationError(
                f"batch_max must be >= 1, got {batch_max}"
            )
        self._graph = graph
        self._config = config or SnapleConfig.paper_default()
        self._serving = serving or ServingConfig()
        self._num_shards = int(shards)
        self._batch_max = int(batch_max)
        self._partition_seed = int(partition_seed)
        partition = partition_vertices(graph, self._num_shards,
                                       seed=self._partition_seed)
        self._shard_map = ShardMap(num_shards=self._num_shards,
                                   seed=self._partition_seed,
                                   base_assignment=partition.vertex_machine)
        self._submit_queue: queue_module.Queue = queue_module.Queue(
            maxsize=self._serving.queue_bound
        )
        self._lock = threading.Lock()
        self._pending: dict[int, _Pending] = {}
        self._next_id = 0
        self._num_vertices = graph.num_vertices
        self._requests_served = 0
        self._edges_ingested = 0
        self._edges_removed = 0
        self._updates_applied = 0
        self._batches_dispatched = 0
        self._batched_requests = 0
        self._compactions = 0
        self._stage_dispatch = StageRecorder("dispatch")
        self._stage_reply = StageRecorder("reply")
        self._registry: shm_module.ShmRegistry | None = None
        self._processes: list = []
        self._request_queues: list = []
        self._response_queue = None
        self._dispatcher: threading.Thread | None = None
        self._collector: threading.Thread | None = None
        self._ready = threading.Event()
        self._ready_count = 0
        self._stopped_count = 0
        self._collector_stop = threading.Event()
        self._started = False
        self._closed = False
        self._failed: str | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self._num_shards

    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    @property
    def config(self) -> SnapleConfig:
        return self._config

    @property
    def serving_config(self) -> ServingConfig:
        return self._serving

    @property
    def shard_map(self) -> ShardMap:
        return self._shard_map

    def start(self, *, ready_timeout: float = 300.0
              ) -> "ShardedPredictorService":
        """Share the graph, spawn the shards, wait for every cold build."""
        if self._started:
            raise ServingError("service already started")
        self._started = True
        use_shm = shm_module.shm_available() and not shm_module.shm_disabled()
        if use_shm:
            self._registry = shm_module.ShmRegistry()
            graph_payload: tuple = (
                "shm", shm_module.share_graph(self._registry, self._graph)
            )
        else:
            src, dst = self._graph.edge_arrays()
            graph_payload = ("arrays", self._graph.num_vertices, src, dst)
        try:
            ctx = pool_context()
            self._response_queue = ctx.Queue()
            for shard_id in range(self._num_shards):
                request_queue = ctx.Queue(maxsize=self._serving.queue_bound)
                process = ctx.Process(
                    target=_shard_main,
                    args=(shard_id, graph_payload, self._config,
                          self._shard_map, self._serving.compact_every,
                          request_queue, self._response_queue),
                    name=f"snaple-shard-{shard_id}",
                    daemon=True,
                )
                process.start()
                self._request_queues.append(request_queue)
                self._processes.append(process)
            self._collector = threading.Thread(
                target=self._collect_loop, name="snaple-shard-collector",
                daemon=True,
            )
            self._collector.start()
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="snaple-shard-dispatcher",
                daemon=True,
            )
            self._dispatcher.start()
            deadline = time.perf_counter() + ready_timeout
            while not self._ready.wait(timeout=_POLL_SECONDS):
                dead = [p.name for p in self._processes
                        if p.exitcode is not None]
                if dead:
                    raise ServingError(
                        f"shard(s) died during cold build: {dead}"
                    )
                if time.perf_counter() > deadline:
                    raise ServingError(
                        f"shards not ready after {ready_timeout}s"
                    )
        except BaseException:
            self.close()
            raise
        return self

    def close(self) -> None:
        """Stop shards, join helpers, fail stragglers, unlink shm
        (idempotent; runs fully even after a shard crash)."""
        if self._closed:
            return
        self._closed = True
        try:
            if self._dispatcher is not None:
                while self._dispatcher.is_alive():
                    try:
                        self._submit_queue.put(_STOP, timeout=1.0)
                        break
                    except queue_module.Full:
                        continue
                self._dispatcher.join(timeout=30.0)
            for process in self._processes:
                process.join(timeout=10.0)
            for process in self._processes:
                if process.exitcode is None:
                    process.terminate()
                    process.join(timeout=5.0)
                if process.exitcode is None:  # pragma: no cover - stuck
                    process.kill()
                    process.join(timeout=5.0)
            self._collector_stop.set()
            if self._collector is not None:
                self._collector.join(timeout=30.0)
            self._fail_pending(ServingError("service closed"))
            for q in self._request_queues:
                q.close()
                q.cancel_join_thread()
            if self._response_queue is not None:
                self._response_queue.close()
                self._response_queue.cancel_join_thread()
        finally:
            if self._registry is not None:
                self._registry.close()
                self._registry = None

    # PredictorService API compatibility.
    stop = close

    def __enter__(self) -> "ShardedPredictorService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _new_pending(self, kind: str, requested: int = 0
                     ) -> tuple[int, Future]:
        future: Future = Future()
        with self._lock:
            self._next_id += 1
            request_id = self._next_id
            self._pending[request_id] = _Pending(future, kind, requested)
        return request_id, future

    def _enqueue(self, item: tuple, timeout: float | None) -> None:
        try:
            self._submit_queue.put(item, timeout=timeout)
        except queue_module.Full:
            request_id = item[1]
            with self._lock:
                self._pending.pop(request_id, None)
            raise ServingError(
                f"dispatch queue full (bound {self._serving.queue_bound}); "
                f"submission timed out after {timeout}s"
            ) from None

    def _check_serving(self) -> None:
        if not self._started:
            raise ServingError(
                "service not started; call start() or use it as a "
                "context manager"
            )
        if self._closed:
            raise ServingError("service already stopped")
        if self._failed is not None:
            raise ServingError(f"service failed: {self._failed}")

    def submit_top_k(self, vertex: int, k: int | None = None, *,
                     timeout: float | None = None) -> Future:
        """Enqueue a top-k query; resolves to a :class:`TopKResult`."""
        self._check_serving()
        vertex = int(vertex)
        request_id, future = self._new_pending("top_k")
        if not 0 <= vertex < self._num_vertices:
            # Validated dispatcher-side: the error type is not picklable and
            # the owning shard is undefined for an out-of-range vertex.
            with self._lock:
                self._pending.pop(request_id, None)
            future.set_exception(
                VertexNotFoundError(vertex, self._num_vertices)
            )
            return future
        self._enqueue(("top_k", request_id, vertex, k,
                       time.perf_counter()), timeout)
        return future

    def _submit_update(self, kind: str, edges: Iterable[tuple[int, int]],
                       timeout: float | None) -> Future:
        self._check_serving()
        edge_list = [(int(u), int(v)) for u, v in edges]
        update_id, future = self._new_pending(kind, requested=len(edge_list))
        bad = next(((u, v) for u, v in edge_list if u < 0 or v < 0), None)
        if bad is not None:
            with self._lock:
                self._pending.pop(update_id, None)
            future.set_exception(GraphError(
                f"edge endpoints must be non-negative, got {bad}"
            ))
            return future
        if kind == "ingest" and edge_list:
            grown = max(max(u, v) for u, v in edge_list) + 1
            with self._lock:
                # Safe pre-dispatch: the submit queue is FIFO, so any query
                # for a grown vertex submitted after this call reaches its
                # owner shard behind the ingest that created the vertex.
                self._num_vertices = max(self._num_vertices, grown)
        self._enqueue((kind, update_id, edge_list, time.perf_counter()),
                      timeout)
        return future

    def submit_ingest(self, edges: Iterable[tuple[int, int]], *,
                      timeout: float | None = None) -> Future:
        """Enqueue an edge-batch ingest; resolves to an
        :class:`IngestResult` once **every** shard acknowledged."""
        return self._submit_update("ingest", edges, timeout)

    def submit_remove(self, edges: Iterable[tuple[int, int]], *,
                      timeout: float | None = None) -> Future:
        """Enqueue an edge-batch removal; resolves to a
        :class:`RemovalResult` once every shard acknowledged."""
        return self._submit_update("remove", edges, timeout)

    def top_k(self, vertex: int, k: int | None = None,
              timeout: float | None = None) -> TopKResult:
        return self.submit_top_k(vertex, k).result(timeout)

    def ingest(self, edges: Iterable[tuple[int, int]],
               timeout: float | None = None) -> IngestResult:
        return self.submit_ingest(edges).result(timeout)

    def ingest_edge(self, u: int, v: int,
                    timeout: float | None = None) -> IngestResult:
        return self.ingest([(u, v)], timeout=timeout)

    def remove(self, edges: Iterable[tuple[int, int]],
               timeout: float | None = None) -> RemovalResult:
        return self.submit_remove(edges).result(timeout)

    # ------------------------------------------------------------------
    # Dispatcher thread
    # ------------------------------------------------------------------
    def _put_to_shard(self, shard_id: int, message: tuple) -> bool:
        """Bounded put that never deadlocks on a dead shard."""
        process = self._processes[shard_id]
        request_queue = self._request_queues[shard_id]
        while True:
            try:
                request_queue.put(message, timeout=0.5)
                return True
            except queue_module.Full:
                if process.exitcode is not None:
                    self._mark_failed(
                        f"shard {shard_id} died with its queue full"
                    )
                    return False

    def _broadcast(self, message: tuple) -> None:
        for shard_id in range(self._num_shards):
            self._put_to_shard(shard_id, message)

    def _flush_batches(self, batches: dict[int, list]) -> int:
        flushed = 0
        send_ts = time.perf_counter()
        for shard_id, entries in batches.items():
            if not entries:
                continue
            message = ("batch",
                       [(req_id, vertex, k)
                        for req_id, vertex, k, _, _ in entries],
                       send_ts)
            self._put_to_shard(shard_id, message)
            with self._lock:
                for _, _, _, submitted, dequeued in entries:
                    self._stage_dispatch.record(dequeued - submitted,
                                                send_ts - dequeued)
                self._batches_dispatched += 1
                self._batched_requests += len(entries)
            flushed += len(entries)
            entries.clear()
        return flushed

    def _dispatch_loop(self) -> None:
        batches: dict[int, list] = {
            shard_id: [] for shard_id in range(self._num_shards)
        }
        batched = 0
        item = self._submit_queue.get()
        while True:
            dequeued = time.perf_counter()
            if item is _STOP:
                self._flush_batches(batches)
                self._broadcast(("stop",))
                return
            with self._lock:
                self._stage_dispatch.sample_depth(self._submit_queue.qsize())
            kind = item[0]
            if kind == "top_k":
                _, request_id, vertex, k, submitted = item
                owner = self._shard_map.owner(vertex)
                batches[owner].append((request_id, vertex, k, submitted,
                                       dequeued))
                batched += 1
                if batched >= self._batch_max:
                    self._flush_batches(batches)
                    batched = 0
            else:
                # Updates and control messages are ordering barriers: flush
                # queued queries first so every shard sees submission order.
                self._flush_batches(batches)
                batched = 0
                send_ts = time.perf_counter()
                if kind in ("ingest", "remove"):
                    _, update_id, edge_list, submitted = item
                    with self._lock:
                        self._stage_dispatch.record(dequeued - submitted,
                                                    send_ts - dequeued)
                    self._broadcast((kind, update_id, edge_list, send_ts))
                else:  # control
                    _, token, command, _submitted = item
                    self._broadcast(("control", token, command))
            if batched:
                try:
                    item = self._submit_queue.get_nowait()
                    continue
                except queue_module.Empty:
                    self._flush_batches(batches)
                    batched = 0
            item = self._submit_queue.get()

    # ------------------------------------------------------------------
    # Collector thread
    # ------------------------------------------------------------------
    def _pop_pending(self, request_id: int) -> _Pending | None:
        with self._lock:
            return self._pending.pop(request_id, None)

    def _mark_failed(self, reason: str) -> None:
        with self._lock:
            if self._failed is None:
                self._failed = reason
        self._fail_pending(ServingError(reason))

    def _fail_pending(self, error: ServingError) -> None:
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for entry in pending:
            if not entry.future.done():
                entry.future.set_exception(error)

    def _check_shard_health(self) -> None:
        if self._collector_stop.is_set():
            return
        dead = [process.name for process in self._processes
                if process.exitcode is not None]
        if dead:
            with self._lock:
                has_pending = bool(self._pending)
            if has_pending or not self._ready.is_set():
                self._mark_failed(f"shard process(es) died: {dead}")

    def _resolve_update(self, entry: _Pending) -> None:
        if entry.error is not None:
            entry.future.set_exception(ServingError(entry.error))
            return
        payloads = entry.payloads
        rescored = sum(p["rescored"] for p in payloads.values())
        compacted = any(p["compacted"] for p in payloads.values())
        first = payloads[min(payloads)]
        with self._lock:
            self._updates_applied += 1
            self._compactions += int(compacted)
        if entry.kind == "ingest":
            added = first["added"]
            with self._lock:
                self._edges_ingested += len(added)
            entry.future.set_result(IngestResult(
                requested=entry.requested, added=added,
                rescored=rescored, compacted=compacted,
            ))
        else:
            removed = first["removed"]
            with self._lock:
                self._edges_removed += len(removed)
            entry.future.set_result(RemovalResult(
                requested=entry.requested, removed=removed,
                rescored=rescored,
            ))

    def _collect_loop(self) -> None:
        while True:
            try:
                message = self._response_queue.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                if self._collector_stop.is_set():
                    return
                self._check_shard_health()
                continue
            except (OSError, ValueError, EOFError):
                # Queue torn down under us during close().
                return
            received = time.perf_counter()
            kind = message[0]
            if kind == "results":
                _, _shard_id, results, send_ts = message
                for request_id, status, payload in results:
                    entry = self._pop_pending(request_id)
                    if entry is None:
                        continue
                    if status == "ok":
                        vertex, predicted, scores = payload
                        entry.future.set_result(TopKResult(
                            vertex=vertex, predicted=predicted,
                            scores=scores, from_cache=False,
                        ))
                    else:
                        entry.future.set_exception(ServingError(payload))
                done = time.perf_counter()
                each = (done - received) / max(len(results), 1)
                with self._lock:
                    self._requests_served += len(results)
                    for _ in results:
                        self._stage_reply.record(received - send_ts, each)
            elif kind == "update_ack":
                _, shard_id, update_id, status, payload = message
                with self._lock:
                    entry = self._pending.get(update_id)
                    if entry is None:
                        continue
                    entry.acks += 1
                    if status == "ok":
                        entry.payloads[shard_id] = payload
                    else:
                        entry.error = payload
                    complete = entry.acks >= self._num_shards
                    if complete:
                        self._pending.pop(update_id, None)
                if complete:
                    self._resolve_update(entry)
            elif kind == "control_ack":
                _, shard_id, token, payload = message
                with self._lock:
                    entry = self._pending.get(token)
                    if entry is None:
                        continue
                    entry.acks += 1
                    entry.payloads[shard_id] = payload
                    complete = entry.acks >= self._num_shards
                    if complete:
                        self._pending.pop(token, None)
                if complete:
                    entry.future.set_result(dict(entry.payloads))
            elif kind == "ready":
                self._ready_count += 1
                if self._ready_count >= self._num_shards:
                    self._ready.set()
            elif kind == "stopped":
                self._stopped_count += 1
            elif kind == "crashed":
                _, shard_id, description = message
                self._mark_failed(f"shard {shard_id} crashed: {description}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _control(self, command: str, timeout: float = 60.0) -> dict:
        """Round-trip a control command through every shard (FIFO-ordered
        with the request stream)."""
        self._check_serving()
        token, future = self._new_pending("control")
        self._enqueue(("control", token, command, time.perf_counter()),
                      timeout)
        return future.result(timeout)

    def stage_stats(self) -> dict[str, dict]:
        """Merged per-stage snapshots: dispatch → shard queue → rescore →
        reply (shard stages fold per-process recorders, so ``servers`` is
        the shard count)."""
        per_shard = self._control("stats")
        with self._lock:
            stages = {
                "dispatch": self._stage_dispatch.snapshot(),
                "reply": self._stage_reply.snapshot(),
            }
        for stage_name in ("shard_queue", "rescore"):
            stages[stage_name] = merge_snapshots(
                [per_shard[shard_id][stage_name] for shard_id in per_shard]
            )
        return stages

    def reset_stage_stats(self) -> None:
        """Restart stage sampling everywhere (load-run boundary)."""
        self._control("reset_stages")
        with self._lock:
            self._stage_dispatch.reset()
            self._stage_reply.reset()

    def stats(self) -> ShardedServiceStats:
        with self._lock:
            batches = self._batches_dispatched
            return ShardedServiceStats(
                requests_served=self._requests_served,
                edges_ingested=self._edges_ingested,
                edges_removed=self._edges_removed,
                updates_applied=self._updates_applied,
                batches_dispatched=batches,
                mean_batch_size=(self._batched_requests / batches
                                 if batches else 0.0),
                compactions=self._compactions,
                shards=self._num_shards,
                queue_depth=self._submit_queue.qsize(),
                pending=len(self._pending),
            )
