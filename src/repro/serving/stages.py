"""Per-stage queue/service-time instrumentation and operational-law analysis.

The serving plane is a pipeline: requests wait in a dispatch queue, then in a
per-shard queue, get rescored/answered by a worker, and the reply travels
back.  To find the bottleneck we need, per stage, the arrival rate λ, the
mean time in stage W, the observed queue length L, and the busy fraction of
its servers — the inputs of the operational laws (utilization law
``U = λ·S/m``, Little's law ``L = λ·W``).  :class:`StageRecorder` collects
exactly those samples with O(1) amortized cost and a bounded footprint;
:func:`operational_analysis` turns a set of snapshots plus a wall-clock
window into the per-stage utilization/latency table and names the bottleneck
(the stage with the highest utilization — the one that saturates first as
offered load grows).

Snapshots are plain dicts of floats/lists so they pickle across the shard
process boundary; :func:`merge_snapshots` folds the per-shard copies of the
same stage into one.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "StageRecorder",
    "merge_snapshots",
    "operational_analysis",
]

#: Per-recorder cap on retained latency/depth samples.  Past the cap the
#: buffer is thinned to every other sample and the keep-stride doubles, so
#: memory stays bounded while the kept samples span the whole run.
_MAX_SAMPLES = 4096


class StageRecorder:
    """Collects wait/service-time and queue-depth samples for one stage.

    ``servers`` is the stage's parallelism (worker threads or shard
    processes); it divides busy time in the utilization law.  Recorders are
    not thread-safe by design — each worker owns its own recorder and the
    coordinator merges snapshots.
    """

    __slots__ = ("name", "servers", "count", "wait_total", "service_total",
                 "busy_seconds", "_wait", "_service", "_depth", "_stride",
                 "_pending")

    def __init__(self, name: str, *, servers: int = 1) -> None:
        self.name = name
        self.servers = int(servers)
        self.count = 0
        self.wait_total = 0.0
        self.service_total = 0.0
        self.busy_seconds = 0.0
        self._wait: list[float] = []
        self._service: list[float] = []
        self._depth: list[int] = []
        self._stride = 1
        self._pending = 0

    def record(self, wait_seconds: float, service_seconds: float) -> None:
        """One request finished the stage after waiting then being served."""
        self.count += 1
        self.wait_total += wait_seconds
        self.service_total += service_seconds
        self.busy_seconds += service_seconds
        self._pending += 1
        if self._pending >= self._stride:
            self._pending = 0
            self._wait.append(wait_seconds)
            self._service.append(service_seconds)
            if len(self._wait) > _MAX_SAMPLES:
                self._wait = self._wait[::2]
                self._service = self._service[::2]
                self._stride *= 2

    def sample_depth(self, depth: int) -> None:
        """Record an instantaneous queue length for this stage."""
        self._depth.append(int(depth))
        if len(self._depth) > _MAX_SAMPLES:
            self._depth = self._depth[::2]

    def snapshot(self) -> dict:
        """Picklable copy of the collected samples and totals."""
        return {
            "name": self.name,
            "servers": self.servers,
            "count": self.count,
            "wait_total": self.wait_total,
            "service_total": self.service_total,
            "busy_seconds": self.busy_seconds,
            "wait_samples": list(self._wait),
            "service_samples": list(self._service),
            "depth_samples": list(self._depth),
        }

    def reset(self) -> None:
        self.count = 0
        self.wait_total = 0.0
        self.service_total = 0.0
        self.busy_seconds = 0.0
        self._wait.clear()
        self._service.clear()
        self._depth.clear()
        self._stride = 1
        self._pending = 0


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Fold several snapshots of the *same logical stage* into one.

    Totals add; ``servers`` adds too (four shard processes are four servers
    of the shard stage); sample lists concatenate.
    """
    if not snapshots:
        raise ValueError("merge_snapshots needs at least one snapshot")
    merged = {
        "name": snapshots[0]["name"],
        "servers": 0,
        "count": 0,
        "wait_total": 0.0,
        "service_total": 0.0,
        "busy_seconds": 0.0,
        "wait_samples": [],
        "service_samples": [],
        "depth_samples": [],
    }
    for snap in snapshots:
        merged["servers"] += snap["servers"]
        merged["count"] += snap["count"]
        merged["wait_total"] += snap["wait_total"]
        merged["service_total"] += snap["service_total"]
        merged["busy_seconds"] += snap["busy_seconds"]
        merged["wait_samples"].extend(snap["wait_samples"])
        merged["service_samples"].extend(snap["service_samples"])
        merged["depth_samples"].extend(snap["depth_samples"])
    return merged


def _percentiles_ms(samples: list[float]) -> dict:
    if not samples:
        return {"p50_ms": 0.0, "p99_ms": 0.0}
    array = np.asarray(samples, dtype=np.float64) * 1e3
    return {
        "p50_ms": float(np.percentile(array, 50)),
        "p99_ms": float(np.percentile(array, 99)),
    }


def operational_analysis(snapshots: dict[str, dict],
                         elapsed_seconds: float) -> dict:
    """Operational-law table over one measurement window.

    Per stage: arrival rate λ = count / elapsed, utilization
    ``U = busy / (servers · elapsed)``, mean residence time
    ``W = (wait_total + service_total) / count``, Little's-law queue length
    ``L = λ·W``, and the relative error between that and the directly
    sampled mean queue depth (how well the open-system model fits).  The
    bottleneck is the stage with the highest utilization.
    """
    elapsed = max(float(elapsed_seconds), 1e-12)
    stages: dict[str, dict] = {}
    bottleneck: str | None = None
    bottleneck_util = -1.0
    for name, snap in snapshots.items():
        count = snap["count"]
        arrival_rate = count / elapsed
        utilization = snap["busy_seconds"] / (max(snap["servers"], 1)
                                              * elapsed)
        mean_wait = snap["wait_total"] / count if count else 0.0
        mean_service = snap["service_total"] / count if count else 0.0
        residence = mean_wait + mean_service
        little_length = arrival_rate * residence
        depth = snap["depth_samples"]
        measured_length = (float(np.mean(depth)) if depth else 0.0)
        fit_error = (abs(measured_length - little_length)
                     / max(little_length, 1e-12) if count else 0.0)
        stages[name] = {
            "servers": snap["servers"],
            "count": count,
            "arrival_rate_per_s": arrival_rate,
            "utilization": utilization,
            "mean_wait_ms": mean_wait * 1e3,
            "mean_service_ms": mean_service * 1e3,
            "wait": _percentiles_ms(snap["wait_samples"]),
            "service": _percentiles_ms(snap["service_samples"]),
            "little_queue_length": little_length,
            "measured_queue_length": measured_length,
            "little_fit_error": fit_error,
        }
        if utilization > bottleneck_util:
            bottleneck_util = utilization
            bottleneck = name
    return {
        "elapsed_seconds": elapsed,
        "stages": stages,
        "bottleneck": bottleneck,
        "bottleneck_utilization": max(bottleneck_util, 0.0),
    }
