"""Edge-addition overlay over the immutable :class:`~repro.graph.digraph.DiGraph`.

The batch stack is built on an immutable CSR graph: rebuild-from-scratch is
the only way to change it, and on a 10k-vertex graph that is milliseconds of
lexsort per edge — hopeless for streamed updates.  :class:`GraphDelta` keeps
the base graph untouched and absorbs additions into small per-vertex side
adjacencies, exposing the *merged* view through the same duck-typed surface
the scoring kernel consumes (``num_vertices``, ``csr_out_adjacency()``,
``out_neighbors``, ``in_neighbors``).

Two invariants make the overlay safe to serve from:

* **CSR equivalence** — ``csr_out_adjacency()`` of the overlay is
  element-identical to the CSR a fresh ``DiGraph`` would build from the base
  edges plus the delta edges.  Base rows keep their duplicate edges exactly
  (the kernel's GAS-order fold walks raw adjacency, so duplicates affect
  scores); merged rows stay sorted because ``DiGraph`` sorts rows by
  ``(src, dst)`` and the overlay inserts extras in sorted position.
* **Ingest idempotence** — :meth:`add_edge` refuses duplicates (returns
  ``False``), so replaying a stream cannot change the merged view.  This is
  what makes :meth:`compact` a pure representation change: folding the delta
  into a new base ``DiGraph`` yields byte-identical adjacency, so scoring
  parity holds trivially across a compaction boundary.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import GraphError, VertexNotFoundError
from repro.graph.digraph import DiGraph
from repro.runtime.state import gather_slices, indptr_from_counts

__all__ = ["GraphDelta"]

_EMPTY = np.empty(0, dtype=np.int64)


class GraphDelta:
    """Mutable edge-addition overlay over an immutable base :class:`DiGraph`.

    Edges whose endpoints lie beyond the current vertex range grow the graph
    (new vertices start with empty adjacency), matching how a streamed social
    graph acquires users.  Deletion is out of scope: the paper's workload is
    append-only and every downstream invalidation rule here assumes
    monotonically growing adjacency.
    """

    __slots__ = ("_base", "_num_vertices", "_extra_out", "_extra_in",
                 "_extra_sets", "_delta_src", "_delta_dst", "_csr")

    def __init__(self, base: DiGraph) -> None:
        self._base = base
        self._num_vertices = base.num_vertices
        self._extra_out: dict[int, list[int]] = {}
        self._extra_in: dict[int, list[int]] = {}
        self._extra_sets: dict[int, set[int]] = {}
        self._delta_src: list[int] = []
        self._delta_dst: list[int] = []
        self._csr: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def base(self) -> DiGraph:
        """The immutable CSR graph beneath the overlay."""
        return self._base

    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        return self._base.num_edges + len(self._delta_src)

    @property
    def num_delta_edges(self) -> int:
        """Edges absorbed since the last :meth:`compact` (or construction)."""
        return len(self._delta_src)

    def delta_edges(self) -> list[tuple[int, int]]:
        """The uncompacted edges in ingest order."""
        return list(zip(self._delta_src, self._delta_dst))

    def vertices(self) -> range:
        return range(self._num_vertices)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int) -> bool:
        """Absorb the directed edge ``u -> v``; ``False`` when already present.

        Endpoints beyond the current vertex range grow the graph.  The
        duplicate check spans both the base graph and earlier additions, so
        the merged adjacency gains at most one copy of any streamed edge.
        """
        u, v = int(u), int(v)
        if u < 0 or v < 0:
            raise GraphError(
                f"edge endpoints must be non-negative, got ({u}, {v})"
            )
        if self._edge_known(u, v):
            return False
        grown = max(u, v) + 1
        if grown > self._num_vertices:
            self._num_vertices = grown
        self._extra_out.setdefault(u, []).append(v)
        self._extra_in.setdefault(v, []).append(u)
        self._extra_sets.setdefault(u, set()).add(v)
        self._delta_src.append(u)
        self._delta_dst.append(v)
        self._csr = None
        return True

    def add_edges(self, edges: Iterable[tuple[int, int]]
                  ) -> list[tuple[int, int]]:
        """Absorb a batch of edges; returns the ones actually added."""
        added: list[tuple[int, int]] = []
        for u, v in edges:
            if self.add_edge(u, v):
                added.append((int(u), int(v)))
        return added

    def compact(self) -> DiGraph:
        """Fold the delta into a fresh base :class:`DiGraph` and clear it.

        The merged adjacency is unchanged — ``DiGraph`` sorts rows by
        ``(src, dst)`` exactly like the overlay's merge — so any consumer of
        ``csr_out_adjacency()`` sees byte-identical arrays before and after.
        Returns the new base graph.
        """
        src, dst = self._base.edge_arrays()
        if self._delta_src:
            src = np.concatenate(
                [src, np.asarray(self._delta_src, dtype=np.int64)]
            )
            dst = np.concatenate(
                [dst, np.asarray(self._delta_dst, dtype=np.int64)]
            )
        self._base = DiGraph(self._num_vertices, src, dst)
        self._extra_out.clear()
        self._extra_in.clear()
        self._extra_sets.clear()
        self._delta_src = []
        self._delta_dst = []
        self._csr = None
        return self._base

    # ------------------------------------------------------------------
    # Merged views (the kernel's duck-typed graph surface)
    # ------------------------------------------------------------------
    def _check_vertex(self, u: int) -> None:
        if not 0 <= u < self._num_vertices:
            raise VertexNotFoundError(u, self._num_vertices)

    def _edge_known(self, u: int, v: int) -> bool:
        if v in self._extra_sets.get(u, ()):
            return True
        base = self._base
        return (u < base.num_vertices and v < base.num_vertices
                and base.has_edge(u, v))

    def has_edge(self, u: int, v: int) -> bool:
        self._check_vertex(u)
        self._check_vertex(v)
        return self._edge_known(u, v)

    def _base_out_row(self, u: int) -> np.ndarray:
        if u < self._base.num_vertices:
            return self._base.out_neighbors(u)
        return _EMPTY

    def out_neighbors(self, u: int) -> np.ndarray:
        """Merged out-neighborhood, sorted, base duplicates preserved."""
        self._check_vertex(u)
        extras = self._extra_out.get(u)
        base_row = self._base_out_row(u)
        if not extras:
            return base_row
        merged = np.concatenate(
            [base_row, np.asarray(extras, dtype=np.int64)]
        )
        merged.sort()
        return merged

    def in_neighbors(self, u: int) -> np.ndarray:
        """Merged in-neighborhood ``Γ⁻¹(u)``, sorted."""
        self._check_vertex(u)
        extras = self._extra_in.get(u)
        base_row = (self._base.in_neighbors(u)
                    if u < self._base.num_vertices else _EMPTY)
        if not extras:
            return base_row
        merged = np.concatenate(
            [base_row, np.asarray(extras, dtype=np.int64)]
        )
        merged.sort()
        return merged

    def out_degree(self, u: int) -> int:
        self._check_vertex(u)
        base_degree = (self._base.out_degree(u)
                       if u < self._base.num_vertices else 0)
        return base_degree + len(self._extra_out.get(u, ()))

    def in_degree(self, u: int) -> int:
        self._check_vertex(u)
        base_degree = (self._base.in_degree(u)
                       if u < self._base.num_vertices else 0)
        return base_degree + len(self._extra_in.get(u, ()))

    def edges(self) -> Iterator[tuple[int, int]]:
        """Base edges in their original order, then delta edges in ingest order."""
        yield from self._base.edges()
        yield from zip(self._delta_src, self._delta_dst)

    def csr_out_adjacency(self) -> tuple[np.ndarray, np.ndarray]:
        """Merged ``(indptr, indices)``, identical to a compacted rebuild.

        Untouched base rows are copied in bulk; only rows with pending extras
        re-sort.  The result is cached until the next mutation.
        """
        if self._csr is None:
            self._csr = self._merged_csr()
        return self._csr

    def _merged_csr(self) -> tuple[np.ndarray, np.ndarray]:
        base = self._base
        n = self._num_vertices
        base_indptr, base_indices = base.csr_out_adjacency()
        base_counts = np.zeros(n, dtype=np.int64)
        base_counts[:base.num_vertices] = np.diff(base_indptr)
        counts = base_counts.copy()
        for u, extras in self._extra_out.items():
            counts[u] += len(extras)
        indptr = indptr_from_counts(counts)
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        if not self._extra_out:
            indices[:base_indices.size] = base_indices
            return indptr, indices
        untouched = np.ones(n, dtype=bool)
        touched = np.fromiter(self._extra_out, dtype=np.int64,
                              count=len(self._extra_out))
        untouched[touched] = False
        rows = np.flatnonzero(untouched & (base_counts > 0))
        indices[gather_slices(indptr[rows], base_counts[rows])] = (
            base_indices[gather_slices(base_indptr[rows], base_counts[rows])]
        )
        for u in touched.tolist():
            row = self.out_neighbors(u)
            indices[indptr[u]:indptr[u + 1]] = row
        return indptr, indices

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"GraphDelta(|V|={self._num_vertices}, "
                f"|E|={self.num_edges}, delta={self.num_delta_edges})")
