"""Edge-addition overlay over the immutable :class:`~repro.graph.digraph.DiGraph`.

The batch stack is built on an immutable CSR graph: rebuild-from-scratch is
the only way to change it, and on a 10k-vertex graph that is milliseconds of
lexsort per edge — hopeless for streamed updates.  :class:`GraphDelta` keeps
the base graph untouched and absorbs additions into small per-vertex side
adjacencies, exposing the *merged* view through the same duck-typed surface
the scoring kernel consumes (``num_vertices``, ``csr_out_adjacency()``,
``out_neighbors``, ``in_neighbors``).

Two invariants make the overlay safe to serve from:

* **CSR equivalence** — ``csr_out_adjacency()`` of the overlay is
  element-identical to the CSR a fresh ``DiGraph`` would build from the base
  edges plus the delta edges.  Base rows keep their duplicate edges exactly
  (the kernel's GAS-order fold walks raw adjacency, so duplicates affect
  scores); merged rows stay sorted because ``DiGraph`` sorts rows by
  ``(src, dst)`` and the overlay inserts extras in sorted position.
* **Ingest idempotence** — :meth:`add_edge` refuses duplicates (returns
  ``False``), so replaying a stream cannot change the merged view.  This is
  what makes :meth:`compact` a pure representation change: folding the delta
  into a new base ``DiGraph`` yields byte-identical adjacency, so scoring
  parity holds trivially across a compaction boundary.

Deletions are tombstones: :meth:`remove_edge` removes a *delta* edge
physically (it only ever existed in the overlay) but marks a *base* edge
with a per-pair tombstone count — the immutable CSR is never rewritten.
Every merged view strips tombstoned occurrences, and :meth:`compact` folds
them out for real, so the CSR-equivalence invariant extends to deletions:
the merged adjacency is always element-identical to a fresh rebuild from
(base + delta − removed).  Base rows may hold duplicate edges; one
``remove_edge`` call removes exactly one occurrence.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import GraphError, VertexNotFoundError
from repro.graph.digraph import DiGraph
from repro.runtime.state import gather_slices, indptr_from_counts

__all__ = ["GraphDelta"]

_EMPTY = np.empty(0, dtype=np.int64)


class GraphDelta:
    """Mutable edge-addition overlay over an immutable base :class:`DiGraph`.

    Edges whose endpoints lie beyond the current vertex range grow the graph
    (new vertices start with empty adjacency), matching how a streamed social
    graph acquires users.  Edges can also be *removed* (unfollow/unfriend):
    delta edges go away physically, base edges are tombstoned per pair and
    folded out at the next :meth:`compact`.  Vertices are never retired —
    the vertex range grows monotonically even when adjacency shrinks.
    """

    __slots__ = ("_base", "_num_vertices", "_extra_out", "_extra_in",
                 "_extra_sets", "_delta_src", "_delta_dst",
                 "_removed_out", "_removed_in", "_num_removed", "_csr")

    def __init__(self, base: DiGraph) -> None:
        self._base = base
        self._num_vertices = base.num_vertices
        self._extra_out: dict[int, list[int]] = {}
        self._extra_in: dict[int, list[int]] = {}
        self._extra_sets: dict[int, set[int]] = {}
        self._delta_src: list[int] = []
        self._delta_dst: list[int] = []
        #: Tombstones over *base* edges: vertex -> {neighbor: count removed}.
        self._removed_out: dict[int, dict[int, int]] = {}
        self._removed_in: dict[int, dict[int, int]] = {}
        self._num_removed = 0
        self._csr: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def base(self) -> DiGraph:
        """The immutable CSR graph beneath the overlay."""
        return self._base

    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        return (self._base.num_edges + len(self._delta_src)
                - self._num_removed)

    @property
    def num_delta_edges(self) -> int:
        """Edges absorbed since the last :meth:`compact` (or construction)."""
        return len(self._delta_src)

    @property
    def num_removed_edges(self) -> int:
        """Base-edge tombstones pending since the last :meth:`compact`."""
        return self._num_removed

    def delta_edges(self) -> list[tuple[int, int]]:
        """The uncompacted edges in ingest order."""
        return list(zip(self._delta_src, self._delta_dst))

    def vertices(self) -> range:
        return range(self._num_vertices)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int) -> bool:
        """Absorb the directed edge ``u -> v``; ``False`` when already present.

        Endpoints beyond the current vertex range grow the graph.  The
        duplicate check spans both the base graph and earlier additions, so
        the merged adjacency gains at most one copy of any streamed edge.
        """
        u, v = int(u), int(v)
        if u < 0 or v < 0:
            raise GraphError(
                f"edge endpoints must be non-negative, got ({u}, {v})"
            )
        if self._edge_known(u, v):
            return False
        grown = max(u, v) + 1
        if grown > self._num_vertices:
            self._num_vertices = grown
        self._extra_out.setdefault(u, []).append(v)
        self._extra_in.setdefault(v, []).append(u)
        self._extra_sets.setdefault(u, set()).add(v)
        self._delta_src.append(u)
        self._delta_dst.append(v)
        self._csr = None
        return True

    def add_edges(self, edges: Iterable[tuple[int, int]]
                  ) -> list[tuple[int, int]]:
        """Absorb a batch of edges; returns the ones actually added."""
        added: list[tuple[int, int]] = []
        for u, v in edges:
            if self.add_edge(u, v):
                added.append((int(u), int(v)))
        return added

    def remove_edge(self, u: int, v: int) -> bool:
        """Remove one occurrence of ``u -> v``; ``False`` when absent.

        A delta edge is removed physically (the overlay is mutable); a base
        edge gets a per-pair tombstone the merged views strip and
        :meth:`compact` folds out.  Base rows may hold the same edge several
        times — each call removes exactly one occurrence, so a later
        :meth:`add_edge` of the same pair round-trips to the original
        multiset.  The vertex range never shrinks.
        """
        u, v = int(u), int(v)
        if u < 0 or v < 0:
            raise GraphError(
                f"edge endpoints must be non-negative, got ({u}, {v})"
            )
        if u >= self._num_vertices or v >= self._num_vertices:
            return False
        if v in self._extra_sets.get(u, ()):
            # Delta copy: unwind exactly what add_edge recorded.
            self._extra_out[u].remove(v)
            if not self._extra_out[u]:
                del self._extra_out[u]
            self._extra_in[v].remove(u)
            if not self._extra_in[v]:
                del self._extra_in[v]
            self._extra_sets[u].discard(v)
            if not self._extra_sets[u]:
                del self._extra_sets[u]
            for position in range(len(self._delta_src) - 1, -1, -1):
                if (self._delta_src[position] == u
                        and self._delta_dst[position] == v):
                    del self._delta_src[position]
                    del self._delta_dst[position]
                    break
            self._csr = None
            return True
        remaining = (self._base_multiplicity(u, v)
                     - self._removed_out.get(u, {}).get(v, 0))
        if remaining <= 0:
            return False
        self._removed_out.setdefault(u, {})[v] = (
            self._removed_out.get(u, {}).get(v, 0) + 1
        )
        self._removed_in.setdefault(v, {})[u] = (
            self._removed_in.get(v, {}).get(u, 0) + 1
        )
        self._num_removed += 1
        self._csr = None
        return True

    def remove_edges(self, edges: Iterable[tuple[int, int]]
                     ) -> list[tuple[int, int]]:
        """Remove a batch of edges; returns the ones actually removed."""
        removed: list[tuple[int, int]] = []
        for u, v in edges:
            if self.remove_edge(u, v):
                removed.append((int(u), int(v)))
        return removed

    def compact(self) -> DiGraph:
        """Fold the delta into a fresh base :class:`DiGraph` and clear it.

        The merged adjacency is unchanged — ``DiGraph`` sorts rows by
        ``(src, dst)`` exactly like the overlay's merge, and tombstoned base
        occurrences are dropped from the edge arrays before the rebuild — so
        any consumer of ``csr_out_adjacency()`` sees byte-identical arrays
        before and after.  Returns the new base graph.
        """
        src, dst = self._base.edge_arrays()
        if self._num_removed:
            keep = np.ones(src.size, dtype=bool)
            for u, tombstones in self._removed_out.items():
                for v, count in tombstones.items():
                    hits = np.flatnonzero((src == u) & (dst == v))[:count]
                    keep[hits] = False
            src, dst = src[keep], dst[keep]
        if self._delta_src:
            src = np.concatenate(
                [src, np.asarray(self._delta_src, dtype=np.int64)]
            )
            dst = np.concatenate(
                [dst, np.asarray(self._delta_dst, dtype=np.int64)]
            )
        self._base = DiGraph(self._num_vertices, src, dst)
        self._extra_out.clear()
        self._extra_in.clear()
        self._extra_sets.clear()
        self._delta_src = []
        self._delta_dst = []
        self._removed_out.clear()
        self._removed_in.clear()
        self._num_removed = 0
        self._csr = None
        return self._base

    # ------------------------------------------------------------------
    # Merged views (the kernel's duck-typed graph surface)
    # ------------------------------------------------------------------
    def _check_vertex(self, u: int) -> None:
        if not 0 <= u < self._num_vertices:
            raise VertexNotFoundError(u, self._num_vertices)

    def _base_multiplicity(self, u: int, v: int) -> int:
        """How many copies of ``u -> v`` the base row holds (pre-tombstone)."""
        base = self._base
        if u >= base.num_vertices or v >= base.num_vertices:
            return 0
        row = base.out_neighbors(u)
        lo = int(np.searchsorted(row, v, side="left"))
        hi = int(np.searchsorted(row, v, side="right"))
        return hi - lo

    def _edge_known(self, u: int, v: int) -> bool:
        if v in self._extra_sets.get(u, ()):
            return True
        surviving = (self._base_multiplicity(u, v)
                     - self._removed_out.get(u, {}).get(v, 0))
        return surviving > 0

    def has_edge(self, u: int, v: int) -> bool:
        self._check_vertex(u)
        self._check_vertex(v)
        return self._edge_known(u, v)

    @staticmethod
    def _strip_tombstones(row: np.ndarray,
                          tombstones: dict[int, int] | None) -> np.ndarray:
        """Drop the first *count* copies of each tombstoned value from a
        sorted row."""
        if not tombstones:
            return row
        keep = np.ones(row.size, dtype=bool)
        for value, count in tombstones.items():
            lo = int(np.searchsorted(row, value, side="left"))
            keep[lo:lo + count] = False
        return row[keep]

    def _base_out_row(self, u: int) -> np.ndarray:
        if u < self._base.num_vertices:
            return self._strip_tombstones(self._base.out_neighbors(u),
                                          self._removed_out.get(u))
        return _EMPTY

    def out_neighbors(self, u: int) -> np.ndarray:
        """Merged out-neighborhood, sorted, base duplicates preserved."""
        self._check_vertex(u)
        extras = self._extra_out.get(u)
        base_row = self._base_out_row(u)
        if not extras:
            return base_row
        merged = np.concatenate(
            [base_row, np.asarray(extras, dtype=np.int64)]
        )
        merged.sort()
        return merged

    def in_neighbors(self, u: int) -> np.ndarray:
        """Merged in-neighborhood ``Γ⁻¹(u)``, sorted."""
        self._check_vertex(u)
        extras = self._extra_in.get(u)
        base_row = (self._strip_tombstones(self._base.in_neighbors(u),
                                           self._removed_in.get(u))
                    if u < self._base.num_vertices else _EMPTY)
        if not extras:
            return base_row
        merged = np.concatenate(
            [base_row, np.asarray(extras, dtype=np.int64)]
        )
        merged.sort()
        return merged

    def out_degree(self, u: int) -> int:
        self._check_vertex(u)
        base_degree = (self._base.out_degree(u)
                       if u < self._base.num_vertices else 0)
        base_degree -= sum(self._removed_out.get(u, {}).values())
        return base_degree + len(self._extra_out.get(u, ()))

    def in_degree(self, u: int) -> int:
        self._check_vertex(u)
        base_degree = (self._base.in_degree(u)
                       if u < self._base.num_vertices else 0)
        base_degree -= sum(self._removed_in.get(u, {}).values())
        return base_degree + len(self._extra_in.get(u, ()))

    def edges(self) -> Iterator[tuple[int, int]]:
        """Base edges in their original order, then delta edges in ingest order.

        Tombstoned base edges are skipped (the first *count* occurrences of
        each removed pair, matching what :meth:`compact` folds out).
        """
        if not self._num_removed:
            yield from self._base.edges()
        else:
            skipped: dict[tuple[int, int], int] = {}
            for u, v in self._base.edges():
                budget = self._removed_out.get(u, {}).get(v, 0)
                if budget and skipped.get((u, v), 0) < budget:
                    skipped[(u, v)] = skipped.get((u, v), 0) + 1
                    continue
                yield u, v
        yield from zip(self._delta_src, self._delta_dst)

    def csr_out_adjacency(self) -> tuple[np.ndarray, np.ndarray]:
        """Merged ``(indptr, indices)``, identical to a compacted rebuild.

        Untouched base rows are copied in bulk; only rows with pending extras
        re-sort.  The result is cached until the next mutation.
        """
        if self._csr is None:
            self._csr = self._merged_csr()
        return self._csr

    def _merged_csr(self) -> tuple[np.ndarray, np.ndarray]:
        base = self._base
        n = self._num_vertices
        base_indptr, base_indices = base.csr_out_adjacency()
        base_counts = np.zeros(n, dtype=np.int64)
        base_counts[:base.num_vertices] = np.diff(base_indptr)
        counts = base_counts.copy()
        for u, extras in self._extra_out.items():
            counts[u] += len(extras)
        for u, tombstones in self._removed_out.items():
            counts[u] -= sum(tombstones.values())
        indptr = indptr_from_counts(counts)
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        touched_rows = set(self._extra_out) | set(self._removed_out)
        if not touched_rows:
            indices[:base_indices.size] = base_indices
            return indptr, indices
        untouched = np.ones(n, dtype=bool)
        touched = np.fromiter(touched_rows, dtype=np.int64,
                              count=len(touched_rows))
        untouched[touched] = False
        rows = np.flatnonzero(untouched & (base_counts > 0))
        indices[gather_slices(indptr[rows], base_counts[rows])] = (
            base_indices[gather_slices(base_indptr[rows], base_counts[rows])]
        )
        for u in touched.tolist():
            row = self.out_neighbors(u)
            indices[indptr[u]:indptr[u + 1]] = row
        return indptr, indices

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"GraphDelta(|V|={self._num_vertices}, "
                f"|E|={self.num_edges}, delta={self.num_delta_edges})")
