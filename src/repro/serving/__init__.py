"""Online serving: delta overlay → incremental index → service → load gen.

Everything else in the repo is batch (build graph → predict → exit).  This
package is the bridge to a long-lived system: a mutable edge overlay over
the immutable CSR graph (:mod:`~repro.serving.delta`), an incrementally
maintained SNAPLE index that rescores only dirty regions
(:mod:`~repro.serving.index`), a request/worker service in the
Queueing-middleware shape (:mod:`~repro.serving.service`), and a closed-loop
load generator with windowed instrumentation
(:mod:`~repro.serving.loadgen`).

Parity contract: at any point in an edge stream, the service's answers are
bit-identical (predictions *and* scores) to a cold batch
``predict(backend="gas"/"bsp", workers=N)`` on the merged graph — the
per-vertex RNG discipline makes dirty-region recomputation exact.
"""

from repro.serving.delta import GraphDelta
from repro.serving.index import (
    AppliedUpdate,
    IncrementalIndex,
    PairSimilarityCache,
)
from repro.serving.loadgen import (
    LoadConfig,
    LoadGenerator,
    LoadResult,
    WindowStats,
)
from repro.serving.service import (
    IngestResult,
    PredictorService,
    ServiceStats,
    ServingConfig,
    TopKResult,
)

__all__ = [
    "AppliedUpdate",
    "GraphDelta",
    "IncrementalIndex",
    "IngestResult",
    "LoadConfig",
    "LoadGenerator",
    "LoadResult",
    "PairSimilarityCache",
    "PredictorService",
    "ServiceStats",
    "ServingConfig",
    "TopKResult",
    "WindowStats",
]
