"""Online serving: delta overlay → incremental index → service → load gen.

Everything else in the repo is batch (build graph → predict → exit).  This
package is the bridge to a long-lived system: a mutable edge overlay over
the immutable CSR graph (:mod:`~repro.serving.delta`), an incrementally
maintained SNAPLE index that rescores only dirty regions
(:mod:`~repro.serving.index`), a request/worker service in the
Queueing-middleware shape (:mod:`~repro.serving.service`), its sharded
multi-process counterpart — shm-backed shard workers behind a batching
dispatcher (:mod:`~repro.serving.sharded`) — per-stage queue/service-time
instrumentation with operational-law bottleneck analysis
(:mod:`~repro.serving.stages`), and a closed-loop load generator with
windowed instrumentation (:mod:`~repro.serving.loadgen`).

Parity contract: at any point in an edge stream (additions *and* removals),
both services' answers are bit-identical (predictions *and* scores) to a
cold batch ``predict(backend="gas"/"bsp", workers=N)`` on the merged graph —
the per-vertex RNG discipline makes dirty-region recomputation exact, for
any shard count.
"""

from repro.serving.delta import GraphDelta
from repro.serving.index import (
    AppliedUpdate,
    IncrementalIndex,
    PairSimilarityCache,
)
from repro.serving.loadgen import (
    LoadConfig,
    LoadGenerator,
    LoadResult,
    WindowStats,
)
from repro.serving.service import (
    IngestResult,
    PredictorService,
    RemovalResult,
    ServiceStats,
    ServingConfig,
    TopKResult,
)
from repro.serving.sharded import (
    ShardedPredictorService,
    ShardedServiceStats,
    ShardMap,
)
from repro.serving.stages import (
    StageRecorder,
    merge_snapshots,
    operational_analysis,
)

__all__ = [
    "AppliedUpdate",
    "GraphDelta",
    "IncrementalIndex",
    "IngestResult",
    "LoadConfig",
    "LoadGenerator",
    "LoadResult",
    "PairSimilarityCache",
    "PredictorService",
    "RemovalResult",
    "ServiceStats",
    "ServingConfig",
    "ShardMap",
    "ShardedPredictorService",
    "ShardedServiceStats",
    "StageRecorder",
    "TopKResult",
    "WindowStats",
    "merge_snapshots",
    "operational_analysis",
]
