"""SNAPLE reproduction: scalable link prediction for GAS graph engines.

This package reproduces "Scaling Out Link Prediction with SNAPLE: 1 Billion
Edges and Beyond" (Kermarrec, Taïani, Tirado, 2015).  The public API re-exports
the most commonly used entry points; see the subpackages for the full surface:

* :mod:`repro.graph` — compact directed graphs, generators, dataset analogs;
* :mod:`repro.gas` — the simulated gather-apply-scatter engine and cluster model;
* :mod:`repro.bsp` — the simulated BSP/Pregel engine;
* :mod:`repro.snaple` — the SNAPLE scoring framework and link predictor;
* :mod:`repro.baselines` — the naive GAS baseline and the random-walk PPR baseline;
* :mod:`repro.runtime` — the pluggable execution-backend registry and RunReport;
* :mod:`repro.eval` — the evaluation protocol, metrics, and per-figure experiments.
"""

from repro.errors import (
    ConfigurationError,
    EngineError,
    EvaluationError,
    GraphError,
    PartitionError,
    ReproError,
    ResourceExhaustedError,
)
from repro.graph import DiGraph, GraphBuilder, read_edge_list, write_edge_list
from repro.graph.datasets import dataset_names, load_dataset
from repro.runtime import (
    BackendCapabilities,
    ExecutionBackend,
    RunReport,
    VertexPrediction,
    available_backends,
    backend_capabilities,
    get_backend,
    register_backend,
)
from repro.snaple import (
    PredictionResult,
    SnapleConfig,
    SnapleLinkPredictor,
    paper_score_names,
    score_config,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "ExecutionBackend",
    "BackendCapabilities",
    "RunReport",
    "VertexPrediction",
    "register_backend",
    "get_backend",
    "backend_capabilities",
    "available_backends",
    "DiGraph",
    "GraphBuilder",
    "read_edge_list",
    "write_edge_list",
    "load_dataset",
    "dataset_names",
    "SnapleConfig",
    "SnapleLinkPredictor",
    "PredictionResult",
    "score_config",
    "paper_score_names",
    "ReproError",
    "GraphError",
    "PartitionError",
    "EngineError",
    "ResourceExhaustedError",
    "ConfigurationError",
    "EvaluationError",
]
