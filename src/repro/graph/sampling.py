"""Neighborhood truncation utilities.

Step 1 of SNAPLE's GAS program (Algorithm 2) collects a *truncated* sample of
each vertex's neighborhood, ``Γ̂(u)``, bounded by the truncation threshold
``thrΓ``.  The paper implements this with a per-neighbor Bernoulli test
(``rand() > thrΓ/|Γ(u)|`` drops the neighbor) because a GAS gather sees one
neighbor at a time.  We provide that probabilistic variant plus an exact
reservoir-sampling variant for deterministic tests.
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence

from repro.errors import GraphError

__all__ = [
    "bernoulli_truncate",
    "reservoir_sample",
    "truncate_neighborhood",
    "expected_truncated_size",
]


def bernoulli_truncate(
    neighbors: Sequence[int],
    threshold: int | float,
    *,
    rng: random.Random,
) -> list[int]:
    """Probabilistic truncation mirroring Algorithm 2, step 1.

    Every neighbor is kept independently with probability
    ``min(1, threshold / |Γ(u)|)``, which approximates a uniform sample of
    size ``threshold`` without requiring the full neighborhood to be
    materialized in one place (the constraint imposed by the GAS gather).
    """
    _check_threshold(threshold)
    degree = len(neighbors)
    if degree == 0:
        return []
    if math.isinf(threshold) or degree <= threshold:
        return list(neighbors)
    keep_probability = threshold / degree
    return [v for v in neighbors if rng.random() <= keep_probability]


def reservoir_sample(
    neighbors: Sequence[int],
    threshold: int | float,
    *,
    rng: random.Random,
) -> list[int]:
    """Exact uniform sample of at most ``threshold`` neighbors (reservoir)."""
    _check_threshold(threshold)
    if math.isinf(threshold) or len(neighbors) <= threshold:
        return list(neighbors)
    size = int(threshold)
    reservoir = list(neighbors[:size])
    for index in range(size, len(neighbors)):
        slot = rng.randint(0, index)
        if slot < size:
            reservoir[slot] = neighbors[index]
    return reservoir


def truncate_neighborhood(
    neighbors: Sequence[int],
    threshold: int | float,
    *,
    rng: random.Random,
    exact: bool = False,
) -> list[int]:
    """Truncate a neighborhood to ``Γ̂(u)``.

    With ``exact=False`` (default) this uses the paper's Bernoulli
    approximation; with ``exact=True`` it uses reservoir sampling, which
    guarantees ``len(result) <= threshold``.
    """
    if exact:
        return reservoir_sample(neighbors, threshold, rng=rng)
    return bernoulli_truncate(neighbors, threshold, rng=rng)


def expected_truncated_size(degree: int, threshold: int | float) -> float:
    """Expected size of the Bernoulli-truncated neighborhood."""
    _check_threshold(threshold)
    if degree <= 0:
        return 0.0
    if math.isinf(threshold) or degree <= threshold:
        return float(degree)
    return float(threshold)


def _check_threshold(threshold: int | float) -> None:
    if not math.isinf(threshold) and threshold < 0:
        raise GraphError("truncation threshold must be non-negative or infinity")
