"""Vertex content: per-vertex profiles (tag sets) attached to a graph.

The paper's scoring framework is purely topological, but Section 3.1 notes
that the raw similarity of equation (6) "can be extended to content-based
metrics by simply including data attached to vertices" — user profiles, tags,
or documents.  This module provides that vertex data layer: a
:class:`VertexProfiles` container mapping every vertex to a set of tag ids,
profile-level similarities, and a generator that synthesizes profiles whose
tag overlap is correlated with graph adjacency (homophily), which is the
property that makes content useful for link prediction in the first place.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.errors import GraphError
from repro.graph.digraph import DiGraph

__all__ = [
    "VertexProfiles",
    "generate_profiles",
    "profile_jaccard",
    "profile_cosine",
    "profile_overlap",
]


@dataclass(frozen=True)
class VertexProfiles:
    """Immutable per-vertex tag sets (the "content" attached to vertices).

    Parameters
    ----------
    tags:
        Tuple with one frozenset of tag ids per vertex, indexed by vertex id.
    num_tags:
        Size of the tag vocabulary (tag ids lie in ``[0, num_tags)``).
    """

    tags: tuple[frozenset[int], ...]
    num_tags: int

    def __post_init__(self) -> None:
        if self.num_tags < 0:
            raise GraphError("num_tags must be non-negative")
        for vertex, profile in enumerate(self.tags):
            for tag in profile:
                if not 0 <= tag < self.num_tags:
                    raise GraphError(
                        f"vertex {vertex} has tag {tag} outside [0, {self.num_tags})"
                    )

    @classmethod
    def from_mapping(cls, profiles: Mapping[int, Iterable[int]],
                     *, num_vertices: int,
                     num_tags: int | None = None) -> "VertexProfiles":
        """Build profiles from a ``{vertex: tags}`` mapping (missing = empty)."""
        tags = tuple(
            frozenset(profiles.get(vertex, ())) for vertex in range(num_vertices)
        )
        if num_tags is None:
            num_tags = 1 + max((t for profile in tags for t in profile), default=-1)
        return cls(tags=tags, num_tags=num_tags)

    @property
    def num_vertices(self) -> int:
        """Number of vertices the profiles cover."""
        return len(self.tags)

    def of(self, vertex: int) -> frozenset[int]:
        """Tag set of ``vertex``."""
        if not 0 <= vertex < len(self.tags):
            raise GraphError(
                f"vertex {vertex} is out of range for profiles covering "
                f"{len(self.tags)} vertices"
            )
        return self.tags[vertex]

    def mean_profile_size(self) -> float:
        """Average number of tags per vertex."""
        if not self.tags:
            return 0.0
        return sum(len(profile) for profile in self.tags) / len(self.tags)

    def tag_usage(self) -> dict[int, int]:
        """Number of vertices carrying each tag."""
        usage: dict[int, int] = {}
        for profile in self.tags:
            for tag in profile:
                usage[tag] = usage.get(tag, 0) + 1
        return usage

    def homophily(self, graph: DiGraph) -> float:
        """Mean profile Jaccard across edges minus across random pairs.

        A positive value means adjacent vertices share more tags than random
        pairs do — the property content-aware scoring exploits.  Random pairs
        are drawn deterministically from a fixed seed so the measure is
        reproducible.
        """
        if graph.num_edges == 0 or self.num_vertices < 2:
            return 0.0
        edge_total = 0.0
        for u, v in graph.edges():
            edge_total += profile_jaccard(self.of(u), self.of(v))
        edge_mean = edge_total / graph.num_edges
        rng = random.Random(12345)
        samples = min(graph.num_edges, 2000)
        random_total = 0.0
        for _ in range(samples):
            u = rng.randrange(self.num_vertices)
            v = rng.randrange(self.num_vertices)
            random_total += profile_jaccard(self.of(u), self.of(v))
        return edge_mean - random_total / samples


def profile_jaccard(profile_u: frozenset[int], profile_v: frozenset[int]) -> float:
    """Jaccard coefficient between two tag sets."""
    if not profile_u and not profile_v:
        return 0.0
    union = len(profile_u | profile_v)
    if union == 0:
        return 0.0
    return len(profile_u & profile_v) / union


def profile_cosine(profile_u: frozenset[int], profile_v: frozenset[int]) -> float:
    """Cosine similarity between tag indicator vectors."""
    if not profile_u or not profile_v:
        return 0.0
    return len(profile_u & profile_v) / math.sqrt(len(profile_u) * len(profile_v))


def profile_overlap(profile_u: frozenset[int], profile_v: frozenset[int]) -> float:
    """Overlap coefficient between two tag sets."""
    smaller = min(len(profile_u), len(profile_v))
    if smaller == 0:
        return 0.0
    return len(profile_u & profile_v) / smaller


def generate_profiles(
    graph: DiGraph,
    *,
    num_tags: int = 50,
    tags_per_vertex: int = 5,
    homophily: float = 0.7,
    seed: int = 0,
) -> VertexProfiles:
    """Synthesize tag profiles correlated with the graph's structure.

    Vertices are processed in id order; each of their ``tags_per_vertex``
    tags is, with probability ``homophily``, copied from a neighbor that
    already has a profile (out- or in-neighbor), and drawn uniformly from the
    vocabulary otherwise.  ``homophily = 0`` produces structure-free random
    profiles; values close to 1 make adjacent vertices share most tags.

    The construction mirrors how content correlates with structure in real
    social graphs (interests spread along edges), which is what makes the
    content-aware scoring extension improve recall.
    """
    if num_tags < 1:
        raise GraphError("num_tags must be >= 1")
    if tags_per_vertex < 0:
        raise GraphError("tags_per_vertex must be non-negative")
    if not 0.0 <= homophily <= 1.0:
        raise GraphError("homophily must be in [0, 1]")
    rng = random.Random(seed)
    assigned: list[set[int]] = [set() for _ in range(graph.num_vertices)]
    for u in range(graph.num_vertices):
        neighbor_tags: list[int] = []
        for v in graph.out_neighbors(u).tolist():
            if v < u:
                neighbor_tags.extend(assigned[v])
        for v in graph.in_neighbors(u).tolist():
            if v < u:
                neighbor_tags.extend(assigned[v])
        profile = assigned[u]
        attempts = 0
        while len(profile) < min(tags_per_vertex, num_tags) and attempts < 10 * tags_per_vertex:
            attempts += 1
            if neighbor_tags and rng.random() < homophily:
                profile.add(rng.choice(neighbor_tags))
            else:
                profile.add(rng.randrange(num_tags))
    return VertexProfiles(
        tags=tuple(frozenset(profile) for profile in assigned),
        num_tags=num_tags,
    )
