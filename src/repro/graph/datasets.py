"""Synthetic analogs of the paper's evaluation datasets.

The paper evaluates on gowalla, pokec, livejournal, orkut and twitter-rv
(Table 4), ranging from ~1M to 1.4B edges.  Those datasets cannot be bundled
here (size and redistribution), so each one is replaced by a synthetic graph
that preserves the structural characteristics relevant to SNAPLE:

* the *relative ordering* of sizes (gowalla < pokec < livejournal < orkut <
  twitter-rv),
* the degree-distribution shape (power-law tail; twitter-rv the most skewed),
* high clustering, which drives the effectiveness of the 2-hop candidate
  restriction,
* directedness (gowalla and orkut are symmetrized, matching the paper).

Every dataset is deterministic for a given ``scale``.  The default scale
produces laptop-sized graphs; increasing ``scale`` grows the graphs
proportionally so the scaling experiments (Figure 5) can sweep edge counts.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.errors import GraphError
from repro.graph import generators
from repro.graph.digraph import DiGraph

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "dataset_names",
    "load_dataset",
    "dataset_spec",
    "register_builtin_sources",
    "PAPER_EDGE_COUNTS",
]


#: Edge counts of the real datasets (Table 4), used to keep the synthetic
#: analogs' *relative* sizes faithful and to label scaling sweeps.
PAPER_EDGE_COUNTS: dict[str, int] = {
    "gowalla": 950_000,
    "pokec": 30_600_000,
    "livejournal": 68_900_000,
    "orkut": 223_000_000,
    "twitter-rv": 1_400_000_000,
}


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for generating one synthetic dataset analog."""

    name: str
    domain: str
    directed: bool
    base_vertices: int
    mean_degree: int
    clustering: float
    generator: str
    paper_vertices: int
    paper_edges: int
    description: str

    def vertices_at_scale(self, scale: float) -> int:
        """Number of vertices for a given scale multiplier."""
        if scale <= 0:
            raise GraphError("scale must be positive")
        return max(16, int(self.base_vertices * scale))


DATASETS: dict[str, DatasetSpec] = {
    "gowalla": DatasetSpec(
        name="gowalla",
        domain="social network",
        directed=False,
        base_vertices=1_500,
        mean_degree=8,
        clustering=0.45,
        generator="powerlaw_cluster",
        paper_vertices=196_591,
        paper_edges=PAPER_EDGE_COUNTS["gowalla"],
        description="Location-based social network; undirected, symmetrized.",
    ),
    "pokec": DatasetSpec(
        name="pokec",
        domain="social network",
        directed=True,
        base_vertices=4_000,
        mean_degree=9,
        clustering=0.35,
        generator="social",
        paper_vertices=1_600_000,
        paper_edges=PAPER_EDGE_COUNTS["pokec"],
        description="Slovak social network; directed friendship graph.",
    ),
    "livejournal": DatasetSpec(
        name="livejournal",
        domain="co-authorship",
        directed=True,
        base_vertices=6_000,
        mean_degree=9,
        clustering=0.45,
        generator="social",
        paper_vertices=4_800_000,
        paper_edges=PAPER_EDGE_COUNTS["livejournal"],
        description="Blogging community graph; directed.",
    ),
    "orkut": DatasetSpec(
        name="orkut",
        domain="social network",
        directed=False,
        base_vertices=8_000,
        mean_degree=16,
        clustering=0.35,
        generator="powerlaw_cluster",
        paper_vertices=3_000_000,
        paper_edges=PAPER_EDGE_COUNTS["orkut"],
        description="Orkut friendship graph; undirected, symmetrized, dense.",
    ),
    "twitter-rv": DatasetSpec(
        name="twitter-rv",
        domain="microblogging",
        directed=True,
        base_vertices=12_000,
        mean_degree=18,
        clustering=0.20,
        generator="rmat",
        paper_vertices=41_000_000,
        paper_edges=PAPER_EDGE_COUNTS["twitter-rv"],
        description="Twitter follower graph analog; extremely skewed degrees.",
    ),
}


def dataset_names() -> list[str]:
    """Names of all dataset analogs, in increasing paper edge-count order."""
    return sorted(DATASETS, key=lambda name: DATASETS[name].paper_edges)


def dataset_spec(name: str) -> DatasetSpec:
    """Return the :class:`DatasetSpec` for ``name``; raise for unknown names.

    Name lookup goes through the registry-level normalizer, so ``_`` and
    ``-`` are interchangeable (``twitter_rv`` finds ``twitter-rv``).
    """
    from repro.runtime.registry import match_component_name

    canonical = match_component_name(name, DATASETS)
    if canonical is None:
        raise GraphError(
            f"unknown dataset {name!r}; available: {', '.join(dataset_names())}"
        )
    return DATASETS[canonical]


@functools.lru_cache(maxsize=32)
def _load_cached(name: str, scale: float, seed: int) -> DiGraph:
    spec = dataset_spec(name)
    num_vertices = spec.vertices_at_scale(scale)
    if spec.generator == "powerlaw_cluster":
        graph = generators.powerlaw_cluster(
            num_vertices,
            max(1, spec.mean_degree // 2),
            spec.clustering,
            seed=seed,
        )
    elif spec.generator == "social":
        graph = generators.social_graph(
            num_vertices,
            spec.mean_degree,
            clustering=spec.clustering,
            seed=seed,
            directed_fraction=0.2,
        )
    elif spec.generator == "rmat":
        scale_bits = max(4, int(num_vertices).bit_length() - 1)
        edge_factor = max(2, spec.mean_degree // 2)
        rmat = generators.kronecker_like(scale_bits, edge_factor, seed=seed)
        # RMAT leaves many isolated vertices; densify the core by adding a
        # clustered backbone so the 2-hop candidate space is non-trivial.
        backbone = generators.powerlaw_cluster(
            rmat.num_vertices, 2, spec.clustering, seed=seed + 7
        )
        src1, dst1 = rmat.edge_arrays()
        src2, dst2 = backbone.edge_arrays()
        graph = DiGraph(
            rmat.num_vertices,
            list(src1) + list(src2),
            list(dst1) + list(dst2),
        )
    else:  # pragma: no cover - specs are defined above
        raise GraphError(f"unknown generator kind {spec.generator!r}")
    if not spec.directed:
        graph = graph.to_undirected()
    return graph


def _dataset_analog_factory(name: str):
    """Registry factory for one named dataset analog (scale/seed options)."""
    def factory(*, scale: float = 1.0, seed: int = 42) -> DiGraph:
        return load_dataset(name, scale=scale, seed=seed)

    factory.__name__ = f"dataset_{name.replace('-', '_')}"
    factory.__doc__ = f"Synthetic analog of the {name} dataset."
    return factory


#: Generator-backed graph sources exposed through the ``dataset`` component
#: family alongside the named analogs.  Factories are the generator
#: functions themselves; their keyword parameters are the source's options.
_GENERATOR_SOURCES: tuple[str, ...] = (
    "erdos_renyi",
    "barabasi_albert",
    "powerlaw_cluster",
    "watts_strogatz",
    "kronecker_like",
    "social_graph",
    "bipartite_recommendation",
    "degree_skewed",
)


def register_builtin_sources() -> None:
    """Seed the ``dataset`` component family (called by the registry loader).

    Registers every named dataset analog (options: ``scale``, ``seed``)
    plus the generator-backed graph sources (options: the generator's own
    parameters, validated up front like any other component options).
    """
    from repro.runtime.registry import register_component

    for name in DATASETS:
        register_component("dataset", name, _dataset_analog_factory(name),
                           replace=True, builtin=True)
    for name in _GENERATOR_SOURCES:
        register_component("dataset", name, getattr(generators, name),
                           replace=True, builtin=True)


def load_dataset(name: str, *, scale: float = 1.0, seed: int = 42) -> DiGraph:
    """Generate (and cache) the synthetic analog of dataset ``name``.

    Parameters
    ----------
    name:
        One of :func:`dataset_names` (e.g. ``"livejournal"``).
    scale:
        Multiplier on the analog's base vertex count.  ``scale=1`` is
        laptop-sized; the scaling benchmarks sweep this value to emulate the
        paper's 68M/223M/1.4B-edge progression.
    seed:
        Seed for the deterministic generator.
    """
    # Canonicalize before the lru_cache so name variants share one entry.
    return _load_cached(dataset_spec(name).name, float(scale), int(seed))
