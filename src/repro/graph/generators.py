"""Synthetic graph generators.

The paper evaluates SNAPLE on five public social/web graphs (gowalla, pokec,
livejournal, orkut, twitter-rv).  Those datasets are not redistributable here
and the largest one has 1.4 billion edges, so the reproduction synthesizes
graphs with matching structural properties:

* heavy-tailed (power-law) degree distributions,
* high clustering coefficients (the property that makes the 2-hop candidate
  restriction of equation (2) effective),
* a wide range of sizes controlled by a single scale parameter.

All generators are deterministic given a seed.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterator, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "powerlaw_cluster",
    "watts_strogatz",
    "kronecker_like",
    "social_graph",
    "bipartite_recommendation",
    "degree_skewed",
    "streamed_powerlaw_edge_chunks",
]


def _validate_counts(num_vertices: int, minimum: int = 0) -> None:
    if num_vertices < minimum:
        raise GraphError(f"num_vertices must be >= {minimum}, got {num_vertices}")


def erdos_renyi(num_vertices: int, edge_probability: float, *, seed: int = 0,
                directed: bool = True) -> DiGraph:
    """Erdős–Rényi ``G(n, p)`` random graph.

    Used as a low-clustering control in tests; field graphs in the paper have
    much higher clustering.
    """
    _validate_counts(num_vertices)
    if not 0.0 <= edge_probability <= 1.0:
        raise GraphError("edge_probability must be in [0, 1]")
    rng = random.Random(seed)
    sources: list[int] = []
    targets: list[int] = []
    for u in range(num_vertices):
        for v in range(num_vertices):
            if u == v:
                continue
            if not directed and v < u:
                continue
            if rng.random() < edge_probability:
                sources.append(u)
                targets.append(v)
                if not directed:
                    sources.append(v)
                    targets.append(u)
    return DiGraph(num_vertices, sources, targets)


def barabasi_albert(num_vertices: int, edges_per_vertex: int, *, seed: int = 0) -> DiGraph:
    """Barabási–Albert preferential-attachment graph (symmetrized).

    Produces the heavy-tailed degree distribution characteristic of the
    paper's social datasets.
    """
    _validate_counts(num_vertices, minimum=1)
    if edges_per_vertex < 1:
        raise GraphError("edges_per_vertex must be >= 1")
    if edges_per_vertex >= num_vertices:
        raise GraphError("edges_per_vertex must be < num_vertices")
    rng = random.Random(seed)
    sources: list[int] = []
    targets: list[int] = []
    # Repeated-nodes list implements preferential attachment in O(E).
    repeated: list[int] = []
    initial = edges_per_vertex
    for u in range(initial):
        for v in range(initial):
            if u != v:
                sources.append(u)
                targets.append(v)
        repeated.extend([u] * max(1, initial - 1))
    for u in range(initial, num_vertices):
        chosen: set[int] = set()
        while len(chosen) < edges_per_vertex:
            candidate = rng.choice(repeated) if repeated else rng.randrange(u)
            if candidate != u:
                chosen.add(candidate)
        for v in chosen:
            sources.extend([u, v])
            targets.extend([v, u])
            repeated.extend([u, v])
    return DiGraph(num_vertices, sources, targets)


def powerlaw_cluster(
    num_vertices: int,
    edges_per_vertex: int,
    triangle_probability: float,
    *,
    seed: int = 0,
) -> DiGraph:
    """Holme–Kim power-law graph with tunable clustering (symmetrized).

    This is the primary generator behind the synthetic dataset analogs: it
    combines preferential attachment (heavy tail) with explicit triangle
    closure (high clustering), the two properties that drive link-prediction
    recall in the paper.
    """
    _validate_counts(num_vertices, minimum=2)
    if edges_per_vertex < 1:
        raise GraphError("edges_per_vertex must be >= 1")
    if edges_per_vertex >= num_vertices:
        raise GraphError("edges_per_vertex must be < num_vertices")
    if not 0.0 <= triangle_probability <= 1.0:
        raise GraphError("triangle_probability must be in [0, 1]")
    rng = random.Random(seed)
    adjacency: list[set[int]] = [set() for _ in range(num_vertices)]
    repeated: list[int] = list(range(edges_per_vertex))

    def connect(u: int, v: int) -> None:
        adjacency[u].add(v)
        adjacency[v].add(u)
        repeated.append(u)
        repeated.append(v)

    for u in range(edges_per_vertex, num_vertices):
        added = 0
        last_target: int | None = None
        while added < edges_per_vertex:
            if (
                last_target is not None
                and rng.random() < triangle_probability
                and adjacency[last_target]
            ):
                # Triangle-closure step: connect to a neighbor of the last
                # attached vertex, creating a triangle u-last_target-v.
                candidates = [w for w in adjacency[last_target]
                              if w != u and w not in adjacency[u]]
                if candidates:
                    v = rng.choice(candidates)
                    connect(u, v)
                    added += 1
                    last_target = v
                    continue
            v = rng.choice(repeated)
            if v != u and v not in adjacency[u]:
                connect(u, v)
                added += 1
                last_target = v
    sources: list[int] = []
    targets: list[int] = []
    for u, neighbors in enumerate(adjacency):
        for v in neighbors:
            sources.append(u)
            targets.append(v)
    return DiGraph(num_vertices, sources, targets)


def watts_strogatz(
    num_vertices: int,
    nearest_neighbors: int,
    rewire_probability: float,
    *,
    seed: int = 0,
) -> DiGraph:
    """Watts–Strogatz small-world graph (symmetrized ring lattice + rewiring)."""
    _validate_counts(num_vertices, minimum=3)
    if nearest_neighbors % 2 != 0:
        raise GraphError("nearest_neighbors must be even")
    if nearest_neighbors >= num_vertices:
        raise GraphError("nearest_neighbors must be < num_vertices")
    if not 0.0 <= rewire_probability <= 1.0:
        raise GraphError("rewire_probability must be in [0, 1]")
    rng = random.Random(seed)
    adjacency: list[set[int]] = [set() for _ in range(num_vertices)]
    half = nearest_neighbors // 2
    for u in range(num_vertices):
        for offset in range(1, half + 1):
            v = (u + offset) % num_vertices
            adjacency[u].add(v)
            adjacency[v].add(u)
    for u in range(num_vertices):
        for offset in range(1, half + 1):
            v = (u + offset) % num_vertices
            if rng.random() < rewire_probability:
                choices = [w for w in range(num_vertices)
                           if w != u and w not in adjacency[u]]
                if not choices:
                    continue
                w = rng.choice(choices)
                adjacency[u].discard(v)
                adjacency[v].discard(u)
                adjacency[u].add(w)
                adjacency[w].add(u)
    sources: list[int] = []
    targets: list[int] = []
    for u, neighbors in enumerate(adjacency):
        for v in neighbors:
            sources.append(u)
            targets.append(v)
    return DiGraph(num_vertices, sources, targets)


def kronecker_like(scale: int, edge_factor: int, *, seed: int = 0) -> DiGraph:
    """RMAT/Kronecker-style generator for very large skewed graphs.

    Generates ``edge_factor * 2**scale`` directed edges over ``2**scale``
    vertices using the classic (0.57, 0.19, 0.19, 0.05) RMAT quadrant
    probabilities.  This is the generator used for the twitter-rv analog,
    whose extreme degree skew stresses the truncation threshold ``thrΓ``.
    """
    if scale < 1 or scale > 26:
        raise GraphError("scale must be between 1 and 26")
    if edge_factor < 1:
        raise GraphError("edge_factor must be >= 1")
    rng = random.Random(seed)
    num_vertices = 1 << scale
    num_edges = edge_factor * num_vertices
    a, b, c = 0.57, 0.19, 0.19
    sources: list[int] = []
    targets: list[int] = []
    seen: set[tuple[int, int]] = set()
    attempts = 0
    max_attempts = num_edges * 10
    while len(sources) < num_edges and attempts < max_attempts:
        attempts += 1
        u = v = 0
        for _ in range(scale):
            r = rng.random()
            if r < a:
                quadrant = (0, 0)
            elif r < a + b:
                quadrant = (0, 1)
            elif r < a + b + c:
                quadrant = (1, 0)
            else:
                quadrant = (1, 1)
            u = (u << 1) | quadrant[0]
            v = (v << 1) | quadrant[1]
        if u == v or (u, v) in seen:
            continue
        seen.add((u, v))
        sources.append(u)
        targets.append(v)
    return DiGraph(num_vertices, sources, targets)


def social_graph(
    num_vertices: int,
    mean_degree: int,
    *,
    clustering: float = 0.6,
    seed: int = 0,
    directed_fraction: float = 0.3,
) -> DiGraph:
    """High-level generator for social-network-like graphs.

    Combines :func:`powerlaw_cluster` structure with a configurable fraction
    of asymmetric (one-way) edges, reflecting follower graphs such as pokec
    or twitter where a fraction of edges is not reciprocated.
    """
    _validate_counts(num_vertices, minimum=4)
    if mean_degree < 2:
        raise GraphError("mean_degree must be >= 2")
    if not 0.0 <= directed_fraction <= 1.0:
        raise GraphError("directed_fraction must be in [0, 1]")
    edges_per_vertex = max(1, mean_degree // 2)
    base = powerlaw_cluster(
        num_vertices, edges_per_vertex, clustering, seed=seed
    )
    rng = random.Random(seed + 1)
    sources: list[int] = []
    targets: list[int] = []
    dropped_reverse: set[tuple[int, int]] = set()
    for u, v in base.edges():
        if (v, u) in dropped_reverse:
            continue
        if u < v and rng.random() < directed_fraction:
            # Keep only one direction for this pair.
            if rng.random() < 0.5:
                sources.append(u)
                targets.append(v)
                dropped_reverse.add((v, u))
            else:
                sources.append(v)
                targets.append(u)
                dropped_reverse.add((u, v))
        else:
            sources.append(u)
            targets.append(v)
    return DiGraph(num_vertices, sources, targets)


def bipartite_recommendation(
    num_users: int,
    num_items: int,
    *,
    edges_per_user: int = 4,
    social_degree: int = 4,
    clustering: float = 0.4,
    popularity_exponent: float = 1.2,
    contagion: float = 0.5,
    seed: int = 0,
) -> DiGraph:
    """User–item recommendation graph: social backbone + item adoptions.

    Vertices ``0..num_users-1`` are users, ``num_users..num_users+num_items-1``
    are items.  Users form a clustered power-law social graph (the
    :func:`powerlaw_cluster` backbone); each user then adopts
    ``edges_per_user`` items, drawn either from a Zipf-like popularity
    distribution (``P(item) ∝ (rank+1)^-popularity_exponent``) or — with
    probability ``contagion`` — copied from a random friend's existing
    adoptions (social contagion).  Adoption edges are symmetrized
    (user→item and item→user) so item neighborhoods are their adopter
    sets, giving the 2-hop candidate space ``user → friend → item`` the
    overlap structure SNAPLE's similarity scores exploit: the predictor
    recommends both new friends *and* new items with zero bipartite-aware
    code.
    """
    _validate_counts(num_users, minimum=4)
    if num_items < 1:
        raise GraphError("num_items must be >= 1")
    if edges_per_user < 1:
        raise GraphError("edges_per_user must be >= 1")
    if social_degree < 2:
        raise GraphError("social_degree must be >= 2")
    if popularity_exponent <= 0.0:
        raise GraphError("popularity_exponent must be positive")
    if not 0.0 <= contagion <= 1.0:
        raise GraphError("contagion must be in [0, 1]")
    backbone = powerlaw_cluster(
        num_users, max(1, social_degree // 2), clustering, seed=seed
    )
    rng = random.Random(seed + 13)
    # Inverse-CDF table over item popularity ranks.
    weights = np.arange(1, num_items + 1, dtype=np.float64) ** -popularity_exponent
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]

    def popular_item() -> int:
        return int(np.searchsorted(cdf, rng.random(), side="left"))

    adoptions: list[set[int]] = [set() for _ in range(num_users)]
    budget = min(edges_per_user, num_items)
    for user in range(num_users):
        friends = [int(v) for v in backbone.out_neighbors(user)
                   if int(v) < user and adoptions[int(v)]]
        while len(adoptions[user]) < budget:
            if friends and rng.random() < contagion:
                friend = rng.choice(friends)
                item = rng.choice(sorted(adoptions[friend]))
            else:
                item = popular_item()
            adoptions[user].add(item)
    sources: list[int] = []
    targets: list[int] = []
    base_src, base_dst = backbone.edge_arrays()
    sources.extend(int(u) for u in base_src)
    targets.extend(int(v) for v in base_dst)
    for user, items in enumerate(adoptions):
        for item in items:
            item_vertex = num_users + item
            sources.extend([user, item_vertex])
            targets.extend([item_vertex, user])
    return DiGraph(num_users + num_items, sources, targets)


def degree_skewed(
    num_vertices: int,
    mean_degree: int,
    *,
    exponent: float = 1.6,
    seed: int = 0,
) -> DiGraph:
    """Adversarially degree-skewed graph (materialized Zipf endpoint draws).

    Both endpoints of every edge are drawn independently from a Zipf-like
    distribution (``P(v) ∝ (v+1)^-exponent``), concentrating a huge
    fraction of the edges on a handful of super-hubs — the structure that
    stresses the truncation threshold ``thrΓ`` and the ``klocal`` sampling
    budget hardest (the paper's twitter-rv pathology, distilled).  Built
    from the same deterministic stream as
    :func:`streamed_powerlaw_edge_chunks`, materialized into a
    :class:`DiGraph`; parallel edges are kept, matching the streamed
    builder's semantics.
    """
    _validate_counts(num_vertices, minimum=2)
    if mean_degree < 1:
        raise GraphError("mean_degree must be >= 1")
    num_edges = num_vertices * mean_degree
    chunks = list(streamed_powerlaw_edge_chunks(
        num_vertices, num_edges, exponent=exponent, seed=seed
    ))
    if not chunks:
        return DiGraph(num_vertices, [], [])
    sources = np.concatenate([chunk[0] for chunk in chunks])
    targets = np.concatenate([chunk[1] for chunk in chunks])
    return DiGraph(num_vertices, sources, targets)


def streamed_powerlaw_edge_chunks(
    num_vertices: int,
    num_edges: int,
    *,
    exponent: float = 2.0,
    seed: int = 0,
    chunk_edges: int = 262_144,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(sources, targets)`` chunks of a power-law graph in O(V) memory.

    The out-of-core path needs graphs far larger than RAM, so unlike the
    materializing generators above this one never holds the edge list: both
    endpoints of every edge are drawn independently from a Zipf-like
    distribution (``P(v) ∝ (v + 1) ** -exponent``) via one precomputed O(V)
    inverse-CDF table, and edges are yielded in fixed-size ``int64`` chunk
    pairs ready for :func:`repro.graph.storage.build_graph_memmap`.
    Self-loops are deterministically redirected to the next vertex.  The
    stream is fully determined by ``(num_vertices, num_edges, exponent,
    seed, chunk_edges)``.
    """
    _validate_counts(num_vertices, minimum=2)
    if num_edges < 0:
        raise GraphError("num_edges must be non-negative")
    if exponent <= 0.0:
        raise GraphError("exponent must be positive")
    if chunk_edges < 1:
        raise GraphError("chunk_edges must be positive")
    weights = np.arange(1, num_vertices + 1, dtype=np.float64) ** -exponent
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    rng = np.random.default_rng(seed)
    remaining = num_edges
    while remaining > 0:
        size = min(chunk_edges, remaining)
        draws = rng.random((2, size))
        sources = np.searchsorted(cdf, draws[0], side="left").astype(np.int64)
        targets = np.searchsorted(cdf, draws[1], side="left").astype(np.int64)
        loops = sources == targets
        if loops.any():
            targets[loops] = (targets[loops] + 1) % num_vertices
        yield sources, targets
        remaining -= size


def expected_edges(generator_name: str, params: Sequence[float]) -> int:
    """Rough expected edge count for a generator invocation (used in tests)."""
    if generator_name == "barabasi_albert":
        n, m = params
        return int(2 * (n - m) * m)
    if generator_name == "kronecker_like":
        scale, edge_factor = params
        return int(edge_factor * (1 << int(scale)))
    if generator_name == "erdos_renyi":
        n, p = params
        return int(n * (n - 1) * p)
    raise GraphError(f"unknown generator: {generator_name}")


def _log_binned_degrees(degrees: Sequence[int], bins: int = 20) -> list[tuple[float, int]]:
    """Helper used by docs/examples to show the degree histogram."""
    positive = [d for d in degrees if d > 0]
    if not positive:
        return []
    max_degree = max(positive)
    edges = [math.exp(i * math.log(max_degree + 1) / bins) for i in range(bins + 1)]
    histogram: list[tuple[float, int]] = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        count = sum(1 for d in positive if lo <= d < hi)
        histogram.append(((lo + hi) / 2, count))
    return histogram
