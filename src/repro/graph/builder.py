"""Mutable graph builder used to construct :class:`~repro.graph.digraph.DiGraph`.

The builder accepts arbitrary hashable vertex labels (strings, tuples, ints)
and produces a dense-id graph along with a label mapping, mirroring how the
paper's prototype loads SNAP-format edge lists whose vertex ids are sparse.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from repro.errors import GraphBuildError
from repro.graph.digraph import DiGraph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Incremental builder for directed graphs.

    Parameters
    ----------
    allow_self_loops:
        When ``False`` (the default) self loops are silently dropped, which
        matches the link-prediction setting where ``(u, u)`` is never a
        candidate edge.
    deduplicate:
        When ``True`` (the default) repeated edges are stored only once.
    """

    def __init__(self, *, allow_self_loops: bool = False, deduplicate: bool = True) -> None:
        self._allow_self_loops = allow_self_loops
        self._deduplicate = deduplicate
        self._label_to_id: dict[Hashable, int] = {}
        self._labels: list[Hashable] = []
        self._edges: list[tuple[int, int]] = []
        self._edge_set: set[tuple[int, int]] = set()
        self._finalized = False

    # ------------------------------------------------------------------
    def _intern(self, label: Hashable) -> int:
        vertex = self._label_to_id.get(label)
        if vertex is None:
            vertex = len(self._labels)
            self._label_to_id[label] = vertex
            self._labels.append(label)
        return vertex

    def add_vertex(self, label: Hashable) -> int:
        """Register a vertex and return its dense id."""
        self._check_not_finalized()
        return self._intern(label)

    def add_edge(self, source: Hashable, target: Hashable) -> None:
        """Add the directed edge ``source -> target``."""
        self._check_not_finalized()
        u = self._intern(source)
        v = self._intern(target)
        if u == v and not self._allow_self_loops:
            return
        edge = (u, v)
        if self._deduplicate:
            if edge in self._edge_set:
                return
            self._edge_set.add(edge)
        self._edges.append(edge)

    def add_edges(self, edges: Iterable[tuple[Hashable, Hashable]]) -> None:
        """Add many directed edges."""
        for source, target in edges:
            self.add_edge(source, target)

    def add_undirected_edge(self, a: Hashable, b: Hashable) -> None:
        """Add both ``a -> b`` and ``b -> a``.

        This is the transformation the paper applies to undirected datasets
        (gowalla, orkut) before running SNAPLE.
        """
        self.add_edge(a, b)
        self.add_edge(b, a)

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of distinct vertices added so far."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of edges added so far."""
        return len(self._edges)

    def vertex_id(self, label: Hashable) -> int:
        """Dense id assigned to ``label``.

        Raises :class:`~repro.errors.GraphBuildError` for unknown labels.
        """
        try:
            return self._label_to_id[label]
        except KeyError as exc:
            raise GraphBuildError(f"unknown vertex label: {label!r}") from exc

    def labels(self) -> list[Hashable]:
        """List of vertex labels indexed by dense id."""
        return list(self._labels)

    # ------------------------------------------------------------------
    def build(self) -> DiGraph:
        """Finalize and return the immutable :class:`DiGraph`."""
        self._check_not_finalized()
        self._finalized = True
        if self._edges:
            sources, targets = zip(*self._edges)
        else:
            sources, targets = (), ()
        return DiGraph(len(self._labels), sources, targets)

    def build_with_labels(self) -> tuple[DiGraph, dict[Hashable, int]]:
        """Finalize and return the graph plus the label -> id mapping."""
        mapping = dict(self._label_to_id)
        return self.build(), mapping

    def _check_not_finalized(self) -> None:
        if self._finalized:
            raise GraphBuildError("builder has already produced a graph")
