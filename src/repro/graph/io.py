"""Graph I/O: SNAP-style edge lists and on-disk memmap containers.

The evaluation datasets of the paper (gowalla, pokec, livejournal, orkut,
twitter-rv) are distributed as whitespace-separated edge lists with optional
``#`` comment lines.  These helpers read and write that format, optionally
gzip-compressed.  The out-of-core container format (a directory holding the
eight CSR arrays page-aligned behind a checksummed manifest) lives in
:mod:`repro.graph.storage` and is re-exported here; :func:`load_graph`
auto-detects which of the two formats a path holds.
"""

from __future__ import annotations

import gzip
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.errors import GraphIOError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph
from repro.graph.storage import (
    is_graph_container,
    load_graph_memmap,
    save_graph_memmap,
)

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "iter_edge_list",
    "load_graph",
    "save_graph",
    "is_graph_container",
    "load_graph_memmap",
    "save_graph_memmap",
]


def _open_text(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def iter_edge_list(path: str | Path) -> Iterator[tuple[int, int]]:
    """Yield ``(source, target)`` integer pairs from an edge-list file.

    Lines starting with ``#`` or ``%`` are treated as comments and skipped,
    as are blank lines.  Malformed lines raise
    :class:`~repro.errors.GraphIOError` with the offending line number.
    """
    path = Path(path)
    if not path.exists():
        raise GraphIOError(f"edge-list file not found: {path}")
    with _open_text(path, "r") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#") or line.startswith("%"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphIOError(
                    f"{path}:{lineno}: expected at least two columns, got {line!r}"
                )
            try:
                yield int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphIOError(
                    f"{path}:{lineno}: non-integer vertex id in {line!r}"
                ) from exc


def read_edge_list(
    path: str | Path,
    *,
    undirected: bool = False,
    deduplicate: bool = True,
) -> DiGraph:
    """Read an edge list into a :class:`DiGraph`.

    Vertex ids in the file may be sparse; they are remapped to a dense
    ``0..n-1`` range in first-seen order.  With ``undirected=True`` each edge
    is duplicated in both directions, as the paper does for gowalla and orkut.
    """
    builder = GraphBuilder(deduplicate=deduplicate)
    for source, target in iter_edge_list(path):
        if undirected:
            builder.add_undirected_edge(source, target)
        else:
            builder.add_edge(source, target)
    return builder.build()


def write_edge_list(
    path: str | Path,
    edges: Iterable[tuple[int, int]],
    *,
    header: str | None = None,
) -> int:
    """Write edges to a whitespace-separated edge-list file.

    Returns the number of edges written.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with _open_text(path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for source, target in edges:
            handle.write(f"{source}\t{target}\n")
            count += 1
    return count


def load_graph(path: str | Path, *, undirected: bool = False) -> DiGraph:
    """Load a graph from an edge-list file or a memmap container directory.

    Container directories (see :mod:`repro.graph.storage`) load in O(1) as
    read-only memmap views; anything else is parsed as an edge list.
    ``undirected`` only applies to edge lists — containers persist a fully
    built graph.
    """
    if is_graph_container(path):
        if undirected:
            raise GraphIOError(
                "undirected=True is not applicable to a memmap graph "
                "container (the container already holds the built CSR)"
            )
        return load_graph_memmap(path)
    return read_edge_list(path, undirected=undirected)


def save_graph(graph: DiGraph, path: str | Path, *, header: str | None = None) -> int:
    """Persist a graph as an edge list; returns the number of edges written."""
    return write_edge_list(path, graph.edges(), header=header)
