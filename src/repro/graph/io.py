"""Edge-list I/O in the SNAP / GraphLab ``tsv`` style used by the paper.

The evaluation datasets of the paper (gowalla, pokec, livejournal, orkut,
twitter-rv) are distributed as whitespace-separated edge lists with optional
``#`` comment lines.  These helpers read and write that format, optionally
gzip-compressed.
"""

from __future__ import annotations

import gzip
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.errors import GraphIOError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "iter_edge_list",
    "load_graph",
    "save_graph",
]


def _open_text(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def iter_edge_list(path: str | Path) -> Iterator[tuple[int, int]]:
    """Yield ``(source, target)`` integer pairs from an edge-list file.

    Lines starting with ``#`` or ``%`` are treated as comments and skipped,
    as are blank lines.  Malformed lines raise
    :class:`~repro.errors.GraphIOError` with the offending line number.
    """
    path = Path(path)
    if not path.exists():
        raise GraphIOError(f"edge-list file not found: {path}")
    with _open_text(path, "r") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#") or line.startswith("%"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphIOError(
                    f"{path}:{lineno}: expected at least two columns, got {line!r}"
                )
            try:
                yield int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphIOError(
                    f"{path}:{lineno}: non-integer vertex id in {line!r}"
                ) from exc


def read_edge_list(
    path: str | Path,
    *,
    undirected: bool = False,
    deduplicate: bool = True,
) -> DiGraph:
    """Read an edge list into a :class:`DiGraph`.

    Vertex ids in the file may be sparse; they are remapped to a dense
    ``0..n-1`` range in first-seen order.  With ``undirected=True`` each edge
    is duplicated in both directions, as the paper does for gowalla and orkut.
    """
    builder = GraphBuilder(deduplicate=deduplicate)
    for source, target in iter_edge_list(path):
        if undirected:
            builder.add_undirected_edge(source, target)
        else:
            builder.add_edge(source, target)
    return builder.build()


def write_edge_list(
    path: str | Path,
    edges: Iterable[tuple[int, int]],
    *,
    header: str | None = None,
) -> int:
    """Write edges to a whitespace-separated edge-list file.

    Returns the number of edges written.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with _open_text(path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for source, target in edges:
            handle.write(f"{source}\t{target}\n")
            count += 1
    return count


def load_graph(path: str | Path, *, undirected: bool = False) -> DiGraph:
    """Alias of :func:`read_edge_list` kept for API symmetry with ``save_graph``."""
    return read_edge_list(path, undirected=undirected)


def save_graph(graph: DiGraph, path: str | Path, *, header: str | None = None) -> int:
    """Persist a graph as an edge list; returns the number of edges written."""
    return write_edge_list(path, graph.edges(), header=header)
