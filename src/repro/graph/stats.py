"""Graph statistics used throughout the evaluation.

Figure 6 of the paper plots the CDF of vertex out-degrees for orkut,
livejournal and twitter-rv and superimposes candidate truncation thresholds
``thrΓ``; the recall saturation point is the degree covering ~80 % of the
vertices.  These helpers compute the required distributions plus clustering
statistics used to validate the synthetic dataset analogs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.graph.digraph import DiGraph

__all__ = [
    "DegreeCDF",
    "out_degree_cdf",
    "in_degree_cdf",
    "degree_coverage",
    "coverage_threshold",
    "clustering_coefficient",
    "average_clustering",
    "reciprocity",
    "degree_assortativity",
]


@dataclass(frozen=True)
class DegreeCDF:
    """Empirical cumulative distribution of vertex degrees.

    ``degrees`` holds the distinct degree values in increasing order and
    ``cumulative`` the fraction of vertices whose degree is <= each value.
    """

    degrees: tuple[int, ...]
    cumulative: tuple[float, ...]

    def fraction_at_most(self, degree: int) -> float:
        """Fraction of vertices with degree <= ``degree``."""
        if not self.degrees:
            return 1.0
        idx = int(np.searchsorted(np.asarray(self.degrees), degree, side="right")) - 1
        if idx < 0:
            return 0.0
        return self.cumulative[idx]

    def quantile(self, fraction: float) -> int:
        """Smallest degree value covering at least ``fraction`` of vertices."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if not self.degrees:
            return 0
        for degree, cum in zip(self.degrees, self.cumulative):
            if cum >= fraction:
                return degree
        return self.degrees[-1]

    def as_series(self) -> list[tuple[int, float]]:
        """Return ``(degree, cumulative fraction)`` pairs for plotting/tables."""
        return list(zip(self.degrees, self.cumulative))


def _cdf_from_degrees(degrees: np.ndarray) -> DegreeCDF:
    if degrees.size == 0:
        return DegreeCDF((), ())
    values, counts = np.unique(degrees, return_counts=True)
    cumulative = np.cumsum(counts) / degrees.size
    return DegreeCDF(tuple(int(v) for v in values),
                     tuple(float(c) for c in cumulative))


def out_degree_cdf(graph: DiGraph) -> DegreeCDF:
    """CDF of out-degrees, matching Figures 6a–6c of the paper."""
    return _cdf_from_degrees(graph.out_degrees())


def in_degree_cdf(graph: DiGraph) -> DegreeCDF:
    """CDF of in-degrees."""
    return _cdf_from_degrees(graph.in_degrees())


def degree_coverage(graph: DiGraph, threshold: int) -> float:
    """Fraction of vertices whose out-degree is at most ``threshold``.

    This is the quantity the paper uses to explain when truncation (thrΓ)
    stops hurting recall: once the threshold covers ~80 % of vertices, very
    few neighborhoods are actually truncated.
    """
    return out_degree_cdf(graph).fraction_at_most(threshold)


def coverage_threshold(graph: DiGraph, fraction: float = 0.8) -> int:
    """Smallest thrΓ covering at least ``fraction`` of the vertices."""
    return out_degree_cdf(graph).quantile(fraction)


def clustering_coefficient(graph: DiGraph, vertex: int) -> float:
    """Local clustering coefficient of ``vertex`` on the symmetrized graph."""
    neighbors = set(graph.out_neighbors(vertex).tolist())
    neighbors |= set(graph.in_neighbors(vertex).tolist())
    neighbors.discard(vertex)
    k = len(neighbors)
    if k < 2:
        return 0.0
    links = 0
    for v in neighbors:
        v_neighbors = set(graph.out_neighbors(v).tolist())
        links += len(v_neighbors & neighbors)
    return links / (k * (k - 1))


def average_clustering(graph: DiGraph, *, sample_size: int | None = None,
                       seed: int = 0) -> float:
    """Average local clustering coefficient, optionally over a vertex sample."""
    vertices: list[int] = list(range(graph.num_vertices))
    if not vertices:
        return 0.0
    if sample_size is not None and sample_size < len(vertices):
        rng = random.Random(seed)
        vertices = rng.sample(vertices, sample_size)
    total = sum(clustering_coefficient(graph, v) for v in vertices)
    return total / len(vertices)


def reciprocity(graph: DiGraph) -> float:
    """Fraction of directed edges whose reverse edge also exists."""
    if graph.num_edges == 0:
        return 0.0
    edges = set(graph.edges())
    reciprocated = sum(1 for (u, v) in edges if (v, u) in edges)
    return reciprocated / len(edges)


def degree_assortativity(graph: DiGraph) -> float:
    """Pearson correlation between source out-degree and target in-degree."""
    src, dst = graph.edge_arrays()
    if src.size < 2:
        return 0.0
    out_deg = graph.out_degrees()
    in_deg = graph.in_degrees()
    x = out_deg[src].astype(float)
    y = in_deg[dst].astype(float)
    if np.std(x) == 0 or np.std(y) == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])
