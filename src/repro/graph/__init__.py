"""Graph substrate: compact directed graphs, generators, datasets, and stats."""

from repro.graph.attributes import VertexProfiles, generate_profiles
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph, GraphSummary
from repro.graph.io import load_graph, read_edge_list, save_graph, write_edge_list

__all__ = [
    "DiGraph",
    "GraphSummary",
    "GraphBuilder",
    "read_edge_list",
    "write_edge_list",
    "load_graph",
    "save_graph",
    "VertexProfiles",
    "generate_profiles",
]
