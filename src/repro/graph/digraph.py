"""Compact directed graph backed by CSR-style adjacency arrays.

The graph is immutable once constructed.  Vertices are dense integers in
``[0, num_vertices)``.  Both out-adjacency and in-adjacency are stored so the
SNAPLE scoring framework can access the inverse neighborhood ``Γ⁻¹(u)`` used
by the path-aggregation step (equation (9) in the paper).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, GraphError, VertexNotFoundError

__all__ = ["DiGraph", "GraphSummary", "CSR_ARRAY_NAMES"]

#: The eight CSR arrays that fully describe a :class:`DiGraph`, in the
#: canonical order used by shared-memory packing and the on-disk container.
CSR_ARRAY_NAMES = (
    "out_indptr",
    "out_indices",
    "out_order",
    "in_indptr",
    "in_indices",
    "in_order",
    "edge_src",
    "edge_dst",
)


@dataclass(frozen=True)
class GraphSummary:
    """Lightweight summary of a graph, used by reports and dataset registries."""

    num_vertices: int
    num_edges: int
    max_out_degree: int
    max_in_degree: int
    mean_out_degree: float

    def __str__(self) -> str:
        return (
            f"|V|={self.num_vertices:,} |E|={self.num_edges:,} "
            f"max_out={self.max_out_degree} max_in={self.max_in_degree} "
            f"mean_out={self.mean_out_degree:.2f}"
        )


class DiGraph:
    """Immutable directed graph with O(1) neighborhood slicing.

    Parameters
    ----------
    num_vertices:
        Number of vertices; vertex ids are ``0 .. num_vertices - 1``.
    sources, targets:
        Parallel integer iterables describing the directed edges
        ``sources[i] -> targets[i]``.  Arrays and sequences are converted
        in place; generators/iterators are consumed in a single pass (no
        intermediate list materialization).  Duplicate edges and self loops
        are kept as provided; use
        :class:`~repro.graph.builder.GraphBuilder` to deduplicate while
        building.
    """

    __slots__ = (
        "_num_vertices",
        "_out_indptr",
        "_out_indices",
        "_out_order",
        "_in_indptr",
        "_in_indices",
        "_in_order",
        "_edge_src",
        "_edge_dst",
        "_memmap_path",
    )

    def __init__(
        self,
        num_vertices: int,
        sources: Iterable[int],
        targets: Iterable[int],
    ) -> None:
        if num_vertices < 0:
            raise GraphError("num_vertices must be non-negative")
        src = _as_edge_array(sources, "sources")
        dst = _as_edge_array(targets, "targets")
        if src.shape != dst.shape:
            raise GraphError(
                f"sources and targets must have the same length "
                f"({src.size} != {dst.size})"
            )
        if src.size:
            lo = min(src.min(), dst.min())
            hi = max(src.max(), dst.max())
            if lo < 0 or hi >= num_vertices:
                raise GraphError(
                    f"edge endpoints must lie in [0, {num_vertices}); "
                    f"found range [{lo}, {hi}]"
                )
        self._num_vertices = int(num_vertices)
        self._memmap_path = None
        self._edge_src = src
        self._edge_dst = dst
        self._out_indptr, self._out_indices, self._out_order = _build_csr(
            num_vertices, src, dst
        )
        self._in_indptr, self._in_indices, self._in_order = _build_csr(
            num_vertices, dst, src
        )

    @classmethod
    def from_csr_arrays(
        cls,
        num_vertices: int,
        *,
        out_indptr: np.ndarray,
        out_indices: np.ndarray,
        out_order: np.ndarray,
        in_indptr: np.ndarray,
        in_indices: np.ndarray,
        in_order: np.ndarray,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        read_only: bool = False,
    ) -> "DiGraph":
        """Adopt prebuilt CSR arrays without re-deriving them.

        This is how parallel workers reconstruct the graph over
        shared-memory views (:func:`repro.runtime.shm.attach_graph`) and how
        :meth:`load_memmap` adopts on-disk views: the arrays are adopted
        as-is — no copy, no sort — so the caller guarantees they came from a
        real :class:`DiGraph`.  Dtypes and shapes are always validated;
        with ``read_only=True`` every array must additionally be a
        non-writable view (a writable array would let callers silently
        mutate a graph that advertises itself as immutable and shared), and
        a violation raises :class:`~repro.errors.ConfigurationError` instead
        of crashing downstream.
        """
        if num_vertices < 0:
            raise GraphError("num_vertices must be non-negative")
        arrays = {
            "out_indptr": out_indptr,
            "out_indices": out_indices,
            "out_order": out_order,
            "in_indptr": in_indptr,
            "in_indices": in_indices,
            "in_order": in_order,
            "edge_src": edge_src,
            "edge_dst": edge_dst,
        }
        for label, array in arrays.items():
            if not isinstance(array, np.ndarray):
                raise ConfigurationError(
                    f"from_csr_arrays: {label} must be a numpy array, "
                    f"got {type(array).__name__}"
                )
            if array.ndim != 1:
                raise ConfigurationError(
                    f"from_csr_arrays: {label} must be one-dimensional, "
                    f"got shape {array.shape}"
                )
            if array.dtype != np.int64:
                raise ConfigurationError(
                    f"from_csr_arrays: {label} must have dtype int64, "
                    f"got {array.dtype}"
                )
            if read_only and array.flags.writeable:
                raise ConfigurationError(
                    f"from_csr_arrays: {label} is a writable array but "
                    f"read_only=True was requested; pass a non-writable "
                    f"view (array.flags.writeable = False)"
                )
        if (out_indptr.size != num_vertices + 1
                or in_indptr.size != num_vertices + 1):
            raise GraphError(
                "indptr arrays must have num_vertices + 1 entries"
            )
        num_edges = int(edge_src.size)
        for label, array, expected in (
            ("edge_dst", edge_dst, num_edges),
            ("out_indices", out_indices, num_edges),
            ("out_order", out_order, num_edges),
            ("in_indices", in_indices, num_edges),
            ("in_order", in_order, num_edges),
        ):
            if array.size != expected:
                raise GraphError(
                    f"{label} must have one entry per edge "
                    f"({array.size} != {expected})"
                )
        graph = object.__new__(cls)
        graph._num_vertices = int(num_vertices)
        graph._memmap_path = None
        graph._out_indptr = out_indptr
        graph._out_indices = out_indices
        graph._out_order = out_order
        graph._in_indptr = in_indptr
        graph._in_indices = in_indices
        graph._in_order = in_order
        graph._edge_src = edge_src
        graph._edge_dst = edge_dst
        return graph

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices in the graph."""
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """Number of directed edges in the graph."""
        return int(self._edge_src.size)

    @property
    def memmap_path(self) -> str | None:
        """Path of the on-disk container backing this graph, if any.

        Set by :meth:`load_memmap`; the parallel executor uses it to hand
        workers the existing container instead of re-spooling the arrays.
        """
        return self._memmap_path

    def csr_arrays(self) -> dict[str, np.ndarray]:
        """The eight CSR arrays keyed by :data:`CSR_ARRAY_NAMES`."""
        return {name: getattr(self, f"_{name}") for name in CSR_ARRAY_NAMES}

    def save_memmap(self, path) -> None:
        """Persist the CSR arrays to an on-disk container at ``path``.

        See :func:`repro.graph.storage.save_graph_memmap` for the format.
        """
        from repro.graph.storage import save_graph_memmap

        save_graph_memmap(self, path)

    @classmethod
    def load_memmap(cls, path, *, verify: bool = False) -> "DiGraph":
        """O(1) load of a graph container as read-only memmap-backed views.

        See :func:`repro.graph.storage.load_graph_memmap`.
        """
        from repro.graph.storage import load_graph_memmap

        return load_graph_memmap(path, verify=verify)

    def vertices(self) -> range:
        """Iterate over all vertex ids."""
        return range(self._num_vertices)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over all directed edges as ``(source, target)`` pairs."""
        for s, t in zip(self._edge_src.tolist(), self._edge_dst.tolist()):
            yield s, t

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return the raw ``(sources, targets)`` arrays (read-only views)."""
        src = self._edge_src.view()
        dst = self._edge_dst.view()
        src.flags.writeable = False
        dst.flags.writeable = False
        return src, dst

    # ------------------------------------------------------------------
    # Neighborhood access
    # ------------------------------------------------------------------
    def _check_vertex(self, u: int) -> None:
        if not 0 <= u < self._num_vertices:
            raise VertexNotFoundError(u, self._num_vertices)

    def out_neighbors(self, u: int) -> np.ndarray:
        """Out-neighborhood ``Γ(u)`` as a read-only integer array."""
        self._check_vertex(u)
        view = self._out_indices[self._out_indptr[u]:self._out_indptr[u + 1]]
        return view

    def in_neighbors(self, u: int) -> np.ndarray:
        """In-neighborhood ``Γ⁻¹(u)`` as a read-only integer array."""
        self._check_vertex(u)
        return self._in_indices[self._in_indptr[u]:self._in_indptr[u + 1]]

    def out_degree(self, u: int) -> int:
        """Number of outgoing edges of ``u``."""
        self._check_vertex(u)
        return int(self._out_indptr[u + 1] - self._out_indptr[u])

    def in_degree(self, u: int) -> int:
        """Number of incoming edges of ``u``."""
        self._check_vertex(u)
        return int(self._in_indptr[u + 1] - self._in_indptr[u])

    def out_degrees(self) -> np.ndarray:
        """Array of out-degrees for every vertex."""
        return np.diff(self._out_indptr)

    def in_degrees(self) -> np.ndarray:
        """Array of in-degrees for every vertex."""
        return np.diff(self._in_indptr)

    def out_edge_span(self, u: int) -> tuple[int, int]:
        """CSR slice ``[start, end)`` of ``u``'s out-edges.

        Positions index into the order returned by :meth:`csr_out_order`,
        letting callers (the GAS engine) associate each out-neighbor of ``u``
        with per-edge metadata such as the machine the edge is placed on.
        """
        self._check_vertex(u)
        return int(self._out_indptr[u]), int(self._out_indptr[u + 1])

    def in_edge_span(self, u: int) -> tuple[int, int]:
        """CSR slice ``[start, end)`` of ``u``'s in-edges (see :meth:`out_edge_span`)."""
        self._check_vertex(u)
        return int(self._in_indptr[u]), int(self._in_indptr[u + 1])

    def csr_out_adjacency(self) -> tuple[np.ndarray, np.ndarray]:
        """The raw out-adjacency CSR pair ``(indptr, indices)``.

        Rows are sorted (duplicate edges kept), which is what lets the
        vectorized scoring kernel (:mod:`repro.snaple.kernel`) run merge
        intersections and membership tests directly on these arrays.
        """
        return self._out_indptr, self._out_indices

    def csr_out_order(self) -> np.ndarray:
        """Permutation mapping CSR out-edge positions to original edge indices."""
        return self._out_order

    def csr_in_order(self) -> np.ndarray:
        """Permutation mapping CSR in-edge positions to original edge indices."""
        return self._in_order

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` when the directed edge ``u -> v`` exists."""
        self._check_vertex(u)
        self._check_vertex(v)
        neighbors = self.out_neighbors(u)
        # Neighborhoods are sorted by construction, so binary search applies.
        idx = np.searchsorted(neighbors, v)
        return bool(idx < neighbors.size and neighbors[idx] == v)

    def neighbor_set(self, u: int) -> set[int]:
        """Out-neighborhood of ``u`` as a Python set."""
        return set(self.out_neighbors(u).tolist())

    def two_hop_neighbors(self, u: int, *, exclude_direct: bool = True) -> set[int]:
        """Vertices reachable from ``u`` over exactly two directed hops.

        With ``exclude_direct`` (the default, matching equation (2) of the
        paper) direct neighbors of ``u`` and ``u`` itself are removed from the
        result, leaving only candidate vertices for link prediction.
        """
        self._check_vertex(u)
        direct = self.neighbor_set(u)
        result: set[int] = set()
        for v in direct:
            result.update(self.out_neighbors(v).tolist())
        if exclude_direct:
            result -= direct
            result.discard(u)
        return result

    def k_hop_neighbors(self, u: int, k: int, *, exclude_direct: bool = True) -> set[int]:
        """Vertices reachable from ``u`` within ``k`` hops (``Γᴷ(u)``)."""
        if k < 1:
            raise GraphError("k must be >= 1")
        self._check_vertex(u)
        frontier = self.neighbor_set(u)
        visited = set(frontier)
        for _ in range(k - 1):
            next_frontier: set[int] = set()
            for v in frontier:
                next_frontier.update(self.out_neighbors(v).tolist())
            next_frontier -= visited
            visited |= next_frontier
            frontier = next_frontier
        if exclude_direct:
            visited -= self.neighbor_set(u)
            visited.discard(u)
        return visited

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reversed(self) -> "DiGraph":
        """Graph with every edge direction flipped."""
        return DiGraph(self._num_vertices, self._edge_dst, self._edge_src)

    def to_undirected(self) -> "DiGraph":
        """Symmetrized graph with each edge duplicated in both directions.

        This is the transformation the paper applies to the undirected
        gowalla and orkut datasets.
        """
        src = np.concatenate([self._edge_src, self._edge_dst])
        dst = np.concatenate([self._edge_dst, self._edge_src])
        pairs = np.unique(np.stack([src, dst], axis=1), axis=0)
        # Remove self loops produced by symmetric duplicates of loops.
        return DiGraph(self._num_vertices, pairs[:, 0], pairs[:, 1])

    def remove_edges(self, edges: Iterable[tuple[int, int]]) -> "DiGraph":
        """Return a copy of the graph without the given directed edges."""
        to_remove = set(edges)
        if not to_remove:
            return self
        keep_src: list[int] = []
        keep_dst: list[int] = []
        for s, t in zip(self._edge_src.tolist(), self._edge_dst.tolist()):
            if (s, t) not in to_remove:
                keep_src.append(s)
                keep_dst.append(t)
        return DiGraph(self._num_vertices, keep_src, keep_dst)

    def subgraph(self, vertices: Iterable[int]) -> tuple["DiGraph", dict[int, int]]:
        """Induced subgraph on ``vertices``.

        Returns the subgraph (with relabeled dense vertex ids) and a mapping
        from original vertex ids to new ids.
        """
        kept = sorted(set(vertices))
        for v in kept:
            self._check_vertex(v)
        mapping = {old: new for new, old in enumerate(kept)}
        src: list[int] = []
        dst: list[int] = []
        kept_set = set(kept)
        for s, t in zip(self._edge_src.tolist(), self._edge_dst.tolist()):
            if s in kept_set and t in kept_set:
                src.append(mapping[s])
                dst.append(mapping[t])
        return DiGraph(len(kept), src, dst), mapping

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def summary(self) -> GraphSummary:
        """Return a :class:`GraphSummary` of this graph."""
        out_deg = self.out_degrees()
        in_deg = self.in_degrees()
        return GraphSummary(
            num_vertices=self._num_vertices,
            num_edges=self.num_edges,
            max_out_degree=int(out_deg.max()) if out_deg.size else 0,
            max_in_degree=int(in_deg.max()) if in_deg.size else 0,
            mean_out_degree=float(out_deg.mean()) if out_deg.size else 0.0,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"DiGraph(|V|={self._num_vertices}, |E|={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        if self._num_vertices != other._num_vertices:
            return False
        mine = np.stack(
            [self._out_indptr, np.zeros_like(self._out_indptr)], axis=0
        )
        theirs = np.stack(
            [other._out_indptr, np.zeros_like(other._out_indptr)], axis=0
        )
        return bool(
            np.array_equal(mine, theirs)
            and np.array_equal(self._out_indices, other._out_indices)
        )

    def __hash__(self) -> int:
        return hash((self._num_vertices, self.num_edges))


def _as_edge_array(endpoints: Iterable[int], label: str) -> np.ndarray:
    """One ``int64`` array from any edge-endpoint input, materialized once.

    Arrays and sequences (lists, tuples, ranges) go straight through
    ``np.asarray``; iterators and generators are consumed by ``np.fromiter``.
    The historical implementation called ``list(...)`` on every non-array
    input, materializing sequences twice (once as the list copy, once as the
    array) — for a 100M-edge ingest that is an extra multi-GB allocation.
    """
    if isinstance(endpoints, np.ndarray):
        if endpoints.ndim != 1:
            raise GraphError(f"{label} must be one-dimensional")
        return np.asarray(endpoints, dtype=np.int64)
    if isinstance(endpoints, Sequence):
        return np.asarray(endpoints, dtype=np.int64)
    try:
        return np.fromiter(endpoints, dtype=np.int64)
    except TypeError as exc:
        raise GraphError(f"{label} must be an iterable of integers") from exc


def _build_csr(
    num_vertices: int, src: np.ndarray, dst: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build a CSR adjacency (indptr, indices, edge order) with sorted neighbors.

    The returned ``order`` maps each CSR position back to the original edge
    index, which the GAS engine uses to look up per-edge placement metadata.
    """
    counts = np.bincount(src, minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    order = np.lexsort((dst, src))
    indices = dst[order].astype(np.int64, copy=True)
    return indptr, indices, order
