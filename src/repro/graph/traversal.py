"""Graph traversal utilities: BFS, connected components, path statistics.

The paper's candidate restriction (equation (2)) relies on field graphs
having high clustering and short paths, so that most missing edges connect
vertices only two hops apart.  These helpers quantify that property for the
synthetic dataset analogs (and any user graph): breadth-first distances,
weakly connected components, the fraction of held-out edges reachable within
K hops, and an estimate of the effective diameter.
"""

from __future__ import annotations

import random
from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import GraphError
from repro.graph.digraph import DiGraph

__all__ = [
    "bfs_distances",
    "weakly_connected_components",
    "largest_component_fraction",
    "two_hop_coverage",
    "ReachabilityStats",
    "effective_diameter",
]


def bfs_distances(graph: DiGraph, source: int, *,
                  max_depth: int | None = None) -> dict[int, int]:
    """Breadth-first hop distances from ``source`` over out-edges.

    Returns a mapping from reachable vertex to its distance (the source maps
    to 0).  ``max_depth`` bounds the exploration depth.
    """
    if max_depth is not None and max_depth < 0:
        raise GraphError("max_depth must be non-negative")
    distances = {source: 0}
    queue: deque[int] = deque([source])
    while queue:
        current = queue.popleft()
        depth = distances[current]
        if max_depth is not None and depth >= max_depth:
            continue
        for neighbor in graph.out_neighbors(current).tolist():
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                queue.append(neighbor)
    return distances


def weakly_connected_components(graph: DiGraph) -> list[set[int]]:
    """Weakly connected components (edge direction ignored), largest first."""
    unvisited = set(range(graph.num_vertices))
    components: list[set[int]] = []
    while unvisited:
        start = next(iter(unvisited))
        component = {start}
        queue: deque[int] = deque([start])
        unvisited.discard(start)
        while queue:
            current = queue.popleft()
            neighbors: set[int] = set(graph.out_neighbors(current).tolist())
            neighbors.update(graph.in_neighbors(current).tolist())
            for neighbor in neighbors:
                if neighbor in unvisited:
                    unvisited.discard(neighbor)
                    component.add(neighbor)
                    queue.append(neighbor)
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def largest_component_fraction(graph: DiGraph) -> float:
    """Fraction of vertices in the largest weakly connected component."""
    if graph.num_vertices == 0:
        return 0.0
    components = weakly_connected_components(graph)
    return len(components[0]) / graph.num_vertices


def two_hop_coverage(graph: DiGraph,
                     held_out_edges: Iterable[tuple[int, int]]) -> float:
    """Fraction of held-out edges whose target is within 2 hops of its source.

    This is the quantity that justifies the paper's K = 2 candidate
    restriction: on clustered field graphs the overwhelming majority of the
    edges to be predicted connect vertices two hops apart in the training
    graph.
    """
    edges = list(held_out_edges)
    if not edges:
        return 0.0
    covered = 0
    for source, target in edges:
        if target in graph.two_hop_neighbors(source):
            covered += 1
    return covered / len(edges)


@dataclass(frozen=True)
class ReachabilityStats:
    """Sampled reachability/distance statistics of a graph."""

    sampled_sources: int
    mean_reachable: float
    mean_distance: float
    effective_diameter: int


def effective_diameter(graph: DiGraph, *, sample_size: int = 50,
                       percentile: float = 0.9, seed: int = 0,
                       max_depth: int = 12) -> ReachabilityStats:
    """Estimate the effective diameter from a sample of BFS runs.

    The effective diameter is the smallest depth within which ``percentile``
    of the sampled (source, reachable target) pairs lie.  Sampling keeps the
    estimate tractable on the larger dataset analogs.
    """
    if not 0.0 < percentile <= 1.0:
        raise GraphError("percentile must be in (0, 1]")
    if graph.num_vertices == 0:
        return ReachabilityStats(0, 0.0, 0.0, 0)
    rng = random.Random(seed)
    population = list(range(graph.num_vertices))
    sources = (population if len(population) <= sample_size
               else rng.sample(population, sample_size))
    all_distances: list[int] = []
    reachable_counts: list[int] = []
    for source in sources:
        distances = bfs_distances(graph, source, max_depth=max_depth)
        distances.pop(source, None)
        reachable_counts.append(len(distances))
        all_distances.extend(distances.values())
    if not all_distances:
        return ReachabilityStats(len(sources), 0.0, 0.0, 0)
    all_distances.sort()
    index = min(len(all_distances) - 1,
                max(0, int(percentile * len(all_distances)) - 1))
    return ReachabilityStats(
        sampled_sources=len(sources),
        mean_reachable=sum(reachable_counts) / len(reachable_counts),
        mean_distance=sum(all_distances) / len(all_distances),
        effective_diameter=all_distances[index],
    )
