"""On-disk CSR graph container: O(1) memmap loads, bounded-RSS builds.

Millions of users means graphs that do not fit in RAM.  This module persists
the eight CSR arrays of a :class:`~repro.graph.digraph.DiGraph` in a single
page-aligned data file so a graph of any size loads in O(1) as read-only
``np.memmap`` views — the OS pages adjacency in and out on demand and peak
RSS stays bounded by the working set, not the graph.

On-disk layout
--------------
One container is one directory, mirroring the checkpoint shard/manifest
format of :mod:`repro.runtime.checkpoint` (SHA-256 digests per region,
atomic tmp-dir + ``os.replace`` publication)::

    <container>/
        manifest.json     # format version, |V|, |E|, per-array region table
        graph.bin         # the 8 CSR arrays, each region page-aligned

``manifest.json`` records, per array, its byte ``offset`` into ``graph.bin``
(aligned to 4096 so each region can be mapped/advised independently), its
element ``length``, dtype, byte size, and SHA-256 digest.  Loading validates
the region table structurally (completeness, bounds, dtypes) in O(1);
``verify=True`` additionally streams the file through SHA-256 in bounded
chunks.

Building without RAM
--------------------
:func:`build_graph_memmap` consumes an *iterable of edge chunks* — it never
holds the edge list — and reproduces ``DiGraph.__init__``'s CSR bit-exactly
in three bounded-memory passes:

1. spool the chunks into the container's ``edge_src``/``edge_dst`` regions
   while accumulating O(V) degree counts (→ the two indptr arrays);
2. counting-sort scatter each chunk into the indices/order regions using
   O(V) write cursors (stable within a row: original edge order);
3. re-sort each row by ``(neighbor, original edge index)`` in vertex windows
   of bounded edge span — exactly the ``np.lexsort((dst, src))`` order the
   in-RAM constructor produces.

Between passes the dirty pages are flushed and dropped from the process
with ``madvise(MADV_DONTNEED)`` (they stay in the page cache), so building
a 10M-edge graph keeps peak RSS flat instead of resident-izing the file.

``python -m repro.graph.storage generate ...`` exposes the streamed
generator-to-disk path as a subprocess with a JSON report (wall clock, peak
RSS, container size) — the out-of-core benchmark and CI smoke run each
measurement in a fresh process because ``ru_maxrss`` is a high-water mark.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import shutil
from collections.abc import Iterable, Iterator, Sequence
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import GraphIOError
from repro.graph.digraph import CSR_ARRAY_NAMES, DiGraph

__all__ = [
    "GRAPH_FORMAT_VERSION",
    "GRAPH_MANIFEST_NAME",
    "GRAPH_DATA_NAME",
    "build_graph_memmap",
    "is_graph_container",
    "load_graph_memmap",
    "madvise_array",
    "read_graph_manifest",
    "save_graph_memmap",
]

#: Bumped whenever the container layout changes incompatibly.
GRAPH_FORMAT_VERSION = 1

GRAPH_MANIFEST_NAME = "manifest.json"
GRAPH_DATA_NAME = "graph.bin"

#: Region alignment: one page, so every array can be advised independently
#: and int64 views are always aligned.
_PAGE = 4096

#: Chunk size (bytes) for streamed hashing — bounded regardless of graph size.
_HASH_CHUNK_BYTES = 4 * 1024 * 1024

#: Default edge-chunk size for the streaming builder's internal passes.
_BUILD_CHUNK_EDGES = 262_144

_INT64 = np.dtype(np.int64)


def _align(offset: int) -> int:
    return (offset + _PAGE - 1) & ~(_PAGE - 1)


def _layout(num_vertices: int, num_edges: int) -> dict[str, tuple[int, int]]:
    """``{name: (offset, length)}`` for the 8 arrays, in canonical order."""
    lengths = {
        "out_indptr": num_vertices + 1,
        "out_indices": num_edges,
        "out_order": num_edges,
        "in_indptr": num_vertices + 1,
        "in_indices": num_edges,
        "in_order": num_edges,
        "edge_src": num_edges,
        "edge_dst": num_edges,
    }
    layout: dict[str, tuple[int, int]] = {}
    offset = 0
    for name in CSR_ARRAY_NAMES:
        layout[name] = (offset, lengths[name])
        offset = _align(offset + lengths[name] * _INT64.itemsize)
    return layout


def _total_bytes(layout: dict[str, tuple[int, int]]) -> int:
    last_offset, last_length = layout[CSR_ARRAY_NAMES[-1]]
    return max(_PAGE, _align(last_offset + last_length * _INT64.itemsize))


def madvise_array(array: np.ndarray, *advices: str) -> bool:
    """Apply ``madvise`` hints to a memmap-backed array; best-effort.

    ``advices`` are lowercase names without the ``MADV_`` prefix
    (``"sequential"``, ``"willneed"``, ``"dontneed"``, ``"random"``).
    Returns ``True`` when at least one hint was applied; arrays that are not
    memmap-backed (or platforms without ``mmap.madvise``) are a no-op, never
    an error — hints must not change behaviour, only paging.
    """
    mm = getattr(array, "_mmap", None)
    if mm is None:
        base = getattr(array, "base", None)
        mm = base if isinstance(base, mmap.mmap) else getattr(base, "_mmap", None)
    if mm is None or not hasattr(mm, "madvise"):
        return False
    applied = False
    for name in advices:
        flag = getattr(mmap, f"MADV_{name.upper()}", None)
        if flag is None:
            continue
        try:
            mm.madvise(flag)
            applied = True
        except (OSError, ValueError):  # pragma: no cover - kernel-dependent
            pass
    return applied


def madvise_region(mm, offset: int, nbytes: int, *advices: str) -> bool:
    """Apply ``madvise`` hints to one byte range of a mapping; best-effort.

    ``madvise`` requires a page-aligned start, so the range is widened down
    to the containing page boundary and clamped to the mapping.  Same
    contract as :func:`madvise_array`: hints never change behaviour, only
    paging, and platforms without range ``madvise`` are a silent no-op.
    """
    if mm is None or not hasattr(mm, "madvise") or nbytes <= 0:
        return False
    start = (int(offset) // _PAGE) * _PAGE
    try:
        length = min(int(offset) + int(nbytes), len(mm)) - start
    except TypeError:  # pragma: no cover - exotic mapping without len()
        return False
    if length <= 0:
        return False
    applied = False
    for name in advices:
        flag = getattr(mmap, f"MADV_{name.upper()}", None)
        if flag is None:
            continue
        try:
            mm.madvise(flag, start, length)
            applied = True
        except (OSError, ValueError):  # pragma: no cover - kernel-dependent
            pass
    return applied


#: Access-pattern hints per CSR region: ``indptr`` is touched by every row
#: lookup (prefault it), ``indices`` is sparse random row reads under the
#: serving workload (don't readahead past the row).
GRAPH_REGION_ADVICE: dict[str, tuple[str, ...]] = {
    "out_indptr": ("willneed",),
    "in_indptr": ("willneed",),
    "out_indices": ("random",),
    "in_indices": ("random",),
}


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
def is_graph_container(path: str | Path) -> bool:
    """``True`` when ``path`` looks like an on-disk graph container."""
    path = Path(path)
    return (path / GRAPH_MANIFEST_NAME).is_file() and (
        path / GRAPH_DATA_NAME
    ).is_file()


def read_graph_manifest(path: str | Path) -> dict[str, Any]:
    """Read and structurally validate a container's manifest (O(1))."""
    path = Path(path)
    manifest_path = path / GRAPH_MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_bytes())
    except OSError as exc:
        raise GraphIOError(
            f"graph container {path} has no readable manifest: {exc}"
        ) from exc
    except ValueError as exc:
        raise GraphIOError(
            f"graph manifest {manifest_path} is truncated or not valid "
            f"JSON: {exc}"
        ) from exc
    version = manifest.get("format_version")
    if version != GRAPH_FORMAT_VERSION:
        raise GraphIOError(
            f"graph container {path} has format version {version!r}; this "
            f"build reads version {GRAPH_FORMAT_VERSION}"
        )
    if manifest.get("kind") != "graph":
        raise GraphIOError(
            f"{manifest_path} does not describe a graph container "
            f"(kind={manifest.get('kind')!r})"
        )
    num_vertices = manifest.get("num_vertices")
    num_edges = manifest.get("num_edges")
    if (not isinstance(num_vertices, int) or num_vertices < 0
            or not isinstance(num_edges, int) or num_edges < 0):
        raise GraphIOError(
            f"graph manifest {manifest_path} has invalid vertex/edge counts "
            f"({num_vertices!r}, {num_edges!r})"
        )
    arrays = manifest.get("arrays")
    if not isinstance(arrays, dict):
        raise GraphIOError(
            f"graph manifest {manifest_path} is missing its array table"
        )
    expected = _layout(num_vertices, num_edges)
    data_path = path / GRAPH_DATA_NAME
    try:
        data_bytes = data_path.stat().st_size
    except OSError as exc:
        raise GraphIOError(
            f"graph container {path} has no readable data file: {exc}"
        ) from exc
    for name in CSR_ARRAY_NAMES:
        entry = arrays.get(name)
        if not isinstance(entry, dict):
            raise GraphIOError(
                f"graph manifest {manifest_path} is missing array {name!r}"
            )
        offset, length = expected[name]
        if (int(entry.get("offset", -1)) != offset
                or int(entry.get("length", -1)) != length
                or entry.get("dtype") != _INT64.str):
            raise GraphIOError(
                f"graph manifest {manifest_path}: array {name!r} region "
                f"{entry!r} does not match the expected layout "
                f"(offset={offset}, length={length}, dtype={_INT64.str})"
            )
        if offset + length * _INT64.itemsize > data_bytes:
            raise GraphIOError(
                f"graph container {path}: array {name!r} extends past the "
                f"end of {GRAPH_DATA_NAME} ({data_bytes} bytes); the "
                f"container is truncated"
            )
    return manifest


def _region_digest(handle, offset: int, nbytes: int) -> str:
    digest = hashlib.sha256()
    handle.seek(offset)
    remaining = nbytes
    while remaining > 0:
        chunk = handle.read(min(_HASH_CHUNK_BYTES, remaining))
        if not chunk:
            raise GraphIOError(
                f"graph data file truncated while hashing (needed "
                f"{remaining} more bytes at offset {offset})"
            )
        digest.update(chunk)
        remaining -= len(chunk)
    return digest.hexdigest()


def _write_manifest(container: Path, *, num_vertices: int, num_edges: int,
                    arrays: dict[str, dict[str, Any]]) -> None:
    manifest = {
        "format_version": GRAPH_FORMAT_VERSION,
        "kind": "graph",
        "num_vertices": int(num_vertices),
        "num_edges": int(num_edges),
        "data_file": GRAPH_DATA_NAME,
        "arrays": arrays,
    }
    blob = json.dumps(manifest, indent=2, sort_keys=True).encode()
    with open(container / GRAPH_MANIFEST_NAME, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())


def _manifest_arrays(container: Path,
                     layout: dict[str, tuple[int, int]]) -> dict[str, dict[str, Any]]:
    """Region table with streamed SHA-256 digests for every array."""
    arrays: dict[str, dict[str, Any]] = {}
    with open(container / GRAPH_DATA_NAME, "rb") as handle:
        for name in CSR_ARRAY_NAMES:
            offset, length = layout[name]
            nbytes = length * _INT64.itemsize
            arrays[name] = {
                "offset": offset,
                "length": length,
                "dtype": _INT64.str,
                "bytes": nbytes,
                "sha256": _region_digest(handle, offset, nbytes),
            }
    return arrays


def _publish(tmp_dir: Path, container: Path) -> None:
    """Atomically rename the finished tmp directory into place."""
    if container.exists():
        if not container.is_dir():
            raise GraphIOError(
                f"graph container target {container} exists and is not a "
                f"directory"
            )
        shutil.rmtree(container)
    os.replace(tmp_dir, container)


# ----------------------------------------------------------------------
# Saving an in-RAM graph
# ----------------------------------------------------------------------
def save_graph_memmap(graph: DiGraph, path: str | Path) -> Path:
    """Persist ``graph``'s CSR arrays to a container directory at ``path``.

    The write is atomic (tmp directory + ``os.replace``): a crash mid-write
    leaves only a ``.tmp-*`` directory behind, never a half-valid container.
    """
    container = Path(path)
    container.parent.mkdir(parents=True, exist_ok=True)
    tmp_dir = container.parent / f".tmp-{container.name}-{os.getpid()}"
    layout = _layout(graph.num_vertices, graph.num_edges)
    try:
        if tmp_dir.exists():
            shutil.rmtree(tmp_dir)
        tmp_dir.mkdir(parents=True)
        csr = graph.csr_arrays()
        with open(tmp_dir / GRAPH_DATA_NAME, "wb") as handle:
            for name in CSR_ARRAY_NAMES:
                offset, length = layout[name]
                array = np.ascontiguousarray(csr[name], dtype=np.int64)
                if array.size != length:
                    raise GraphIOError(
                        f"graph array {name!r} has {array.size} elements, "
                        f"expected {length}"
                    )
                handle.seek(offset)
                handle.write(memoryview(array).cast("B"))
            handle.truncate(_total_bytes(layout))
            handle.flush()
            os.fsync(handle.fileno())
        arrays = _manifest_arrays(tmp_dir, layout)
        _write_manifest(tmp_dir, num_vertices=graph.num_vertices,
                        num_edges=graph.num_edges, arrays=arrays)
        _publish(tmp_dir, container)
    except OSError as exc:
        raise GraphIOError(
            f"cannot write graph container {container}: {exc}"
        ) from exc
    finally:
        if tmp_dir.exists():
            shutil.rmtree(tmp_dir, ignore_errors=True)
    return container


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def load_graph_memmap(
    path: str | Path,
    *,
    verify: bool = False,
    advise: str | Sequence[str] | None = "sequential",
) -> DiGraph:
    """O(1) load of a graph container as read-only memmap-backed views.

    The manifest's region table is validated structurally up front; with
    ``verify=True`` every region's SHA-256 digest is additionally checked
    (streamed, bounded memory — this reads the whole file once, so it is
    opt-in rather than the default).  ``advise`` applies ``madvise`` hints
    to the mapping (default ``"sequential"`` — the scoring kernel scans
    adjacency rows in vertex order).
    """
    container = Path(path)
    manifest = read_graph_manifest(container)
    num_vertices = int(manifest["num_vertices"])
    num_edges = int(manifest["num_edges"])
    layout = _layout(num_vertices, num_edges)
    if verify:
        with open(container / GRAPH_DATA_NAME, "rb") as handle:
            for name in CSR_ARRAY_NAMES:
                offset, length = layout[name]
                digest = _region_digest(handle, offset, length * _INT64.itemsize)
                expected = manifest["arrays"][name].get("sha256")
                if digest != expected:
                    raise GraphIOError(
                        f"graph container {container}: array {name!r} failed "
                        f"its checksum (sha256 {digest} != manifest "
                        f"{expected}); refusing to load corrupt adjacency"
                    )
    buffer = np.memmap(container / GRAPH_DATA_NAME, dtype=np.uint8, mode="r")
    if advise:
        names = (advise,) if isinstance(advise, str) else tuple(advise)
        madvise_array(buffer, *names)
        # Per-region refinements on top of the blanket hint: prefault the
        # indptr tables every lookup walks, keep readahead off the
        # randomly-probed index rows.
        mm = getattr(buffer, "_mmap", None)
        for name, region_advices in GRAPH_REGION_ADVICE.items():
            offset, length = layout[name]
            madvise_region(mm, offset, length * _INT64.itemsize,
                           *region_advices)
    views: dict[str, np.ndarray] = {}
    for name in CSR_ARRAY_NAMES:
        offset, length = layout[name]
        nbytes = length * _INT64.itemsize
        views[name] = buffer[offset:offset + nbytes].view(np.int64)
    graph = DiGraph.from_csr_arrays(num_vertices, read_only=True, **views)
    graph._memmap_path = str(container)
    return graph


# ----------------------------------------------------------------------
# Streaming builder (generator-to-disk, bounded RSS)
# ----------------------------------------------------------------------
def _flush_dontneed(mm: np.memmap) -> None:
    """Flush dirty pages and drop them from this process's RSS.

    The mapping is ``MAP_SHARED`` and file-backed, so ``MADV_DONTNEED``
    only drops the page-table entries — the flushed pages survive in the
    page cache and re-fault on the next access.  This is what keeps the
    builder's resident set flat while it dirties a file much larger than
    the RSS budget.
    """
    mm.flush()
    madvise_array(mm, "dontneed")


def _chunked_spans(indptr: np.ndarray, max_edges: int) -> Iterator[tuple[int, int]]:
    """Yield vertex windows ``[v0, v1)`` whose edge spans stay bounded.

    A single row larger than ``max_edges`` gets a window of its own (its
    sort is still exact, just less bounded — degree is capped by |E|).
    """
    num_vertices = indptr.size - 1
    v0 = 0
    while v0 < num_vertices:
        limit = indptr[v0] + max_edges
        v1 = int(np.searchsorted(indptr, limit, side="right")) - 1
        v1 = max(v1, v0 + 1)
        v1 = min(v1, num_vertices)
        yield v0, v1
        v0 = v1


def _bucket_side(key_spool: Path, value_spool: Path, starts: np.ndarray,
                 tmp_dir: Path, tag: str, chunk_edges: int,
                 num_edges: int) -> list[Path]:
    """Split one CSR side's edges into per-window bucket files.

    A direct scatter into the final regions would fault nearly every page
    of the (graph-sized) indices/order arrays per chunk — random writes
    defeat the per-chunk flush, and peak RSS grows with the container.
    Bucketing first keeps every write sequential: each record is an
    ``(owner, neighbor, edge index)`` int64 triple appended to its
    window's file, so this pass's resident set is one spool chunk plus
    selection scratch regardless of graph size.
    """
    paths = [tmp_dir / f"bucket-{tag}-{i:06d}.spool"
             for i in range(starts.size)]
    chunk_bytes = chunk_edges * _INT64.itemsize
    with open(key_spool, "rb") as key_handle, \
            open(value_spool, "rb") as value_handle:
        base = 0
        while base < num_edges:
            keys = np.frombuffer(key_handle.read(chunk_bytes),
                                 dtype=np.int64)
            values = np.frombuffer(value_handle.read(chunk_bytes),
                                   dtype=np.int64)
            if keys.size != values.size or not keys.size:
                raise GraphIOError(
                    "edge spool truncated during the bucket pass"
                )
            idx = np.arange(base, base + keys.size, dtype=np.int64)
            buckets = np.searchsorted(starts, keys, side="right") - 1
            for b in np.unique(buckets):
                sel = buckets == b
                records = np.column_stack((keys[sel], values[sel], idx[sel]))
                with open(paths[b], "ab") as handle:
                    handle.write(memoryview(records).cast("B"))
            base += keys.size
    return paths


def _scatter_side(indptr: np.ndarray, windows: list[tuple[int, int]],
                  bucket_paths: list[Path], indices_mm: np.ndarray,
                  order_mm: np.ndarray, data: np.memmap) -> None:
    """Write one side's indices/order regions window by window, sorted.

    A window's bucket holds *every* edge of its rows, so one stable
    lexsort by ``(owner row, neighbor, original edge index)`` lands each
    row in its final order — bit-identical to the in-RAM constructor's
    ``np.lexsort((dst, src))`` — with no separate re-sort pass.  The
    window's span is written sequentially, then flushed and dropped, so
    the resident set is one window at a time.
    """
    for (v0, v1), bucket in zip(windows, bucket_paths):
        lo, hi = int(indptr[v0]), int(indptr[v1])
        if bucket.exists():
            records = np.fromfile(bucket, dtype=np.int64).reshape(-1, 3)
            bucket.unlink()
        else:
            records = np.empty((0, 3), dtype=np.int64)
        if records.shape[0] != hi - lo:
            raise GraphIOError(
                "edge bucket lost records during the scatter pass"
            )
        if not records.shape[0]:
            continue
        keys, values, idx = records.T
        perm = np.lexsort((idx, values, keys))
        indices_mm[lo:hi] = values[perm]
        order_mm[lo:hi] = idx[perm]
        _flush_dontneed(data)


def build_graph_memmap(
    num_vertices: int,
    edge_chunks: Iterable[tuple[np.ndarray, np.ndarray]],
    path: str | Path,
    *,
    chunk_edges: int = _BUILD_CHUNK_EDGES,
) -> dict[str, Any]:
    """Stream ``(sources, targets)`` chunks into an on-disk container.

    Never materializes the edge list: peak memory is O(V) for the degree
    counts plus O(chunk + max degree) scratch — a row must be sorted whole,
    so the highest-degree vertex sets the scratch floor.  The resulting
    container is bit-identical to
    ``save_graph_memmap(DiGraph(V, src, dst), path)``.  Returns a small
    stats dict (``num_edges``, ``container_bytes``, ...).
    """
    if num_vertices < 0:
        raise GraphIOError("num_vertices must be non-negative")
    if chunk_edges < 1:
        raise GraphIOError("chunk_edges must be positive")
    container = Path(path)
    container.parent.mkdir(parents=True, exist_ok=True)
    tmp_dir = container.parent / f".tmp-{container.name}-{os.getpid()}"
    try:
        if tmp_dir.exists():
            shutil.rmtree(tmp_dir)
        tmp_dir.mkdir(parents=True)
        spool_src = tmp_dir / "edges.src.spool"
        spool_dst = tmp_dir / "edges.dst.spool"

        # Pass 1 — spool the chunks and count degrees (O(V) + O(chunk)).
        out_counts = np.zeros(num_vertices, dtype=np.int64)
        in_counts = np.zeros(num_vertices, dtype=np.int64)
        num_edges = 0
        with open(spool_src, "wb") as src_handle, \
                open(spool_dst, "wb") as dst_handle:
            for sources, targets in edge_chunks:
                src = np.ascontiguousarray(sources, dtype=np.int64)
                dst = np.ascontiguousarray(targets, dtype=np.int64)
                if src.ndim != 1 or src.shape != dst.shape:
                    raise GraphIOError(
                        "edge chunks must be parallel one-dimensional "
                        f"arrays (got shapes {src.shape} and {dst.shape})"
                    )
                if src.size:
                    lo = min(int(src.min()), int(dst.min()))
                    hi = max(int(src.max()), int(dst.max()))
                    if lo < 0 or hi >= num_vertices:
                        raise GraphIOError(
                            f"edge endpoints must lie in [0, {num_vertices}); "
                            f"found range [{lo}, {hi}]"
                        )
                    out_counts += np.bincount(src, minlength=num_vertices)
                    in_counts += np.bincount(dst, minlength=num_vertices)
                    src_handle.write(memoryview(src).cast("B"))
                    dst_handle.write(memoryview(dst).cast("B"))
                    num_edges += src.size

        layout = _layout(num_vertices, num_edges)
        data_path = tmp_dir / GRAPH_DATA_NAME
        with open(data_path, "wb") as handle:
            handle.truncate(_total_bytes(layout))
        data = np.memmap(data_path, dtype=np.uint8, mode="r+")

        def region(name: str) -> np.ndarray:
            offset, length = layout[name]
            return data[offset:offset + length * _INT64.itemsize].view(np.int64)

        out_indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(out_counts, out=out_indptr[1:])
        in_indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(in_counts, out=in_indptr[1:])
        region("out_indptr")[:] = out_indptr
        region("in_indptr")[:] = in_indptr
        del out_counts, in_counts

        # Pass 2 — fill edge_src/edge_dst sequentially and split both CSR
        # sides into bounded-span bucket files (every write sequential).
        edge_src_mm = region("edge_src")
        edge_dst_mm = region("edge_dst")
        chunk_bytes = chunk_edges * _INT64.itemsize
        with open(spool_src, "rb") as src_handle, \
                open(spool_dst, "rb") as dst_handle:
            base = 0
            while base < num_edges:
                src = np.frombuffer(src_handle.read(chunk_bytes), dtype=np.int64)
                dst = np.frombuffer(dst_handle.read(chunk_bytes), dtype=np.int64)
                if src.size != dst.size or not src.size:
                    raise GraphIOError(
                        "edge spool truncated during the fill pass"
                    )
                edge_src_mm[base:base + src.size] = src
                edge_dst_mm[base:base + dst.size] = dst
                base += src.size
                _flush_dontneed(data)
        out_windows = list(_chunked_spans(out_indptr, chunk_edges))
        in_windows = list(_chunked_spans(in_indptr, chunk_edges))
        out_starts = np.array([v0 for v0, _ in out_windows], dtype=np.int64)
        in_starts = np.array([v0 for v0, _ in in_windows], dtype=np.int64)
        out_buckets = _bucket_side(spool_src, spool_dst, out_starts,
                                   tmp_dir, "out", chunk_edges, num_edges)
        in_buckets = _bucket_side(spool_dst, spool_src, in_starts,
                                  tmp_dir, "in", chunk_edges, num_edges)
        spool_src.unlink()
        spool_dst.unlink()

        # Pass 3 — scatter + sort each window's span (one window resident).
        _scatter_side(out_indptr, out_windows, out_buckets,
                      region("out_indices"), region("out_order"), data)
        _scatter_side(in_indptr, in_windows, in_buckets,
                      region("in_indices"), region("in_order"), data)
        del data  # release the writable mapping before hashing/publishing

        arrays = _manifest_arrays(tmp_dir, layout)
        _write_manifest(tmp_dir, num_vertices=num_vertices,
                        num_edges=num_edges, arrays=arrays)
        _publish(tmp_dir, container)
    except OSError as exc:
        raise GraphIOError(
            f"cannot build graph container {container}: {exc}"
        ) from exc
    finally:
        if tmp_dir.exists():
            shutil.rmtree(tmp_dir, ignore_errors=True)
    return {
        "path": str(container),
        "num_vertices": int(num_vertices),
        "num_edges": int(num_edges),
        "container_bytes": sum(
            (container / name).stat().st_size
            for name in (GRAPH_DATA_NAME, GRAPH_MANIFEST_NAME)
        ),
    }


# ----------------------------------------------------------------------
# Subprocess entry point (bench/CI measurement rows)
# ----------------------------------------------------------------------
def _peak_rss_bytes() -> int:
    import resource

    scale = 1024  # Linux reports KiB
    self_rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    child_rss = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return max(self_rss, child_rss) * scale


def _main(argv: Sequence[str] | None = None) -> int:  # pragma: no cover - CLI
    import argparse
    import time

    parser = argparse.ArgumentParser(
        prog="python -m repro.graph.storage",
        description="Build/inspect on-disk CSR graph containers.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    generate = sub.add_parser(
        "generate",
        help="stream a synthetic power-law graph to a container, never "
             "holding the edge list, and report peak RSS as JSON",
    )
    generate.add_argument("path", help="container directory to create")
    generate.add_argument("--vertices", type=int, required=True)
    generate.add_argument("--edges", type=int, required=True)
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("--exponent", type=float, default=2.0)
    generate.add_argument("--chunk-edges", type=int, default=_BUILD_CHUNK_EDGES)
    info = sub.add_parser("info", help="print a container's manifest summary")
    info.add_argument("path")
    args = parser.parse_args(argv)

    if args.command == "info":
        manifest = read_graph_manifest(args.path)
        print(json.dumps({
            "num_vertices": manifest["num_vertices"],
            "num_edges": manifest["num_edges"],
            "container_bytes": (Path(args.path) / GRAPH_DATA_NAME).stat().st_size,
        }, indent=2))
        return 0

    from repro.graph.generators import streamed_powerlaw_edge_chunks

    start = time.perf_counter()
    stats = build_graph_memmap(
        args.vertices,
        streamed_powerlaw_edge_chunks(
            args.vertices, args.edges, seed=args.seed,
            exponent=args.exponent, chunk_edges=args.chunk_edges,
        ),
        args.path,
        chunk_edges=args.chunk_edges,
    )
    build_seconds = time.perf_counter() - start
    start = time.perf_counter()
    graph = load_graph_memmap(args.path)
    load_seconds = time.perf_counter() - start
    print(json.dumps({
        **stats,
        "loaded_num_edges": graph.num_edges,
        "build_seconds": build_seconds,
        "load_seconds": load_seconds,
        "peak_rss_bytes": _peak_rss_bytes(),
    }, indent=2))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI
    import sys

    sys.exit(_main())
