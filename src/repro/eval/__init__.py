"""Evaluation harness: protocol, metrics, runner, reports, experiments."""

from repro.eval.metrics import (
    QualityReport,
    evaluate_predictions,
    mean_average_precision,
    precision,
    recall,
)
from repro.eval.protocol import EdgeRemovalSplit, holdout_split, remove_random_edges
from repro.eval.report import FigureReport, Series, TextTable, format_number
from repro.eval.runner import ExperimentRun, ExperimentRunner

__all__ = [
    "EdgeRemovalSplit",
    "remove_random_edges",
    "holdout_split",
    "QualityReport",
    "recall",
    "precision",
    "mean_average_precision",
    "evaluate_predictions",
    "ExperimentRun",
    "ExperimentRunner",
    "TextTable",
    "Series",
    "FigureReport",
    "format_number",
]
