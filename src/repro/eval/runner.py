"""Experiment runner: one place that executes predictor + protocol + metrics.

Every table/figure experiment in :mod:`repro.eval.experiments` is ultimately a
set of :class:`ExperimentRun` records produced by this runner: load (or reuse)
a dataset analog, split it with the edge-removal protocol, run a predictor
(SNAPLE local, SNAPLE on the simulated GAS cluster, the naive BASELINE, or
the random-walk PPR baseline), and measure recall plus timing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.baselines.gas_baseline import GasBaselinePredictor
from repro.baselines.random_walk_ppr import RandomWalkConfig
from repro.errors import ResourceExhaustedError
from repro.eval.metrics import QualityReport, evaluate_predictions
from repro.eval.protocol import EdgeRemovalSplit, remove_random_edges
from repro.gas.cluster import ClusterConfig
from repro.graph.datasets import load_dataset
from repro.graph.digraph import DiGraph
from repro.runtime.report import RunReport
from repro.snaple.config import SnapleConfig
from repro.snaple.predictor import SnapleLinkPredictor

__all__ = ["ExperimentRun", "ExperimentRunner"]


@dataclass
class ExperimentRun:
    """One (dataset, predictor configuration) measurement."""

    dataset: str
    predictor: str
    quality: QualityReport | None
    wall_clock_seconds: float
    simulated_seconds: float | None = None
    failed: bool = False
    failure_reason: str = ""
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def recall(self) -> float:
        """Recall of the run (0.0 when the run failed)."""
        if self.quality is None:
            return 0.0
        return self.quality.recall

    @property
    def time_seconds(self) -> float:
        """Simulated cluster time when available, wall clock otherwise."""
        if self.simulated_seconds is not None:
            return self.simulated_seconds
        return self.wall_clock_seconds


class ExperimentRunner:
    """Shared machinery for all table/figure experiments.

    Parameters
    ----------
    scale:
        Dataset scale multiplier passed to :func:`repro.graph.datasets.load_dataset`.
    seed:
        Seed shared by the dataset generator and the removal protocol.
    removed_edges_per_vertex, min_degree:
        Protocol parameters (paper defaults: 1 edge removed from vertices with
        out-degree greater than 3).
    mode:
        Execution mode applied to every ``local``-backend run
        (``"vectorized"`` / ``"reference"``, see
        :class:`repro.runtime.engines.LocalBackend`).  ``None`` keeps the
        backend's default (vectorized).
    datasets:
        Optional mapping of dataset name to a pre-built graph.  Names in
        this mapping shadow the named analogs of
        :func:`repro.graph.datasets.load_dataset`, letting callers (the
        suite runner in particular) drive the full evaluation protocol on
        arbitrary graphs — generator outputs, replayed snapshots — without
        new experiment code.
    """

    def __init__(self, *, scale: float = 1.0, seed: int = 42,
                 removed_edges_per_vertex: int = 1, min_degree: int = 3,
                 mode: str | None = None,
                 datasets: dict[str, DiGraph] | None = None) -> None:
        self._scale = scale
        self._seed = seed
        self._removed_edges_per_vertex = removed_edges_per_vertex
        self._min_degree = min_degree
        self._mode = mode
        self._datasets: dict[str, DiGraph] = dict(datasets or {})
        self._splits: dict[tuple[str, int], EdgeRemovalSplit] = {}
        self._last_report: RunReport | None = None

    @property
    def scale(self) -> float:
        return self._scale

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def last_report(self) -> RunReport | None:
        """The :class:`RunReport` of the most recent successful backend run.

        ``None`` before the first run and after a failed run.  Exposed
        separately from :class:`ExperimentRun` so the run records stay
        plain serializable dataclasses.
        """
        return self._last_report

    # ------------------------------------------------------------------
    # Dataset / split management
    # ------------------------------------------------------------------
    def add_dataset(self, name: str, graph: DiGraph) -> None:
        """Register a pre-built graph under ``name`` for this runner.

        Later :meth:`dataset` / :meth:`split` / :meth:`run_backend` calls
        naming it use the given graph instead of a named analog.
        """
        self._datasets[name] = graph

    def dataset(self, name: str) -> DiGraph:
        """The graph for dataset ``name`` at this runner's scale.

        Pre-registered graphs (see :meth:`add_dataset`) take precedence;
        otherwise the synthetic analog is generated.
        """
        if name in self._datasets:
            return self._datasets[name]
        return load_dataset(name, scale=self._scale, seed=self._seed)

    def split(self, dataset_name: str,
              *, removed_edges_per_vertex: int | None = None) -> EdgeRemovalSplit:
        """The edge-removal split for ``dataset_name`` (cached per removal count)."""
        removed = (self._removed_edges_per_vertex
                   if removed_edges_per_vertex is None
                   else removed_edges_per_vertex)
        key = (dataset_name, removed)
        if key not in self._splits:
            graph = self.dataset(dataset_name)
            self._splits[key] = remove_random_edges(
                graph,
                edges_per_vertex=removed,
                min_degree=self._min_degree,
                seed=self._seed,
            )
        return self._splits[key]

    # ------------------------------------------------------------------
    # Predictor runs
    # ------------------------------------------------------------------
    def run_backend(self, dataset_name: str, *, backend: str,
                    config: SnapleConfig | None = None,
                    label: str | None = None,
                    removed_edges_per_vertex: int | None = None,
                    workers: int | None = None,
                    checkpoint_dir=None, checkpoint_every: int | None = None,
                    resume_from=None,
                    **options) -> ExperimentRun:
        """Run any registered execution backend against a dataset split.

        This is the generic path every specialised ``run_*`` method builds
        on: resolve the backend from the :mod:`repro.runtime` registry, run
        it on the training graph, and normalize the
        :class:`~repro.runtime.report.RunReport` accounting into an
        :class:`ExperimentRun`.  ``workers`` executes partitions in
        shared-nothing worker processes on backends that support it (the
        per-partition accounting lands in ``extra``); ``checkpoint_dir`` /
        ``checkpoint_every`` / ``resume_from`` add checkpointed fault
        tolerance to such runs (checkpoint bytes/seconds and any worker
        restarts land in ``extra`` too).
        """
        split = self.split(dataset_name,
                           removed_edges_per_vertex=removed_edges_per_vertex)
        config = config if config is not None else SnapleConfig()
        predictor_label = label if label is not None else f"{config.describe()} [{backend}]"
        if workers is not None:
            options["workers"] = workers
            if label is None:
                predictor_label += f" x{workers} workers"
        if checkpoint_dir is not None:
            options["checkpoint_dir"] = checkpoint_dir
        if checkpoint_every is not None:
            options["checkpoint_every"] = checkpoint_every
        if resume_from is not None:
            options["resume_from"] = resume_from
        if self._mode is not None and backend == "local":
            options.setdefault("mode", self._mode)
        predictor = SnapleLinkPredictor(config)
        self._last_report = None
        try:
            report = predictor.predict(split.train_graph, backend=backend,
                                       **options)
        except ResourceExhaustedError as exc:
            return ExperimentRun(
                dataset=dataset_name,
                predictor=predictor_label,
                quality=None,
                wall_clock_seconds=0.0,
                failed=True,
                failure_reason=str(exc),
            )
        self._last_report = report
        quality = evaluate_predictions(report.predictions, split)
        run = ExperimentRun(
            dataset=dataset_name,
            predictor=predictor_label,
            quality=quality,
            wall_clock_seconds=report.wall_clock_seconds,
            simulated_seconds=report.simulated_seconds,
        )
        self._merge_report_extra(run, report)
        return run

    @staticmethod
    def _merge_report_extra(run: ExperimentRun, report: RunReport) -> None:
        """Copy the report's normalized counters into ``run.extra``."""
        if report.network_bytes is not None:
            run.extra["network_bytes"] = float(report.network_bytes)
        if report.peak_memory_bytes is not None:
            run.extra["peak_memory_bytes"] = float(report.peak_memory_bytes)
        if report.workers is not None:
            run.extra["workers"] = float(report.workers)
        if report.sync_overhead_seconds is not None:
            run.extra["sync_overhead_seconds"] = float(report.sync_overhead_seconds)
        if report.per_partition_seconds:
            run.extra["max_partition_seconds"] = float(
                max(report.per_partition_seconds)
            )
        for key, value in report.extra.items():
            run.extra[key] = float(value)

    def run_snaple_local(self, dataset_name: str, config: SnapleConfig,
                         *, removed_edges_per_vertex: int | None = None) -> ExperimentRun:
        """SNAPLE in local (single-process) mode; recall-focused experiments."""
        return self.run_backend(
            dataset_name,
            backend="local",
            config=config,
            label=config.describe(),
            removed_edges_per_vertex=removed_edges_per_vertex,
        )

    def run_snaple_gas(self, dataset_name: str, config: SnapleConfig,
                       cluster: ClusterConfig,
                       *, enforce_memory: bool = True) -> ExperimentRun:
        """SNAPLE on the simulated distributed GAS engine."""
        return self.run_backend(
            dataset_name,
            backend="gas",
            config=config,
            label=f"SNAPLE {config.describe()} on {cluster.name}",
            cluster=cluster,
            enforce_memory=enforce_memory,
        )

    def run_baseline_gas(self, dataset_name: str, cluster: ClusterConfig,
                         *, k: int = 5,
                         enforce_memory: bool = True) -> ExperimentRun:
        """The naive 2-hop Jaccard BASELINE on the simulated GAS engine."""
        split = self.split(dataset_name)
        predictor = GasBaselinePredictor(k=k)
        try:
            result = predictor.predict_gas(
                split.train_graph, cluster=cluster, enforce_memory=enforce_memory
            )
        except ResourceExhaustedError as exc:
            return ExperimentRun(
                dataset=dataset_name,
                predictor=f"BASELINE on {cluster.name}",
                quality=None,
                wall_clock_seconds=0.0,
                failed=True,
                failure_reason=str(exc),
            )
        quality = evaluate_predictions(result.predictions, split)
        run = ExperimentRun(
            dataset=dataset_name,
            predictor=f"BASELINE on {cluster.name}",
            quality=quality,
            wall_clock_seconds=result.wall_clock_seconds,
            simulated_seconds=result.simulated_seconds,
        )
        metrics = result.gas_result.metrics
        run.extra["network_bytes"] = float(metrics.total_network_bytes)
        run.extra["peak_memory_bytes"] = float(metrics.peak_machine_memory_bytes)
        return run

    def run_random_walk(self, dataset_name: str,
                        config: RandomWalkConfig) -> ExperimentRun:
        """The Cassovary-style random-walk PPR baseline.

        Runs the ``cassovary`` backend, whose simulated time charges one work
        unit per walk step on a single type-II machine, using the same
        (scaled) per-core throughput as the GAS cost model.  This keeps the
        Figure 11 / Table 6 time axis in the same simulated currency as the
        SNAPLE runs instead of mixing Python wall-clock with simulated
        cluster seconds.
        """
        return self.run_backend(
            dataset_name,
            backend="cassovary",
            label=config.describe(),
            num_walks=config.num_walks,
            depth=config.depth,
            k=config.k,
            seed=config.seed,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def speedup(reference: ExperimentRun, candidate: ExperimentRun) -> float:
        """``reference.time / candidate.time`` (∞ when the candidate is instant)."""
        if candidate.time_seconds <= 0:
            return math.inf
        return reference.time_seconds / candidate.time_seconds

    @staticmethod
    def recall_gain(reference: ExperimentRun, candidate: ExperimentRun) -> float:
        """``candidate.recall / reference.recall`` (∞ for a zero-recall reference)."""
        if reference.recall <= 0:
            return math.inf
        return candidate.recall / reference.recall
