"""Evaluation protocol: edge removal and train/test split (Section 5.2).

Following the paper (which follows Sarkar & Moore), the protocol randomly
removes ``r`` outgoing edges from every vertex whose out-degree exceeds a
minimum (3 in the paper for ``r = 1``); the removed edges are the ground
truth the predictor must recover.  If a vertex has fewer edges than the
number to remove, all but one are removed (Section 5.8).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import EvaluationError
from repro.graph.digraph import DiGraph

__all__ = ["EdgeRemovalSplit", "remove_random_edges", "holdout_split"]


@dataclass(frozen=True)
class EdgeRemovalSplit:
    """A train graph plus the held-out (removed) edges used as ground truth."""

    train_graph: DiGraph
    removed_edges: frozenset[tuple[int, int]]
    removed_per_vertex: int
    min_degree: int
    seed: int

    @property
    def num_removed(self) -> int:
        """Total number of held-out edges."""
        return len(self.removed_edges)

    def removed_targets(self, vertex: int) -> set[int]:
        """Held-out targets of ``vertex``."""
        return {t for (s, t) in self.removed_edges if s == vertex}

    def affected_vertices(self) -> set[int]:
        """Vertices that lost at least one edge."""
        return {s for (s, _t) in self.removed_edges}


def remove_random_edges(
    graph: DiGraph,
    *,
    edges_per_vertex: int = 1,
    min_degree: int = 3,
    seed: int = 0,
) -> EdgeRemovalSplit:
    """Remove ``edges_per_vertex`` random outgoing edges from eligible vertices.

    A vertex is eligible when its out-degree is strictly greater than
    ``min_degree`` (the paper removes one edge from each vertex with
    ``|Γ(u)| > 3``).  When more removals are requested than a vertex can
    afford, all its edges but one are removed, matching Section 5.8.
    """
    if edges_per_vertex < 1:
        raise EvaluationError("edges_per_vertex must be >= 1")
    if min_degree < 0:
        raise EvaluationError("min_degree must be non-negative")
    rng = random.Random(seed)
    removed: set[tuple[int, int]] = set()
    for u in graph.vertices():
        neighbors = graph.out_neighbors(u).tolist()
        if len(neighbors) <= min_degree:
            continue
        removable = min(edges_per_vertex, len(neighbors) - 1)
        if removable <= 0:
            continue
        targets = rng.sample(neighbors, removable)
        removed.update((u, t) for t in targets)
    train = graph.remove_edges(removed)
    return EdgeRemovalSplit(
        train_graph=train,
        removed_edges=frozenset(removed),
        removed_per_vertex=edges_per_vertex,
        min_degree=min_degree,
        seed=seed,
    )


def holdout_split(
    graph: DiGraph,
    *,
    fraction: float = 0.1,
    seed: int = 0,
) -> EdgeRemovalSplit:
    """Remove a uniform fraction of all edges (alternative protocol).

    Not used by the paper's headline experiments but handy for comparing
    against the classic link-prediction setting where a global fraction of
    edges is hidden.
    """
    if not 0.0 < fraction < 1.0:
        raise EvaluationError("fraction must be in (0, 1)")
    rng = random.Random(seed)
    edges = list(graph.edges())
    num_removed = max(1, int(len(edges) * fraction))
    removed = set(rng.sample(edges, num_removed)) if edges else set()
    train = graph.remove_edges(removed)
    return EdgeRemovalSplit(
        train_graph=train,
        removed_edges=frozenset(removed),
        removed_per_vertex=0,
        min_degree=0,
        seed=seed,
    )
