"""Prediction-quality metrics.

The paper's primary metric is **recall**: the proportion of removed edges the
predictor returns among its top-``k`` answers.  Because exactly one edge is
removed per eligible vertex and ``k`` is fixed, precision is proportional to
recall (Section 5.2); both are still provided, along with mean average
precision and per-vertex hit statistics used by the test suite.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.eval.protocol import EdgeRemovalSplit

__all__ = [
    "QualityReport",
    "recall",
    "precision",
    "mean_average_precision",
    "evaluate_predictions",
]


@dataclass(frozen=True)
class QualityReport:
    """Summary of prediction quality against a held-out edge set."""

    recall: float
    precision: float
    mean_average_precision: float
    hits: int
    num_removed: int
    num_predictions: int

    def describe(self) -> str:
        """One-line textual summary."""
        return (
            f"recall={self.recall:.3f} precision={self.precision:.3f} "
            f"MAP={self.mean_average_precision:.3f} "
            f"hits={self.hits}/{self.num_removed}"
        )


def _hit_edges(predictions: Mapping[int, list[int]],
               removed: frozenset[tuple[int, int]]) -> int:
    hits = 0
    for u, targets in predictions.items():
        for z in targets:
            if (u, z) in removed:
                hits += 1
    return hits


def recall(predictions: Mapping[int, list[int]],
           split: EdgeRemovalSplit) -> float:
    """Fraction of removed edges present in the predictions."""
    if split.num_removed == 0:
        return 0.0
    return _hit_edges(predictions, split.removed_edges) / split.num_removed


def precision(predictions: Mapping[int, list[int]],
              split: EdgeRemovalSplit) -> float:
    """Fraction of predicted edges that were actually removed edges."""
    total_predictions = sum(len(targets) for targets in predictions.values())
    if total_predictions == 0:
        return 0.0
    return _hit_edges(predictions, split.removed_edges) / total_predictions


def mean_average_precision(predictions: Mapping[int, list[int]],
                           split: EdgeRemovalSplit) -> float:
    """Mean (over affected vertices) of the average precision of the ranking."""
    affected = split.affected_vertices()
    if not affected:
        return 0.0
    total = 0.0
    for u in affected:
        relevant = split.removed_targets(u)
        ranked = predictions.get(u, [])
        if not relevant:
            continue
        hits = 0
        average = 0.0
        for rank, z in enumerate(ranked, start=1):
            if z in relevant:
                hits += 1
                average += hits / rank
        total += average / len(relevant)
    return total / len(affected)


def evaluate_predictions(predictions: Mapping[int, list[int]],
                         split: EdgeRemovalSplit) -> QualityReport:
    """Compute all quality metrics at once."""
    hits = _hit_edges(predictions, split.removed_edges)
    total_predictions = sum(len(targets) for targets in predictions.values())
    return QualityReport(
        recall=hits / split.num_removed if split.num_removed else 0.0,
        precision=hits / total_predictions if total_predictions else 0.0,
        mean_average_precision=mean_average_precision(predictions, split),
        hits=hits,
        num_removed=split.num_removed,
        num_predictions=total_predictions,
    )
