"""Plain-text rendering of experiment results (tables and series).

The benchmark harness prints the same rows/series the paper reports: Table 5
and Table 6 become aligned text tables, the figures become ``(x, y)`` series
grouped by curve label.  Keeping rendering in one module lets the benchmarks,
the CLI and EXPERIMENTS.md share the exact same output.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

__all__ = ["TextTable", "Series", "FigureReport", "format_number"]


def format_number(value: float, *, digits: int = 3) -> str:
    """Format a number compactly: integers plain, floats with ``digits`` places."""
    if value != value:  # NaN
        return "-"
    if value in (float("inf"), float("-inf")):
        return "inf" if value > 0 else "-inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.{digits}f}"


@dataclass
class TextTable:
    """Aligned plain-text table with a title (used for Tables 5 and 6)."""

    title: str
    columns: Sequence[str]
    rows: list[Sequence[str]] = field(default_factory=list)

    def add_row(self, values: Iterable[object]) -> None:
        """Append one row; values are stringified with :func:`format_number`."""
        rendered = [
            value if isinstance(value, str) else format_number(float(value))
            for value in values
        ]
        self.rows.append(rendered)

    def render(self) -> str:
        """Render the table with aligned columns."""
        header = [str(c) for c in self.columns]
        widths = [len(h) for h in header]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, ""]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
        lines.append("  ".join("-" * widths[i] for i in range(len(header))))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)


@dataclass
class Series:
    """One labelled curve of a figure: ``(x, y)`` points in x order."""

    label: str
    points: list[tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one data point."""
        self.points.append((float(x), float(y)))

    def xs(self) -> list[float]:
        return [x for x, _ in self.points]

    def ys(self) -> list[float]:
        return [y for _, y in self.points]

    def render(self) -> str:
        """Render as ``label: (x, y) (x, y) ...``."""
        formatted = " ".join(
            f"({format_number(x)}, {format_number(y)})" for x, y in self.points
        )
        return f"{self.label}: {formatted}"


@dataclass
class FigureReport:
    """A figure reproduction: a set of labelled series plus axis names."""

    title: str
    x_label: str
    y_label: str
    series: dict[str, Series] = field(default_factory=dict)

    def series_for(self, label: str) -> Series:
        """Get (or create) the series with the given label."""
        if label not in self.series:
            self.series[label] = Series(label=label)
        return self.series[label]

    def add_point(self, label: str, x: float, y: float) -> None:
        """Append a point to the labelled series."""
        self.series_for(label).add(x, y)

    def render(self) -> str:
        """Render the whole figure as text."""
        lines = [self.title, f"x: {self.x_label}   y: {self.y_label}", ""]
        for label in sorted(self.series):
            lines.append("  " + self.series[label].render())
        return "\n".join(lines)

    def as_dict(self) -> Mapping[str, list[tuple[float, float]]]:
        """Mapping from series label to its points (used by tests)."""
        return {label: list(series.points) for label, series in self.series.items()}
