"""Ablation: content weight of the content-aware extension.

Section 3.1 notes that the raw similarity can include vertex content; the
paper then evaluates only topological scores.  This ablation measures the
extension: recall of the hybrid ``(1 - w)·topology + w·profile`` raw
similarity as a function of the content weight ``w``, for profiles generated
with high homophily (content correlated with structure, the favourable case)
and with no homophily (structure-free content, the adversarial case).

The shape to check: with homophilous profiles a moderate content weight
matches or improves the purely topological recall, while with random profiles
recall degrades monotonically as ``w`` grows — content only helps when it
carries signal, and the hybrid design degrades gracefully.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.metrics import evaluate_predictions
from repro.eval.report import FigureReport
from repro.eval.runner import ExperimentRunner
from repro.graph.attributes import generate_profiles
from repro.snaple.config import SnapleConfig
from repro.snaple.content import ContentAwareLinkPredictor, ContentConfig

__all__ = ["AblationContentResult", "run_ablation_content", "CONTENT_WEIGHTS"]

#: Content weights swept by the ablation (0 = the paper's topological score).
CONTENT_WEIGHTS: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)

#: Profile regimes: series label -> homophily of the generated profiles.
PROFILE_REGIMES: dict[str, float] = {
    "homophilous profiles": 0.95,
    "random profiles": 0.0,
}


@dataclass
class AblationContentResult:
    """Recall as a function of the content weight, one series per regime."""

    report: FigureReport
    dataset: str
    recalls: dict[tuple[str, float], float] = field(default_factory=dict)

    def recall(self, regime: str, weight: float) -> float:
        """Recall measured for a profile regime at the given content weight."""
        return self.recalls[(regime, weight)]

    def render(self) -> str:
        return self.report.render()


def run_ablation_content(
    *,
    scale: float = 1.0,
    seed: int = 42,
    dataset: str = "livejournal",
    weights: tuple[float, ...] = CONTENT_WEIGHTS,
    k_local: float = 20,
) -> AblationContentResult:
    """Sweep the content weight under homophilous and random profiles."""
    runner = ExperimentRunner(scale=scale, seed=seed)
    split = runner.split(dataset)
    report = FigureReport(
        title=f"Ablation — content weight (linearSum, {dataset} analog)",
        x_label="content weight",
        y_label="recall",
    )
    result = AblationContentResult(report=report, dataset=dataset)
    snaple = SnapleConfig.paper_default("linearSum", k_local=k_local, seed=seed)
    for regime, homophily in PROFILE_REGIMES.items():
        profiles = generate_profiles(
            split.train_graph,
            homophily=homophily,
            tags_per_vertex=8,
            num_tags=max(50, split.train_graph.num_vertices // 50),
            seed=seed,
        )
        for weight in weights:
            config = ContentConfig(snaple=snaple, content_weight=weight)
            prediction = ContentAwareLinkPredictor(config).predict(
                split.train_graph, profiles
            )
            quality = evaluate_predictions(prediction.predictions, split)
            report.add_point(regime, weight, quality.recall)
            result.recalls[(regime, weight)] = quality.recall
    return result
