"""Ablation: path length K (the 2-hop restriction of equation (2)).

The paper fixes ``K = 2`` and justifies it with the high clustering of field
graphs; footnote 2 notes the scoring framework extends to longer paths by
folding the combinator.  This ablation quantifies the trade-off: recall,
explored-path counts and wall-clock time of the K-hop predictor for
``K ∈ {2, 3}`` at two ``klocal`` budgets.

The shape to check: moving to ``K = 3`` multiplies the explored paths by
roughly ``klocal`` while changing recall only marginally on clustered
graphs — which is exactly why the paper's 2-hop restriction is the right
default.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.metrics import evaluate_predictions
from repro.eval.report import TextTable
from repro.eval.runner import ExperimentRunner
from repro.snaple.config import SnapleConfig
from repro.snaple.khop import KHopLinkPredictor

__all__ = ["KHopRow", "AblationKHopResult", "run_ablation_khop"]


@dataclass
class KHopRow:
    """Measurements for one (dataset, num_hops, klocal) configuration."""

    dataset: str
    num_hops: int
    k_local: int
    recall: float
    explored_paths: int
    wall_clock_seconds: float


@dataclass
class AblationKHopResult:
    """All rows of the path-length ablation."""

    rows: list[KHopRow] = field(default_factory=list)

    def row(self, dataset: str, num_hops: int, k_local: int) -> KHopRow:
        """The row for one configuration."""
        for row in self.rows:
            if (row.dataset, row.num_hops, row.k_local) == (dataset, num_hops, k_local):
                return row
        raise KeyError((dataset, num_hops, k_local))

    def render(self) -> str:
        table = TextTable(
            title="Ablation — path length K (linearSum)",
            columns=["dataset", "K", "klocal", "recall", "paths", "wall time (s)"],
        )
        for row in self.rows:
            table.add_row([
                row.dataset,
                row.num_hops,
                row.k_local,
                f"{row.recall:.3f}",
                row.explored_paths,
                f"{row.wall_clock_seconds:.2f}",
            ])
        return table.render()


def run_ablation_khop(
    *,
    scale: float = 1.0,
    seed: int = 42,
    datasets: tuple[str, ...] = ("livejournal",),
    hops: tuple[int, ...] = (2, 3),
    k_locals: tuple[int, ...] = (5, 10),
) -> AblationKHopResult:
    """Sweep the path length K and the sampling budget klocal."""
    runner = ExperimentRunner(scale=scale, seed=seed)
    result = AblationKHopResult()
    for dataset in datasets:
        split = runner.split(dataset)
        for k_local in k_locals:
            config = SnapleConfig.paper_default("linearSum", k_local=k_local, seed=seed)
            for num_hops in hops:
                prediction = KHopLinkPredictor(config, num_hops=num_hops).predict(
                    split.train_graph
                )
                quality = evaluate_predictions(prediction.predictions, split)
                result.rows.append(
                    KHopRow(
                        dataset=dataset,
                        num_hops=num_hops,
                        k_local=int(k_local),
                        recall=quality.recall,
                        explored_paths=prediction.total_paths,
                        wall_clock_seconds=prediction.wall_clock_seconds,
                    )
                )
    return result
