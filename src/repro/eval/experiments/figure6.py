"""Figure 6: degree CDFs and the effect of the truncation threshold thrΓ.

Panels (a)–(c) of the figure show the CDF of out-degrees for orkut,
livejournal and twitter-rv with vertical markers at candidate thrΓ values
(10, 20, 40, 80, 100).  Panel (d) shows, for each dataset, the recall of
linearSum with klocal = 80 at each thrΓ, normalized to the recall obtained
with thrΓ = 10 ("relative recall improvement").  The shape to reproduce:
recall improvement grows with thrΓ and flattens once thrΓ covers roughly
80 % of the degree distribution; the dataset with the broadest degree spread
in that range (orkut) is the most sensitive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.report import FigureReport
from repro.eval.runner import ExperimentRunner
from repro.graph.stats import DegreeCDF, degree_coverage, out_degree_cdf
from repro.snaple.config import SnapleConfig

__all__ = ["Figure6Result", "run_figure6", "FIGURE6_DATASETS", "FIGURE6_THRESHOLDS"]

FIGURE6_DATASETS: tuple[str, ...] = ("orkut", "livejournal", "twitter-rv")
FIGURE6_THRESHOLDS: tuple[int, ...] = (10, 20, 40, 80, 100)


@dataclass
class Figure6Result:
    """Degree CDFs (panels a–c) plus relative recall improvements (panel d)."""

    cdfs: dict[str, DegreeCDF] = field(default_factory=dict)
    coverage: dict[tuple[str, int], float] = field(default_factory=dict)
    recall: dict[tuple[str, int], float] = field(default_factory=dict)
    thresholds: tuple[int, ...] = FIGURE6_THRESHOLDS
    improvement: FigureReport = field(
        default_factory=lambda: FigureReport(
            title="Figure 6d — relative recall improvement vs thrΓ",
            x_label="thrΓ",
            y_label="% recall improvement over thrΓ=10",
        )
    )

    def render(self) -> str:
        """Render coverage per threshold and the improvement series."""
        lines = ["Figure 6a–c — out-degree CDF coverage at each thrΓ", ""]
        for dataset in sorted(self.cdfs):
            coverages = ", ".join(
                f"thrΓ={thr}: {self.coverage[(dataset, thr)]:.2%}"
                for thr in self.thresholds
            )
            lines.append(f"  {dataset}: {coverages}")
        return "\n".join(lines) + "\n\n" + self.improvement.render()


def run_figure6(
    *,
    scale: float = 1.0,
    seed: int = 42,
    k_local: int = 80,
    datasets: tuple[str, ...] = FIGURE6_DATASETS,
    thresholds: tuple[int, ...] = FIGURE6_THRESHOLDS,
    mode: str | None = None,
) -> Figure6Result:
    """Regenerate Figure 6 (degree CDFs and recall vs thrΓ)."""
    runner = ExperimentRunner(scale=scale, seed=seed, mode=mode)
    result = Figure6Result(thresholds=thresholds)
    for dataset in datasets:
        graph = runner.dataset(dataset)
        result.cdfs[dataset] = out_degree_cdf(graph)
        for threshold in thresholds:
            result.coverage[(dataset, threshold)] = degree_coverage(graph, threshold)
            config = SnapleConfig.paper_default(
                "linearSum",
                k_local=k_local,
                truncation_threshold=threshold,
                seed=seed,
            )
            run = runner.run_snaple_local(dataset, config)
            result.recall[(dataset, threshold)] = run.recall
        reference = result.recall[(dataset, thresholds[0])]
        for threshold in thresholds:
            if reference > 0:
                improvement = 100.0 * (result.recall[(dataset, threshold)] - reference) / reference
            else:
                improvement = 0.0
            result.improvement.add_point(dataset, threshold, improvement)
    return result
