"""Figure 10: recall as a function of the number of removed edges per vertex.

For livejournal and pokec, klocal = 80, the paper removes 1–5 outgoing edges
per eligible vertex before predicting.  Removing more edges destroys more of
the 2-hop paths SNAPLE relies on, so recall decreases roughly proportionally
with the number of removed edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.report import FigureReport
from repro.eval.runner import ExperimentRunner
from repro.snaple.config import SnapleConfig
from repro.snaple.scoring import SUM_FAMILY

__all__ = ["Figure10Result", "run_figure10", "FIGURE10_REMOVALS", "FIGURE10_DATASETS"]

FIGURE10_REMOVALS: tuple[int, ...] = (1, 2, 3, 4, 5)
FIGURE10_DATASETS: tuple[str, ...] = ("livejournal", "pokec")


@dataclass
class Figure10Result:
    """One recall-vs-removed-edges panel per dataset."""

    panels: dict[str, FigureReport] = field(default_factory=dict)

    def recall(self, dataset: str, score: str, removed: int) -> float:
        """Recall at one (dataset, score, removed-edges) point."""
        for x, y in self.panels[dataset].series[score].points:
            if int(x) == removed:
                return y
        raise KeyError(f"no point for removed={removed}")

    def render(self) -> str:
        return "\n\n".join(panel.render() for panel in self.panels.values())


def run_figure10(
    *,
    scale: float = 1.0,
    seed: int = 42,
    datasets: tuple[str, ...] = FIGURE10_DATASETS,
    removals: tuple[int, ...] = FIGURE10_REMOVALS,
    scores: tuple[str, ...] = SUM_FAMILY,
    k_local: int = 80,
    mode: str | None = None,
) -> Figure10Result:
    """Regenerate Figure 10 (recall vs removed edges per vertex)."""
    runner = ExperimentRunner(scale=scale, seed=seed, mode=mode)
    result = Figure10Result()
    for dataset in datasets:
        report = FigureReport(
            title=f"Figure 10 — recall vs removed edges on {dataset} (klocal={k_local})",
            x_label="removed edges per vertex",
            y_label="recall",
        )
        result.panels[dataset] = report
        for score in scores:
            for removed in removals:
                config = SnapleConfig.paper_default(
                    score, k_local=k_local, seed=seed
                )
                run = runner.run_snaple_local(
                    dataset, config, removed_edges_per_vertex=removed
                )
                report.add_point(score, removed, run.recall)
    return result
