"""Ablation: vertex-cut partitioning strategy.

The paper relies on GraphLab's default edge placement and does not study
partitioning; the replication factor of the vertex-cut nonetheless determines
how many bytes the apply-phase synchronization ships, which is the dominant
network term of SNAPLE's three GAS steps.  This ablation runs the same SNAPLE
configuration under three edge placements — PowerGraph's random hashing, the
oblivious greedy heuristic, and High-Degree-Replicated-First — and reports
the replication factor, the load imbalance, the total network traffic and the
simulated execution time.

The shape to check: replication factor orders ``HDRF < greedy < random``,
network traffic follows the same ordering, and the simulated time improves
accordingly (with identical predictions — partitioning must not change the
result, only its cost).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.metrics import evaluate_predictions
from repro.eval.report import TextTable
from repro.eval.runner import ExperimentRunner
from repro.gas.cluster import TYPE_I, cluster_of
from repro.gas.partition import (
    GreedyVertexCut,
    HdrfVertexCut,
    Partitioner,
    RandomVertexCut,
    partition_graph,
)
from repro.snaple.config import SnapleConfig
from repro.snaple.predictor import SnapleLinkPredictor

__all__ = [
    "PartitioningRow",
    "AblationPartitioningResult",
    "run_ablation_partitioning",
    "PARTITIONERS",
]

#: The edge placements compared by the ablation, keyed by display name.
PARTITIONERS: dict[str, Partitioner] = {
    "random": RandomVertexCut(),
    "greedy": GreedyVertexCut(),
    "hdrf": HdrfVertexCut(),
}


@dataclass
class PartitioningRow:
    """Measurements for one (dataset, partitioner) pair."""

    dataset: str
    partitioner: str
    replication_factor: float
    load_imbalance: float
    network_mebibytes: float
    simulated_seconds: float
    recall: float


@dataclass
class AblationPartitioningResult:
    """All rows of the partitioning ablation plus helpers for assertions."""

    rows: list[PartitioningRow] = field(default_factory=list)
    num_machines: int = 8

    def row(self, dataset: str, partitioner: str) -> PartitioningRow:
        """The row for one (dataset, partitioner) pair."""
        for row in self.rows:
            if row.dataset == dataset and row.partitioner == partitioner:
                return row
        raise KeyError((dataset, partitioner))

    def render(self) -> str:
        table = TextTable(
            title=(
                "Ablation — vertex-cut partitioning "
                f"({self.num_machines} type-I machines)"
            ),
            columns=[
                "dataset", "partitioner", "replication", "imbalance",
                "network MiB", "sim time (s)", "recall",
            ],
        )
        for row in self.rows:
            table.add_row([
                row.dataset,
                row.partitioner,
                f"{row.replication_factor:.2f}",
                f"{row.load_imbalance:.2f}",
                f"{row.network_mebibytes:.2f}",
                f"{row.simulated_seconds:.3f}",
                f"{row.recall:.3f}",
            ])
        return table.render()


def run_ablation_partitioning(
    *,
    scale: float = 1.0,
    seed: int = 42,
    datasets: tuple[str, ...] = ("livejournal",),
    num_machines: int = 8,
    k_local: float = 20,
) -> AblationPartitioningResult:
    """Compare the three vertex-cut placements on the same SNAPLE run."""
    runner = ExperimentRunner(scale=scale, seed=seed)
    cluster = cluster_of(TYPE_I, num_machines)
    result = AblationPartitioningResult(num_machines=num_machines)
    for dataset in datasets:
        split = runner.split(dataset)
        config = SnapleConfig.paper_default("linearSum", k_local=k_local, seed=seed)
        for name, partitioner in PARTITIONERS.items():
            partition = partition_graph(
                split.train_graph, num_machines, partitioner=partitioner, seed=seed
            )
            report = SnapleLinkPredictor(config).predict(
                split.train_graph,
                backend="gas",
                cluster=cluster,
                partitioner=partitioner,
                enforce_memory=False,
            )
            quality = evaluate_predictions(report.predictions, split)
            result.rows.append(
                PartitioningRow(
                    dataset=dataset,
                    partitioner=name,
                    replication_factor=partition.replication_factor(),
                    load_imbalance=partition.load_imbalance(),
                    network_mebibytes=(report.network_bytes or 0) / 1024**2,
                    simulated_seconds=report.simulated_seconds or 0.0,
                    recall=quality.recall,
                )
            )
    return result
