"""Figure 8: recall versus computing time for every scoring configuration.

For livejournal and twitter-rv, the paper sweeps klocal ∈ {5, 10, 20, 40, 80}
for every Table 3 scoring configuration and plots recall against execution
time, one panel per aggregator family (Sum, Mean, Geom).  The shapes to
reproduce: the Sum family's recall rises with klocal (and time), the Mean
family peaks at small klocal and then degrades, and the Geom family shows the
same degradation more strongly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.report import FigureReport
from repro.eval.runner import ExperimentRunner
from repro.gas.cluster import TYPE_I, cluster_of
from repro.snaple.config import SnapleConfig
from repro.snaple.scoring import GEOM_FAMILY, MEAN_FAMILY, SUM_FAMILY

__all__ = ["Figure8Result", "run_figure8", "FIGURE8_KLOCALS", "FIGURE8_DATASETS"]

FIGURE8_KLOCALS: tuple[int, ...] = (5, 10, 20, 40, 80)
FIGURE8_DATASETS: tuple[str, ...] = ("livejournal", "twitter-rv")
FAMILIES: dict[str, tuple[str, ...]] = {
    "Sum": SUM_FAMILY,
    "Mean": MEAN_FAMILY,
    "Geom": GEOM_FAMILY,
}


@dataclass
class Figure8Result:
    """One panel per (aggregator family, dataset) with time/recall points."""

    panels: dict[tuple[str, str], FigureReport] = field(default_factory=dict)
    #: (dataset, score, klocal) -> (time seconds, recall)
    points: dict[tuple[str, str, int], tuple[float, float]] = field(default_factory=dict)

    def recall_series(self, dataset: str, score: str) -> list[tuple[int, float]]:
        """Recall as a function of klocal for one scoring configuration."""
        series = []
        for (ds, sc, k_local), (_time, recall) in sorted(self.points.items()):
            if ds == dataset and sc == score:
                series.append((k_local, recall))
        return series

    def render(self) -> str:
        return "\n\n".join(panel.render() for panel in self.panels.values())


def run_figure8(
    *,
    scale: float = 1.0,
    seed: int = 42,
    datasets: tuple[str, ...] = FIGURE8_DATASETS,
    k_locals: tuple[int, ...] = FIGURE8_KLOCALS,
    num_machines: int = 32,
    use_gas_timing: bool = False,
    families: dict[str, tuple[str, ...]] | None = None,
    mode: str | None = None,
) -> Figure8Result:
    """Regenerate Figure 8 (recall vs time per scoring configuration).

    With ``use_gas_timing=True`` the time axis is the simulated cluster time
    on ``num_machines`` type-I nodes (the paper's 256 cores); otherwise the
    wall clock of the local run is used, which preserves the relative shape
    at a fraction of the cost.
    """
    runner = ExperimentRunner(scale=scale, seed=seed, mode=mode)
    result = Figure8Result()
    cluster = cluster_of(TYPE_I, num_machines)
    chosen_families = families if families is not None else FAMILIES
    for dataset in datasets:
        for family_name, scores in chosen_families.items():
            report = FigureReport(
                title=f"Figure 8 — {family_name} aggregator on {dataset}",
                x_label="seconds",
                y_label="recall",
            )
            result.panels[(family_name, dataset)] = report
            for score in scores:
                for k_local in k_locals:
                    config = SnapleConfig.paper_default(
                        score, k_local=k_local, seed=seed
                    )
                    if use_gas_timing:
                        run = runner.run_snaple_gas(
                            dataset, config, cluster, enforce_memory=False
                        )
                    else:
                        run = runner.run_snaple_local(dataset, config)
                    result.points[(dataset, score, k_local)] = (
                        run.time_seconds, run.recall
                    )
                    report.add_point(score, run.time_seconds, run.recall)
    return result
