"""Ablation: GAS versus BSP/Pregel execution of the same SNAPLE configuration.

Section 7 of the paper lists porting SNAPLE to BSP engines (Giraph, Bagel) as
future work.  This ablation runs the identical SNAPLE configuration through
three execution paths on the same cluster and graph:

* the simulated GAS engine with PowerGraph's random vertex-cut,
* the simulated GAS engine with the oblivious greedy vertex-cut,
* the simulated BSP/Pregel engine (hash edge-cut, explicit messages),

and reports network traffic, simulated time and recall for each.  The shape
to check: all three produce the same recall (the algorithm is unchanged), the
greedy vertex-cut GAS run ships the fewest bytes, and the BSP port's traffic
sits in the same order of magnitude as random-vertex-cut GAS — i.e. the GAS
formulation's advantage materializes through the partitioner, not for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.metrics import evaluate_predictions
from repro.eval.report import TextTable
from repro.eval.runner import ExperimentRunner
from repro.gas.cluster import TYPE_I, cluster_of
from repro.gas.partition import GreedyVertexCut
from repro.snaple.bsp_program import SnapleBspPredictor
from repro.snaple.config import SnapleConfig
from repro.snaple.predictor import SnapleLinkPredictor

__all__ = ["EngineRow", "AblationEnginesResult", "run_ablation_engines"]


@dataclass
class EngineRow:
    """Measurements for one (dataset, execution path) pair."""

    dataset: str
    engine: str
    network_mebibytes: float
    simulated_seconds: float
    recall: float
    supersteps: int


@dataclass
class AblationEnginesResult:
    """All rows of the engine ablation."""

    rows: list[EngineRow] = field(default_factory=list)
    num_machines: int = 8

    def row(self, dataset: str, engine: str) -> EngineRow:
        """The row for one (dataset, engine) pair."""
        for row in self.rows:
            if row.dataset == dataset and row.engine == engine:
                return row
        raise KeyError((dataset, engine))

    def render(self) -> str:
        table = TextTable(
            title=(
                "Ablation — GAS vs BSP execution of SNAPLE "
                f"({self.num_machines} type-I machines)"
            ),
            columns=[
                "dataset", "engine", "network MiB", "sim time (s)",
                "recall", "steps",
            ],
        )
        for row in self.rows:
            table.add_row([
                row.dataset,
                row.engine,
                f"{row.network_mebibytes:.2f}",
                f"{row.simulated_seconds:.3f}",
                f"{row.recall:.3f}",
                row.supersteps,
            ])
        return table.render()


def run_ablation_engines(
    *,
    scale: float = 1.0,
    seed: int = 42,
    datasets: tuple[str, ...] = ("livejournal",),
    num_machines: int = 8,
    k_local: float = 20,
) -> AblationEnginesResult:
    """Run the same SNAPLE configuration on the GAS and BSP substrates."""
    runner = ExperimentRunner(scale=scale, seed=seed)
    cluster = cluster_of(TYPE_I, num_machines)
    result = AblationEnginesResult(num_machines=num_machines)
    for dataset in datasets:
        split = runner.split(dataset)
        config = SnapleConfig.paper_default("linearSum", k_local=k_local, seed=seed)

        gas_random = SnapleLinkPredictor(config).predict_gas(
            split.train_graph, cluster=cluster, enforce_memory=False
        )
        gas_greedy = SnapleLinkPredictor(config).predict_gas(
            split.train_graph,
            cluster=cluster,
            partitioner=GreedyVertexCut(),
            enforce_memory=False,
        )
        bsp = SnapleBspPredictor(config).predict(
            split.train_graph, cluster=cluster, enforce_memory=False
        )

        for name, predictions, metrics, simulated, steps in (
            (
                "GAS (random cut)",
                gas_random.predictions,
                gas_random.gas_result.metrics,
                gas_random.simulated_seconds,
                len(gas_random.gas_result.metrics.steps),
            ),
            (
                "GAS (greedy cut)",
                gas_greedy.predictions,
                gas_greedy.gas_result.metrics,
                gas_greedy.simulated_seconds,
                len(gas_greedy.gas_result.metrics.steps),
            ),
            (
                "BSP (hash cut)",
                bsp.predictions,
                bsp.bsp_result.metrics,
                bsp.simulated_seconds,
                bsp.bsp_result.supersteps,
            ),
        ):
            quality = evaluate_predictions(predictions, split)
            result.rows.append(
                EngineRow(
                    dataset=dataset,
                    engine=name,
                    network_mebibytes=metrics.total_network_bytes / 1024**2,
                    simulated_seconds=simulated or 0.0,
                    recall=quality.recall,
                    supersteps=steps,
                )
            )
    return result
