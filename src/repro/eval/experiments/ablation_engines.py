"""Ablation: GAS versus BSP/Pregel execution of the same SNAPLE configuration.

Section 7 of the paper lists porting SNAPLE to BSP engines (Giraph, Bagel) as
future work.  This ablation runs the identical SNAPLE configuration through
three execution paths on the same cluster and graph, all resolved through the
:mod:`repro.runtime` backend registry:

* ``gas`` — the simulated GAS engine with PowerGraph's random vertex-cut,
* ``gas-greedy`` — the simulated GAS engine with the oblivious greedy
  vertex-cut,
* ``bsp`` — the simulated BSP/Pregel engine (hash edge-cut, explicit
  messages),

and reports network traffic, simulated time and recall for each.  The shape
to check: all three produce the same recall (the algorithm is unchanged), the
greedy vertex-cut GAS run ships the fewest bytes, and the BSP port's traffic
sits in the same order of magnitude as random-vertex-cut GAS — i.e. the GAS
formulation's advantage materializes through the partitioner, not for free.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError
from repro.eval.metrics import evaluate_predictions
from repro.eval.report import TextTable
from repro.eval.runner import ExperimentRunner
from repro.gas.cluster import TYPE_I, cluster_of
from repro.gas.partition import GreedyVertexCut
from repro.snaple.config import SnapleConfig
from repro.snaple.predictor import SnapleLinkPredictor

__all__ = [
    "ENGINE_SPECS",
    "EngineRow",
    "AblationEnginesResult",
    "run_ablation_engines",
]


def _greedy_partitioner_options() -> dict[str, Any]:
    return {"partitioner": GreedyVertexCut()}


#: Engine specs selectable through ``engines=`` / the CLI ``--engine`` flag:
#: key -> (display name, backend registry name, factory producing extra
#: backend options — a factory so each run gets a fresh partitioner).
ENGINE_SPECS: dict[str, tuple[str, str, Callable[[], dict[str, Any]]]] = {
    "gas": ("GAS (random cut)", "gas", dict),
    "gas-greedy": ("GAS (greedy cut)", "gas", _greedy_partitioner_options),
    "bsp": ("BSP (hash cut)", "bsp", dict),
}


@dataclass
class EngineRow:
    """Measurements for one (dataset, execution path) pair."""

    dataset: str
    engine: str
    network_mebibytes: float
    simulated_seconds: float
    recall: float
    supersteps: int


@dataclass
class AblationEnginesResult:
    """All rows of the engine ablation."""

    rows: list[EngineRow] = field(default_factory=list)
    num_machines: int = 8
    workers: int | None = None

    def row(self, dataset: str, engine: str) -> EngineRow:
        """The row for one (dataset, engine) pair."""
        for row in self.rows:
            if row.dataset == dataset and row.engine == engine:
                return row
        raise KeyError((dataset, engine))

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable view of the ablation."""
        return {
            "num_machines": self.num_machines,
            "workers": self.workers,
            "rows": [asdict(row) for row in self.rows],
        }

    def render(self) -> str:
        if self.workers is not None:
            flavour = f"{self.workers} worker processes, wall-clock"
        else:
            flavour = f"{self.num_machines} type-I machines"
        table = TextTable(
            title=f"Ablation — GAS vs BSP execution of SNAPLE ({flavour})",
            columns=[
                "dataset", "engine", "network MiB", "sim time (s)",
                "recall", "steps",
            ],
        )
        for row in self.rows:
            table.add_row([
                row.dataset,
                row.engine,
                f"{row.network_mebibytes:.2f}",
                f"{row.simulated_seconds:.3f}",
                f"{row.recall:.3f}",
                row.supersteps,
            ])
        return table.render()


def run_ablation_engines(
    *,
    scale: float = 1.0,
    seed: int = 42,
    datasets: tuple[str, ...] = ("livejournal",),
    num_machines: int = 8,
    k_local: float = 20,
    engines: tuple[str, ...] = ("gas", "gas-greedy", "bsp"),
    workers: int | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_every: int | None = None,
    resume: bool = False,
) -> AblationEnginesResult:
    """Run the same SNAPLE configuration on the selected execution engines.

    ``engines`` selects from :data:`ENGINE_SPECS` (all three by default);
    unknown names raise :class:`~repro.errors.ConfigurationError`.

    ``workers`` switches every engine from the simulated ``num_machines``
    cluster to real shared-nothing parallelism (see
    :mod:`repro.runtime.parallel`): partitions execute in that many worker
    processes, the network column reports the state actually shipped between
    partitions, and the time column reports wall-clock seconds instead of
    simulated cluster time.  The partitioner of each spec (e.g. the greedy
    vertex-cut) then controls partition locality rather than simulated
    placement.

    ``checkpoint_dir`` (requires ``workers``) persists superstep-boundary
    checkpoints for every run, each under its own
    ``<checkpoint_dir>/<dataset>-<engine>`` subdirectory, at a
    ``checkpoint_every`` cadence; with ``resume=True`` a run whose
    subdirectory already holds checkpoints restores from the newest one
    before executing — the CLI's ``--resume`` after an interrupted
    invocation.  Results are bit-identical with and without resume.
    """
    for engine in engines:
        if engine not in ENGINE_SPECS:
            raise ConfigurationError(
                f"unknown engine {engine!r}; available engines: "
                f"{', '.join(sorted(ENGINE_SPECS))}"
            )
    if checkpoint_dir is not None and workers is None:
        raise ConfigurationError(
            "checkpoint_dir requires workers=N; the simulated engines do "
            "not checkpoint"
        )
    if (checkpoint_every is not None or resume) and checkpoint_dir is None:
        raise ConfigurationError(
            "checkpoint_every/resume require a checkpoint_dir"
        )
    runner = ExperimentRunner(scale=scale, seed=seed)
    if workers is None:
        cluster_options: dict[str, Any] = {
            "cluster": cluster_of(TYPE_I, num_machines),
            "enforce_memory": False,
        }
    else:
        cluster_options = {"workers": workers}
    result = AblationEnginesResult(num_machines=num_machines, workers=workers)
    for dataset in datasets:
        split = runner.split(dataset)
        config = SnapleConfig.paper_default("linearSum", k_local=k_local, seed=seed)
        predictor = SnapleLinkPredictor(config)
        for engine in engines:
            display_name, backend, make_options = ENGINE_SPECS[engine]
            fault_tolerance: dict[str, Any] = {}
            if checkpoint_dir is not None:
                from repro.runtime.checkpoint import list_checkpoint_dirs

                run_dir = Path(checkpoint_dir) / f"{dataset}-{engine}"
                fault_tolerance["checkpoint_dir"] = run_dir
                if checkpoint_every is not None:
                    fault_tolerance["checkpoint_every"] = checkpoint_every
                if resume and list_checkpoint_dirs(run_dir):
                    fault_tolerance["resume_from"] = run_dir
            report = predictor.predict(
                split.train_graph,
                backend=backend,
                **cluster_options,
                **fault_tolerance,
                **make_options(),
            )
            quality = evaluate_predictions(report.predictions, split)
            result.rows.append(
                EngineRow(
                    dataset=dataset,
                    engine=display_name,
                    network_mebibytes=(report.network_bytes or 0) / 1024**2,
                    # Simulated cluster time for simulated runs, real wall
                    # clock for workers= runs (the report has no simulation).
                    simulated_seconds=report.time_seconds,
                    recall=quality.recall,
                    supersteps=report.supersteps or 0,
                )
            )
    return result
