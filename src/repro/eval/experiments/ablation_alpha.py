"""Ablation: the linear combinator's weight ``α``.

Section 5.2 of the paper states that the linear combinator is configured with
``α = 0.9``, "which was found to return the best predictions", but does not
show the sweep.  This ablation regenerates it: recall of the linearSum score
as a function of ``α`` on two dataset analogs, with the paper's other
defaults (``klocal = 80``, ``thrΓ = 200``, ``k = 5``).

The shape to check: recall improves as ``α`` grows towards heavily weighting
the first hop ``sim(u, v)`` and peaks near the paper's 0.9 choice (values at
0.75–1.0 are close to each other, low ``α`` is clearly worse).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.report import FigureReport
from repro.eval.runner import ExperimentRunner
from repro.snaple.config import SnapleConfig

__all__ = ["AblationAlphaResult", "run_ablation_alpha", "ALPHA_VALUES"]

#: Sweep of the linear combinator weight; includes the paper's 0.9 default.
ALPHA_VALUES: tuple[float, ...] = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)

#: Datasets used by the ablation (the two the paper uses most often).
ALPHA_DATASETS: tuple[str, ...] = ("livejournal", "pokec")


@dataclass
class AblationAlphaResult:
    """Recall as a function of ``α``, one series per dataset."""

    report: FigureReport
    k_local: float
    recalls: dict[tuple[str, float], float] = field(default_factory=dict)

    def recall(self, dataset: str, alpha: float) -> float:
        """Recall measured for ``dataset`` at the given ``alpha``."""
        return self.recalls[(dataset, alpha)]

    def best_alpha(self, dataset: str) -> float:
        """The ``α`` value with the highest recall on ``dataset``."""
        candidates = {
            alpha: value for (name, alpha), value in self.recalls.items()
            if name == dataset
        }
        return max(candidates, key=candidates.get)

    def render(self) -> str:
        return self.report.render()


def run_ablation_alpha(
    *,
    scale: float = 1.0,
    seed: int = 42,
    datasets: tuple[str, ...] = ALPHA_DATASETS,
    alphas: tuple[float, ...] = ALPHA_VALUES,
    k_local: float = 80,
    mode: str | None = None,
) -> AblationAlphaResult:
    """Sweep the linear combinator weight and measure recall."""
    runner = ExperimentRunner(scale=scale, seed=seed, mode=mode)
    report = FigureReport(
        title="Ablation — linear combinator weight α (linearSum, klocal=%s)" % int(k_local),
        x_label="alpha",
        y_label="recall",
    )
    result = AblationAlphaResult(report=report, k_local=k_local)
    for dataset in datasets:
        for alpha in alphas:
            config = SnapleConfig.paper_default(
                "linearSum", k_local=k_local, alpha=alpha, seed=seed
            )
            run = runner.run_snaple_local(dataset, config)
            report.add_point(dataset, alpha, run.recall)
            result.recalls[(dataset, alpha)] = run.recall
    return result
