"""Table 5: BASELINE versus twelve SNAPLE configurations.

The paper runs the naive BASELINE and SNAPLE with three scores
(linearSum, counter, PPR) under four (thrΓ, klocal) combinations —
(∞, ∞), (20, ∞), (∞, 20), (20, 20) — on gowalla, pokec and livejournal
using four type-II machines (80 cores), and reports recall and execution
time with gains/speedups over BASELINE.

The headline shapes to reproduce: SNAPLE's recall is roughly twice
BASELINE's on every dataset; klocal is the dominant speedup lever; thrΓ
truncation trades a little recall for a little extra speed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.eval.report import TextTable, format_number
from repro.eval.runner import ExperimentRun, ExperimentRunner
from repro.gas.cluster import TYPE_II, cluster_of
from repro.snaple.config import SnapleConfig

__all__ = ["Table5Result", "run_table5", "TABLE5_DATASETS", "TABLE5_SCORES"]

TABLE5_DATASETS: tuple[str, ...] = ("gowalla", "pokec", "livejournal")
TABLE5_SCORES: tuple[str, ...] = ("linearSum", "counter", "PPR")
#: The four (thrΓ, klocal) blocks of the table, in paper order.
TABLE5_BLOCKS: tuple[tuple[float, float], ...] = (
    (math.inf, math.inf),
    (20, math.inf),
    (math.inf, 20),
    (20, 20),
)


@dataclass
class Table5Result:
    """All measurements needed to print Table 5."""

    baseline: dict[str, ExperimentRun] = field(default_factory=dict)
    snaple: dict[tuple[str, str, float, float], ExperimentRun] = field(default_factory=dict)
    datasets: tuple[str, ...] = TABLE5_DATASETS
    scores: tuple[str, ...] = TABLE5_SCORES
    blocks: tuple[tuple[float, float], ...] = TABLE5_BLOCKS

    def recall_gain(self, dataset: str, score: str,
                    thr_gamma: float, k_local: float) -> float:
        """Recall gain of a SNAPLE configuration over BASELINE."""
        base = self.baseline[dataset]
        run = self.snaple[(dataset, score, thr_gamma, k_local)]
        return ExperimentRunner.recall_gain(base, run)

    def speedup(self, dataset: str, score: str,
                thr_gamma: float, k_local: float) -> float:
        """Time speedup of a SNAPLE configuration over BASELINE."""
        base = self.baseline[dataset]
        run = self.snaple[(dataset, score, thr_gamma, k_local)]
        return ExperimentRunner.speedup(base, run)

    def render(self) -> str:
        """Render the table in the paper's layout (one block per parameter pair)."""
        table = TextTable(
            title="Table 5 — BASELINE vs SNAPLE (recall / time, gains in brackets)",
            columns=["config", "score"] + [
                f"{name} recall" for name in self.datasets
            ] + [f"{name} time(s)" for name in self.datasets],
        )
        baseline_row: list[object] = ["BASELINE", "jaccard-2hop"]
        baseline_row += [
            format_number(self.baseline[name].recall) for name in self.datasets
        ]
        baseline_row += [
            format_number(self.baseline[name].time_seconds) for name in self.datasets
        ]
        table.add_row(baseline_row)
        for thr_gamma, k_local in self.blocks:
            label = (
                f"thrΓ={'inf' if math.isinf(thr_gamma) else int(thr_gamma)}, "
                f"klocal={'inf' if math.isinf(k_local) else int(k_local)}"
            )
            for score in self.scores:
                row: list[object] = [label, score]
                for name in self.datasets:
                    run = self.snaple[(name, score, thr_gamma, k_local)]
                    gain = self.recall_gain(name, score, thr_gamma, k_local)
                    row.append(f"{run.recall:.3f} ({format_number(gain, digits=1)})")
                for name in self.datasets:
                    run = self.snaple[(name, score, thr_gamma, k_local)]
                    speed = self.speedup(name, score, thr_gamma, k_local)
                    row.append(
                        f"{run.time_seconds:.3f} ({format_number(speed, digits=1)})"
                    )
                table.add_row(row)
        return table.render()


def run_table5(
    *,
    scale: float = 1.0,
    seed: int = 42,
    num_machines: int = 4,
    datasets: tuple[str, ...] = TABLE5_DATASETS,
    scores: tuple[str, ...] = TABLE5_SCORES,
    blocks: tuple[tuple[float, float], ...] = TABLE5_BLOCKS,
) -> Table5Result:
    """Regenerate Table 5 on the synthetic dataset analogs.

    The cluster is ``num_machines`` type-II nodes (the paper uses 4, i.e.
    80 cores).  Memory enforcement is disabled for this table because the
    paper only reports BASELINE failures on orkut/twitter-rv, which are not
    part of Table 5.
    """
    runner = ExperimentRunner(scale=scale, seed=seed)
    cluster = cluster_of(TYPE_II, num_machines)
    result = Table5Result(datasets=datasets, scores=scores, blocks=blocks)
    for dataset in datasets:
        result.baseline[dataset] = runner.run_baseline_gas(
            dataset, cluster, enforce_memory=False
        )
        for thr_gamma, k_local in blocks:
            for score in scores:
                config = SnapleConfig.paper_default(
                    score,
                    k_local=k_local,
                    truncation_threshold=thr_gamma,
                    seed=seed,
                )
                result.snaple[(dataset, score, thr_gamma, k_local)] = (
                    runner.run_snaple_gas(
                        dataset, config, cluster, enforce_memory=False
                    )
                )
    return result
