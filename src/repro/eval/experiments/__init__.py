"""Per-table / per-figure experiment definitions.

Each module regenerates one table or figure from the paper's evaluation
section (Section 5), using the synthetic dataset analogs and the simulated
cluster.  The benchmark harness under ``benchmarks/`` and the CLI both call
these entry points.
"""

from repro.eval.experiments.table5 import run_table5
from repro.eval.experiments.figure5 import run_figure5
from repro.eval.experiments.figure6 import run_figure6
from repro.eval.experiments.figure7 import run_figure7
from repro.eval.experiments.figure8 import run_figure8
from repro.eval.experiments.figure9 import run_figure9
from repro.eval.experiments.figure10 import run_figure10
from repro.eval.experiments.figure11 import run_figure11
from repro.eval.experiments.table6 import run_table6
from repro.eval.experiments.ablation_alpha import run_ablation_alpha
from repro.eval.experiments.ablation_content import run_ablation_content
from repro.eval.experiments.ablation_engines import run_ablation_engines
from repro.eval.experiments.ablation_khop import run_ablation_khop
from repro.eval.experiments.ablation_partitioning import run_ablation_partitioning

__all__ = [
    "get_experiment",
    "resolve_experiment_name",
    "run_table5",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "run_figure10",
    "run_figure11",
    "run_table6",
    "run_ablation_alpha",
    "run_ablation_content",
    "run_ablation_engines",
    "run_ablation_khop",
    "run_ablation_partitioning",
]

#: Experiment registry keyed by the paper's table/figure identifier.  The
#: ``ablation-*`` entries are reproductions of design choices the paper
#: states but does not plot (α = 0.9, K = 2) plus the extensions this
#: repository adds (partitioning, BSP port, content-aware scoring).
EXPERIMENTS = {
    "table5": run_table5,
    "figure5": run_figure5,
    "figure6": run_figure6,
    "figure7": run_figure7,
    "figure8": run_figure8,
    "figure9": run_figure9,
    "figure10": run_figure10,
    "figure11": run_figure11,
    "table6": run_table6,
    "ablation-alpha": run_ablation_alpha,
    "ablation-content": run_ablation_content,
    "ablation-engines": run_ablation_engines,
    "ablation-khop": run_ablation_khop,
    "ablation-partitioning": run_ablation_partitioning,
}


def resolve_experiment_name(name: str) -> str:
    """Canonical :data:`EXPERIMENTS` key for ``name``.

    ``_`` and ``-`` are interchangeable, matching the component registry's
    normalizer (``ablation_alpha`` resolves to ``ablation-alpha``).  Raises
    :class:`~repro.errors.ConfigurationError` for unknown names.
    """
    from repro.errors import ConfigurationError
    from repro.runtime.registry import match_component_name

    canonical = match_component_name(name, EXPERIMENTS)
    if canonical is None:
        raise ConfigurationError(
            f"unknown experiment {name!r}; available: "
            f"{', '.join(sorted(EXPERIMENTS))}"
        )
    return canonical


def get_experiment(name: str):
    """The run function for experiment ``name`` (normalized lookup)."""
    return EXPERIMENTS[resolve_experiment_name(name)]
