"""Table 6: SNAPLE versus the Cassovary-style baseline on a single machine.

The paper compares the best random-walk PPR operating point found in
Figure 11 (best recall in the shortest time) against SNAPLE with klocal = 20
running on one type-II machine, for livejournal and twitter-rv.  The shapes
to reproduce: SNAPLE achieves equal or better recall in less time (the paper
reports 2.03× and 9.02× speedups), and distribution adds a further large
speedup on the biggest graph (the paper's 30× headline claim).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.random_walk_ppr import RandomWalkConfig
from repro.eval.experiments.figure11 import run_figure11
from repro.eval.report import TextTable
from repro.eval.runner import ExperimentRun, ExperimentRunner
from repro.gas.cluster import TYPE_I, TYPE_II, cluster_of
from repro.snaple.config import SnapleConfig

__all__ = ["Table6Result", "run_table6", "TABLE6_DATASETS"]

TABLE6_DATASETS: tuple[str, ...] = ("livejournal", "twitter-rv")


@dataclass
class Table6Result:
    """Per-dataset best baseline run, SNAPLE single-machine run, and speedups."""

    cassovary: dict[str, ExperimentRun] = field(default_factory=dict)
    snaple: dict[str, ExperimentRun] = field(default_factory=dict)
    distributed: dict[str, ExperimentRun] = field(default_factory=dict)

    def speedup(self, dataset: str) -> float:
        """Single-machine SNAPLE speedup over the random-walk baseline."""
        return ExperimentRunner.speedup(self.cassovary[dataset], self.snaple[dataset])

    def distributed_speedup(self, dataset: str) -> float:
        """Distributed SNAPLE speedup over the random-walk baseline."""
        return ExperimentRunner.speedup(
            self.cassovary[dataset], self.distributed[dataset]
        )

    def render(self) -> str:
        table = TextTable(
            title="Table 6 — SNAPLE vs random-walk PPR (single type-II machine)",
            columns=[
                "dataset", "PPR recall", "PPR time(s)",
                "SNAPLE recall", "SNAPLE time(s)", "speedup",
                "distributed time(s)", "distributed speedup",
            ],
        )
        for dataset in sorted(self.cassovary):
            baseline = self.cassovary[dataset]
            single = self.snaple[dataset]
            distributed = self.distributed.get(dataset)
            row: list[object] = [
                dataset,
                baseline.recall,
                baseline.time_seconds,
                single.recall,
                single.time_seconds,
                self.speedup(dataset),
            ]
            if distributed is not None:
                row += [distributed.time_seconds, self.distributed_speedup(dataset)]
            else:
                row += ["-", "-"]
            table.add_row(row)
        return table.render()


def run_table6(
    *,
    scale: float = 1.0,
    seed: int = 42,
    datasets: tuple[str, ...] = TABLE6_DATASETS,
    k_local: int = 20,
    baseline_config: RandomWalkConfig | None = None,
    walks: tuple[int, ...] = (10, 100, 1000),
    depths: tuple[int, ...] = (3, 4, 5),
    distributed_machines: int = 32,
) -> Table6Result:
    """Regenerate Table 6 plus the distributed-speedup comparison.

    When ``baseline_config`` is given it is used directly for the random-walk
    baseline; otherwise the best operating point from a (walks × depths)
    sweep is selected, as in the paper.
    """
    runner = ExperimentRunner(scale=scale, seed=seed)
    result = Table6Result()
    single_machine = cluster_of(TYPE_II, 1)
    distributed_cluster = cluster_of(TYPE_I, distributed_machines)
    for dataset in datasets:
        if baseline_config is not None:
            result.cassovary[dataset] = runner.run_random_walk(dataset, baseline_config)
        else:
            sweep = run_figure11(
                scale=scale, seed=seed, datasets=(dataset,),
                walks=walks, depths=depths,
            )
            result.cassovary[dataset] = sweep.best_run(dataset)
        config = SnapleConfig.paper_default("linearSum", k_local=k_local, seed=seed)
        result.snaple[dataset] = runner.run_snaple_gas(
            dataset, config, single_machine, enforce_memory=False
        )
        small_k_config = SnapleConfig.paper_default("linearSum", k_local=5, seed=seed)
        result.distributed[dataset] = runner.run_snaple_gas(
            dataset, small_k_config, distributed_cluster, enforce_memory=False
        )
    return result
