"""Figure 5: execution time versus graph size (scalability).

The paper plots SNAPLE's execution time (linearSum) against the edge count of
livejournal, orkut and twitter-rv for klocal ∈ {40, 80} on type-I clusters
(64/128/256 cores) and type-II clusters (80/160 cores).  The shapes to
reproduce: time grows roughly linearly with edge count, more cores are
faster, doubling klocal increases time by roughly 70 %, and under-provisioned
configurations do not fit into memory (missing points in the paper's plots).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ResourceExhaustedError
from repro.eval.report import FigureReport
from repro.eval.runner import ExperimentRunner
from repro.gas.cluster import MachineSpec, TYPE_I, TYPE_II, cluster_of
from repro.snaple.config import SnapleConfig

__all__ = ["Figure5Result", "run_figure5", "FIGURE5_DATASETS"]

#: Datasets swept, in increasing edge count (as in the paper's x axis).
FIGURE5_DATASETS: tuple[str, ...] = ("livejournal", "orkut", "twitter-rv")

#: Core counts per machine type, matching Figures 5a–5d.
TYPE_I_CORES: tuple[int, ...] = (64, 128, 256)
TYPE_II_CORES: tuple[int, ...] = (80, 160)


@dataclass
class Figure5Result:
    """One :class:`FigureReport` per (machine type, klocal) panel."""

    panels: dict[tuple[str, int], FigureReport] = field(default_factory=dict)
    #: Configurations that did not fit into the simulated memory
    #: (dataset, machine type, cores, klocal), mirroring missing points.
    out_of_memory: list[tuple[str, str, int, int]] = field(default_factory=list)

    def panel(self, machine_type: str, k_local: int) -> FigureReport:
        """The report for one panel (e.g. ``('type-I', 40)``)."""
        return self.panels[(machine_type, k_local)]

    def render(self) -> str:
        """Render all panels plus the OOM list."""
        parts = [report.render() for report in self.panels.values()]
        if self.out_of_memory:
            lines = ["Configurations exceeding simulated memory (missing points):"]
            for dataset, machine, cores, k_local in self.out_of_memory:
                lines.append(f"  {dataset} on {cores} {machine} cores, klocal={k_local}")
            parts.append("\n".join(lines))
        return "\n\n".join(parts)


def _cores_to_machines(machine: MachineSpec, cores: int) -> int:
    return max(1, cores // machine.cores)


def run_figure5(
    *,
    scale: float = 1.0,
    seed: int = 42,
    k_locals: tuple[int, ...] = (40, 80),
    datasets: tuple[str, ...] = FIGURE5_DATASETS,
    memory_scale: float = 2.0e-6,
    enforce_memory: bool = True,
) -> Figure5Result:
    """Regenerate the four panels of Figure 5.

    ``memory_scale`` shrinks the simulated per-machine memory so that, like
    in the paper, the largest dataset with the larger klocal does not fit on
    the smallest type-I cluster.
    """
    runner = ExperimentRunner(scale=scale, seed=seed)
    result = Figure5Result()
    machine_sweeps: list[tuple[MachineSpec, tuple[int, ...]]] = [
        (TYPE_I, TYPE_I_CORES),
        (TYPE_II, TYPE_II_CORES),
    ]
    for k_local in k_locals:
        for machine, core_counts in machine_sweeps:
            report = FigureReport(
                title=f"Figure 5 — klocal={k_local}, {machine.name} nodes",
                x_label="edges in the graph",
                y_label="simulated seconds",
            )
            result.panels[(machine.name, k_local)] = report
            for cores in core_counts:
                cluster = cluster_of(
                    machine,
                    _cores_to_machines(machine, cores),
                    memory_scale=memory_scale,
                )
                for dataset in datasets:
                    config = SnapleConfig.paper_default(
                        "linearSum", k_local=k_local, seed=seed
                    )
                    edges = runner.split(dataset).train_graph.num_edges
                    try:
                        run = runner.run_snaple_gas(
                            dataset, config, cluster,
                            enforce_memory=enforce_memory,
                        )
                    except ResourceExhaustedError:
                        run = None
                    if run is None or run.failed:
                        result.out_of_memory.append(
                            (dataset, machine.name, cores, k_local)
                        )
                        continue
                    report.add_point(f"{cores} cores", edges, run.time_seconds)
    return result
