"""Figure 11: the Cassovary-style random-walk PPR baseline.

For livejournal and twitter-rv the paper sweeps the number of walks
w ∈ {10, 100, 1000} and the walk depth d ∈ {3, 4, 5, 10} for the
single-machine random-walk PPR predictor and plots recall against computing
time.  The shapes to reproduce: increasing depth beyond 3 barely improves
recall, while increasing the number of walks improves recall at a steep time
cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.random_walk_ppr import RandomWalkConfig
from repro.eval.report import FigureReport
from repro.eval.runner import ExperimentRun, ExperimentRunner

__all__ = ["Figure11Result", "run_figure11", "FIGURE11_WALKS", "FIGURE11_DEPTHS"]

FIGURE11_WALKS: tuple[int, ...] = (10, 100, 1000)
FIGURE11_DEPTHS: tuple[int, ...] = (3, 4, 5, 10)
FIGURE11_DATASETS: tuple[str, ...] = ("livejournal", "twitter-rv")


@dataclass
class Figure11Result:
    """One recall-vs-time panel per dataset plus all raw runs."""

    panels: dict[str, FigureReport] = field(default_factory=dict)
    runs: dict[tuple[str, int, int], ExperimentRun] = field(default_factory=dict)

    def best_run(self, dataset: str) -> ExperimentRun:
        """The run with the highest recall (ties: shortest time) for a dataset.

        This is the operating point the paper compares SNAPLE against in
        Table 6 ("best recall in the shortest time").
        """
        candidates = [
            run for (ds, _w, _d), run in self.runs.items() if ds == dataset
        ]
        if not candidates:
            raise KeyError(f"no runs recorded for dataset {dataset!r}")
        return max(candidates, key=lambda run: (run.recall, -run.time_seconds))

    def render(self) -> str:
        return "\n\n".join(panel.render() for panel in self.panels.values())


def run_figure11(
    *,
    scale: float = 1.0,
    seed: int = 42,
    datasets: tuple[str, ...] = FIGURE11_DATASETS,
    walks: tuple[int, ...] = FIGURE11_WALKS,
    depths: tuple[int, ...] = FIGURE11_DEPTHS,
    k: int = 5,
) -> Figure11Result:
    """Regenerate Figure 11 (random-walk PPR recall vs time sweep)."""
    runner = ExperimentRunner(scale=scale, seed=seed)
    result = Figure11Result()
    for dataset in datasets:
        report = FigureReport(
            title=f"Figure 11 — random-walk PPR on {dataset}",
            x_label="seconds",
            y_label="recall",
        )
        result.panels[dataset] = report
        for depth in depths:
            for num_walks in walks:
                config = RandomWalkConfig(
                    num_walks=num_walks, depth=depth, k=k, seed=seed
                )
                run = runner.run_random_walk(dataset, config)
                result.runs[(dataset, num_walks, depth)] = run
                report.add_point(f"PPR d={depth}", run.time_seconds, run.recall)
    return result
