"""Figure 7: impact of the neighbor-selection policy (Γmax / Γmin / Γrnd).

For the livejournal dataset and three scores (counter, linearSum, PPR), the
paper sweeps klocal ∈ {5, 10, 20, 40, 80} and compares three sampling
policies.  The shapes to reproduce: Γmax dominates the other two policies at
small klocal (the paper reports roughly 2× Γmin and +50 % over Γrnd at
klocal = 5) and the three policies converge as klocal grows large enough to
cover most neighborhoods.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.report import FigureReport
from repro.eval.runner import ExperimentRunner
from repro.snaple.config import SnapleConfig

__all__ = ["Figure7Result", "run_figure7", "FIGURE7_SCORES", "FIGURE7_KLOCALS"]

FIGURE7_SCORES: tuple[str, ...] = ("counter", "linearSum", "PPR")
FIGURE7_KLOCALS: tuple[int, ...] = (5, 10, 20, 40, 80)
FIGURE7_POLICIES: tuple[str, ...] = ("max", "min", "rnd")


@dataclass
class Figure7Result:
    """One panel per score; each panel has one recall-vs-klocal series per policy."""

    panels: dict[str, FigureReport] = field(default_factory=dict)

    def recall(self, score: str, policy: str, k_local: int) -> float:
        """Recall for one (score, policy, klocal) point."""
        series = self.panels[score].series[f"Γ{policy}"]
        for x, y in series.points:
            if int(x) == k_local:
                return y
        raise KeyError(f"no point for klocal={k_local}")

    def render(self) -> str:
        return "\n\n".join(panel.render() for panel in self.panels.values())


def run_figure7(
    *,
    dataset: str = "livejournal",
    scale: float = 1.0,
    seed: int = 42,
    scores: tuple[str, ...] = FIGURE7_SCORES,
    k_locals: tuple[int, ...] = FIGURE7_KLOCALS,
    policies: tuple[str, ...] = FIGURE7_POLICIES,
    mode: str | None = None,
) -> Figure7Result:
    """Regenerate Figure 7 (sampling policy comparison on livejournal)."""
    runner = ExperimentRunner(scale=scale, seed=seed, mode=mode)
    result = Figure7Result()
    for score in scores:
        report = FigureReport(
            title=f"Figure 7 — {score} on {dataset}",
            x_label="klocal",
            y_label="recall",
        )
        result.panels[score] = report
        for policy in policies:
            for k_local in k_locals:
                config = SnapleConfig.paper_default(
                    score,
                    k_local=k_local,
                    sampler_name=policy,
                    seed=seed,
                )
                run = runner.run_snaple_local(dataset, config)
                report.add_point(f"Γ{policy}", k_local, run.recall)
    return result
