"""Figure 9: recall as a function of the number of returned predictions k.

For livejournal and pokec, klocal = 80, the paper sweeps k ∈ {5, 10, 15, 20}
for the Sum-family scores and observes recall increasing substantially with
k (more answers, more chances to include the removed edge).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.report import FigureReport
from repro.eval.runner import ExperimentRunner
from repro.snaple.config import SnapleConfig
from repro.snaple.scoring import SUM_FAMILY

__all__ = ["Figure9Result", "run_figure9", "FIGURE9_KS", "FIGURE9_DATASETS"]

FIGURE9_KS: tuple[int, ...] = (5, 10, 15, 20)
FIGURE9_DATASETS: tuple[str, ...] = ("livejournal", "pokec")


@dataclass
class Figure9Result:
    """One recall-vs-k panel per dataset."""

    panels: dict[str, FigureReport] = field(default_factory=dict)

    def recall(self, dataset: str, score: str, k: int) -> float:
        """Recall at one (dataset, score, k) point."""
        for x, y in self.panels[dataset].series[score].points:
            if int(x) == k:
                return y
        raise KeyError(f"no point for k={k}")

    def render(self) -> str:
        return "\n\n".join(panel.render() for panel in self.panels.values())


def run_figure9(
    *,
    scale: float = 1.0,
    seed: int = 42,
    datasets: tuple[str, ...] = FIGURE9_DATASETS,
    ks: tuple[int, ...] = FIGURE9_KS,
    scores: tuple[str, ...] = SUM_FAMILY,
    k_local: int = 80,
    mode: str | None = None,
) -> Figure9Result:
    """Regenerate Figure 9 (recall vs number of recommended links k)."""
    runner = ExperimentRunner(scale=scale, seed=seed, mode=mode)
    result = Figure9Result()
    for dataset in datasets:
        report = FigureReport(
            title=f"Figure 9 — recall vs k on {dataset} (klocal={k_local})",
            x_label="k",
            y_label="recall",
        )
        result.panels[dataset] = report
        for score in scores:
            for k in ks:
                config = SnapleConfig.paper_default(
                    score, k=k, k_local=k_local, seed=seed
                )
                run = runner.run_snaple_local(dataset, config)
                report.add_point(score, k, run.recall)
    return result
