"""Exception hierarchy shared across the SNAPLE reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class GraphError(ReproError):
    """Raised when a graph is malformed or an operation on it is invalid."""


class VertexNotFoundError(GraphError):
    """Raised when a vertex id is outside the graph's vertex range."""

    def __init__(self, vertex: int, num_vertices: int) -> None:
        super().__init__(
            f"vertex {vertex} is out of range for a graph with "
            f"{num_vertices} vertices"
        )
        self.vertex = vertex
        self.num_vertices = num_vertices


class GraphBuildError(GraphError):
    """Raised when a :class:`~repro.graph.builder.GraphBuilder` is misused."""


class GraphIOError(GraphError):
    """Raised when an edge-list file cannot be parsed or written."""


class PartitionError(ReproError):
    """Raised when a graph partitioning request is invalid."""


class EngineError(ReproError):
    """Raised when a GAS engine is misconfigured or a program misbehaves."""


class ResourceExhaustedError(EngineError):
    """Raised when the simulated cluster runs out of memory.

    This mirrors the behaviour reported in the paper where the BASELINE
    implementation "fails due to resource exhaustion" on the largest graphs.
    """

    def __init__(self, message: str, *, machine: int | None = None,
                 requested_bytes: int | None = None,
                 capacity_bytes: int | None = None) -> None:
        super().__init__(message)
        self.machine = machine
        self.requested_bytes = requested_bytes
        self.capacity_bytes = capacity_bytes


class WorkerCrashError(EngineError):
    """Raised when a shared-nothing parallel worker dies or hangs mid-superstep.

    The parallel executor raises this only after exhausting its restart
    budget (see ``max_restarts``); within the budget it respawns the worker
    pool and resumes from the last checkpoint transparently.
    """


class CheckpointError(ReproError):
    """Raised when a checkpoint cannot be written, read, or verified.

    Covers missing or truncated manifests, shard checksum mismatches, and
    resuming against an incompatible graph/configuration/worker count.  A
    corrupted checkpoint always surfaces as this error — never as silently
    wrong predictions.
    """


class ConfigurationError(ReproError):
    """Raised when a predictor or experiment configuration is invalid."""


class ServingError(ReproError):
    """Raised when the online predictor service is misused.

    Covers submitting work to a service that was never started (or already
    stopped) and job submissions that time out against the bounded queue.
    Invalid service *configurations* raise :class:`ConfigurationError`
    up front instead, consistent with the rest of the repo.
    """


class EvaluationError(ReproError):
    """Raised when an evaluation protocol cannot be applied to a graph."""
