"""The :class:`ExecutionBackend` protocol every engine adapter implements.

The SNAPLE paper's central claim is that one scoring framework runs unchanged
across graph-processing engines (GAS, BSP/Pregel, single-machine competitors).
This module is that claim as an API: a backend *prepares* once for a (graph,
config) pair and then *runs* over a vertex set, returning the normalized
:class:`~repro.runtime.report.RunReport`.  Backends advertise what they can do
through :class:`BackendCapabilities` so generic drivers (the experiment
runner, streamed prediction, the CLI) can adapt without isinstance checks.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar

from repro.errors import EngineError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.graph.digraph import DiGraph
    from repro.runtime.report import RunReport
    from repro.snaple.config import SnapleConfig

__all__ = ["BackendCapabilities", "ExecutionBackend"]


@dataclass(frozen=True)
class BackendCapabilities:
    """What an execution backend supports and how it accounts its work.

    Attributes
    ----------
    name:
        Registry key of the backend.
    description:
        One-line human description (shown by ``snaple list``).
    simulated:
        ``True`` when runs report simulated cluster seconds / traffic /
        memory in addition to wall-clock time.
    distributed:
        ``True`` when the backend honours a multi-machine ``ClusterConfig``.
    vertex_subset:
        ``True`` when ``run(vertices=...)`` restricts the computation itself
        (rather than merely filtering the output afterwards).
    incremental:
        ``True`` when ``prepare`` caches all graph-global state so repeated
        ``run`` calls on vertex batches cost only the per-vertex work.  The
        streamed ``predict_iter`` path batches only on such backends.
    parallel:
        ``True`` when the backend accepts a ``workers=N`` option and executes
        graph partitions in separate worker processes through
        :mod:`repro.runtime.parallel`.  Backends without this capability
        reject ``workers`` with a
        :class:`~repro.errors.ConfigurationError`.
    options:
        Keyword options accepted when constructing the backend through
        :func:`~repro.runtime.registry.get_backend`.
    """

    name: str
    description: str = ""
    simulated: bool = False
    distributed: bool = False
    vertex_subset: bool = True
    incremental: bool = False
    parallel: bool = False
    options: tuple[str, ...] = ()


class ExecutionBackend(abc.ABC):
    """A pluggable execution engine for link-prediction programs.

    Lifecycle: construct (with backend-specific options), then
    :meth:`prepare` with a graph and a scoring configuration, then call
    :meth:`run` one or more times.  :meth:`predict` bundles the two for the
    common single-shot case.
    """

    #: Registry key; subclasses must override.
    name: ClassVar[str] = ""

    def __init__(self) -> None:
        self._graph: DiGraph | None = None
        self._config: SnapleConfig | None = None

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def capabilities(self) -> BackendCapabilities:
        """Static description of what this backend supports."""

    def prepare(self, graph: DiGraph,
                config: SnapleConfig | None = None) -> "ExecutionBackend":
        """Bind the backend to ``graph`` and ``config``; returns ``self``.

        Subclasses extend this to precompute whatever global state their
        :attr:`BackendCapabilities.incremental` flag promises.
        """
        from repro.snaple.config import SnapleConfig

        self._graph = graph
        self._config = config if config is not None else SnapleConfig()
        return self

    @abc.abstractmethod
    def run(self, vertices: list[int] | None = None) -> RunReport:
        """Execute the prediction program over ``vertices`` (all by default)."""

    def predict(self, graph: DiGraph, config: SnapleConfig | None = None,
                *, vertices: list[int] | None = None) -> RunReport:
        """Convenience: :meth:`prepare` then :meth:`run` in one call."""
        return self.prepare(graph, config).run(vertices=vertices)

    # ------------------------------------------------------------------
    def _require_prepared(self) -> tuple[DiGraph, SnapleConfig]:
        """The bound (graph, config) pair; raises if :meth:`prepare` was skipped."""
        if self._graph is None or self._config is None:
            raise EngineError(
                f"backend {self.name!r} must be prepared with a graph before "
                "run() is called"
            )
        return self._graph, self._config

    def _target_vertices(self, vertices: list[int] | None) -> list[int]:
        graph, _ = self._require_prepared()
        if vertices is None:
            return list(graph.vertices())
        return list(vertices)
