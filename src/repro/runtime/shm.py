"""Shared-memory state plane: zero-copy segments for parallel execution.

The shared-nothing executor (:mod:`repro.runtime.parallel`) historically
*pickled* everything that crossed a process boundary: the graph once per
worker at pool spawn, and per superstep the
:class:`~repro.runtime.state.StateSlice` column extracts and
:class:`~repro.runtime.state.MessageBlock` arrays each partition reads.  On
the 10k-vertex benchmark graph that serialization tax is most of the sync
overhead — workers=4 used to run at ~x0.5 *versus serial*.

This module removes the tax with POSIX shared memory
(:mod:`multiprocessing.shared_memory`):

* the CSR adjacency of the graph and the columnar
  :class:`~repro.runtime.state.StateStore` columns live in shared segments
  created by the coordinator and mapped once by every worker;
* what crosses the process boundary per superstep is only *descriptors* —
  ``(segment, dtype, length)`` handles plus the boundary row-index arrays —
  instead of the column payloads themselves;
* workers gather the rows they need directly out of the mapped columns,
  producing exactly the same :class:`~repro.runtime.state.StateSlice`
  arrays the pickled path would have shipped, so results stay bit-identical.

Lifecycle and crash safety
--------------------------
Every segment is created by the coordinator through a context-managed
:class:`ShmRegistry`; nothing here lets a worker create segments, so a
SIGKILLed worker can never leak one.  The registry unlinks all outstanding
segments on ``close()`` (run in a ``finally``), and every segment name
carries the :data:`SEGMENT_PREFIX` so tests — and the CI leak check — can
assert ``/dev/shm`` is clean after success, crash and resume alike.  If the
coordinator itself dies, Python's ``resource_tracker`` unlinks whatever the
registry could not, as a last-resort backstop.

Escape hatches
--------------
``SNAPLE_NO_SHM=1`` disables shared memory (the executor falls back to
pickled slices), and ``SNAPLE_DICT_STATE=1`` — the legacy dict-state path —
implies it.  Platforms without POSIX/System-V shared memory are detected at
runtime and fall back silently.  Results are bit-identical on every path.

Checkpoint interplay: :meth:`~repro.runtime.state.StateStore.snapshot`
always *copies* rows out of the columns (its extracts are index gathers),
so checkpoints never persist live shared-memory views — a snapshot outlives
the segments it was taken from, which the resume tests assert.
"""

from __future__ import annotations

import os
import secrets
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Any

import numpy as np

from repro.errors import EngineError
from repro.runtime.state import (
    MessageBlock,
    StateSlice,
    StateStore,
    _RaggedColumn,
    _ScalarColumn,
    env_flag,
    gather_slices,
)

__all__ = [
    "SEGMENT_PREFIX",
    "ArrayHandle",
    "AttachmentCache",
    "BlockHandle",
    "ShmColumnAllocator",
    "ShmGraphHandle",
    "ShmMessageRange",
    "ShmRegistry",
    "ShmSliceHandle",
    "attach_graph",
    "attachment_cache",
    "list_segments",
    "message_block_handle",
    "share_graph",
    "shm_available",
    "shm_disabled",
    "state_slice_handle",
]

#: Every segment name starts with this, so leak checks can find strays.
#: Kept short: macOS limits POSIX shm names to ~31 characters.
SEGMENT_PREFIX = "snpl"

#: Segment payload offsets are aligned to this many bytes.
_ALIGN = 64

_available: bool | None = None


def shm_available() -> bool:
    """Whether this platform can create shared-memory segments at all."""
    global _available
    if _available is None:
        try:
            probe = shared_memory.SharedMemory(create=True, size=1)
            probe.close()
            probe.unlink()
            _available = True
        except (OSError, ValueError, ImportError):
            _available = False
    return _available


def shm_disabled() -> bool:
    """Whether ``SNAPLE_NO_SHM=1`` forces the pickled-slice transport.

    The escape hatch mirrors ``SNAPLE_DICT_STATE`` (which also implies it):
    results are bit-identical either way, only the transport differs.
    """
    return env_flag("SNAPLE_NO_SHM")


def list_segments() -> list[str]:
    """Names of live segments created by this module (Linux: ``/dev/shm``).

    Used by the leak tests and the CI leak check; returns ``[]`` on
    platforms without a browsable segment directory.
    """
    try:
        return sorted(
            name for name in os.listdir("/dev/shm")
            if name.startswith(SEGMENT_PREFIX)
        )
    except OSError:
        return []


# ----------------------------------------------------------------------
# Registry: coordinator-owned segment lifecycle
# ----------------------------------------------------------------------
class ShmRegistry:
    """Creates and owns shared-memory segments; unlinks them all on close.

    Only the coordinator holds a registry.  Workers merely *attach* (see
    :class:`AttachmentCache`), so worker crashes cannot leak segments — the
    registry's ``finally``-driven :meth:`close` is the single cleanup point,
    with Python's ``resource_tracker`` as the crash backstop.
    """

    def __init__(self) -> None:
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._sequence = 0
        self._token = secrets.token_hex(3)
        self._created_bytes = 0

    # -- naming --------------------------------------------------------
    def _next_name(self) -> str:
        self._sequence += 1
        return (
            f"{SEGMENT_PREFIX}{os.getpid() & 0xFFFFFF:06x}"
            f"{self._token}{self._sequence:04x}"
        )

    # -- lifecycle -----------------------------------------------------
    def create(self, nbytes: int) -> shared_memory.SharedMemory:
        """A new segment of at least ``nbytes`` (1-byte floor for empties)."""
        size = max(1, int(nbytes))
        while True:
            name = self._next_name()
            try:
                segment = shared_memory.SharedMemory(
                    name=name, create=True, size=size
                )
                break
            except FileExistsError:  # pragma: no cover - name collision
                continue
        self._segments[segment.name] = segment
        self._created_bytes += size
        return segment

    def release(self, name: str) -> None:
        """Unlink one segment now (e.g. a superstep's message block)."""
        segment = self._segments.pop(name, None)
        if segment is None:
            return
        try:
            segment.close()
        except BufferError:
            # A NumPy view of the segment is still alive (e.g. the
            # coordinator replaced a column buffer while a caller holds the
            # old one).  Disarm the segment object — its __del__ would
            # re-raise — and let the mapping be reclaimed when the last
            # view is garbage-collected.  Unlinking below removes the name
            # right away regardless.
            segment._buf = None
            segment._mmap = None
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def close(self) -> None:
        """Unlink every outstanding segment.  Idempotent."""
        for name in list(self._segments):
            self.release(name)

    def __enter__(self) -> "ShmRegistry":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- accounting ----------------------------------------------------
    @property
    def num_segments(self) -> int:
        return len(self._segments)

    @property
    def created_bytes(self) -> int:
        """Total bytes ever allocated through this registry."""
        return self._created_bytes

    def live_bytes(self) -> int:
        return sum(segment.size for segment in self._segments.values())

    # -- array packing -------------------------------------------------
    def share_array(self, array: np.ndarray) -> "ArrayHandle":
        """Copy one array into its own segment and return its handle."""
        array = np.ascontiguousarray(array)
        segment = self.create(array.nbytes)
        view = np.frombuffer(segment.buf, dtype=array.dtype,
                             count=array.size)
        view[:] = array.reshape(-1)
        return ArrayHandle(segment.name, array.dtype.str, int(array.size))

    def share_arrays(self, arrays: dict[str, np.ndarray]) -> "BlockHandle":
        """Pack several arrays into one segment (aligned), return the block."""
        specs: dict[str, ArrayHandle] = {}
        offset = 0
        items = {
            key: np.ascontiguousarray(array) for key, array in arrays.items()
        }
        for key, array in items.items():
            offset = _align(offset)
            specs[key] = ArrayHandle(
                "", array.dtype.str, int(array.size), offset
            )
            offset += array.nbytes
        segment = self.create(offset)
        for key, array in items.items():
            spec = specs[key]
            view = np.frombuffer(segment.buf, dtype=array.dtype,
                                 count=array.size, offset=spec.offset)
            view[:] = array.reshape(-1)
            specs[key] = ArrayHandle(segment.name, spec.dtype, spec.length,
                                     spec.offset)
        return BlockHandle(segment.name, specs)


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


# ----------------------------------------------------------------------
# Picklable descriptors (what actually crosses the process boundary)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ArrayHandle:
    """One flat array inside a segment: ``(segment, dtype, length, offset)``."""

    segment: str
    dtype: str
    length: int
    offset: int = 0

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize) * self.length


@dataclass(frozen=True)
class BlockHandle:
    """Several named arrays packed into one segment."""

    segment: str
    specs: dict[str, ArrayHandle]


# ----------------------------------------------------------------------
# Worker-side attachment cache
# ----------------------------------------------------------------------
class AttachmentCache:
    """Maps segment names to live attachments in a worker process.

    Attachments are made lazily per handle and cached; the graph segment is
    *pinned* for the process lifetime, everything else is dropped by
    :meth:`retain` once a newer superstep references different segments
    (state columns migrate to new segments when they grow).  Dropping closes
    the mapping; unlinking stays with the coordinator's registry.
    """

    def __init__(self) -> None:
        self._attachments: dict[str, shared_memory.SharedMemory] = {}
        self._pinned: set[str] = set()

    def _get(self, name: str) -> shared_memory.SharedMemory:
        segment = self._attachments.get(name)
        if segment is None:
            try:
                if os.path.isabs(name):
                    # An absolute path is an out-of-core spool file (see
                    # repro.runtime.ooc), not a POSIX segment name; map the
                    # file read-only through the same cache.
                    from repro.runtime.ooc import attach_file_segment

                    segment = attach_file_segment(name)
                else:
                    segment = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                raise EngineError(
                    f"shared-memory segment {name!r} has vanished; the "
                    "coordinator released it while a worker still needed it"
                ) from None
            self._attachments[name] = segment
        return segment

    def pin(self, name: str) -> None:
        """Keep ``name`` attached for the process lifetime."""
        self._pinned.add(name)

    def view(self, handle: ArrayHandle) -> np.ndarray:
        """A read-only NumPy view over the handle's array (zero-copy)."""
        segment = self._get(handle.segment)
        view = np.frombuffer(segment.buf, dtype=np.dtype(handle.dtype),
                             count=handle.length, offset=handle.offset)
        view.flags.writeable = False
        return view

    def retain(self, names: set[str]) -> None:
        """Drop attachments outside ``names`` (pinned ones always stay)."""
        keep = names | self._pinned
        for name in list(self._attachments):
            if name in keep:
                continue
            segment = self._attachments.pop(name)
            try:
                segment.close()
            except BufferError:  # pragma: no cover - view still exported
                self._attachments[name] = segment


_worker_cache: AttachmentCache | None = None


def attachment_cache() -> AttachmentCache:
    """The process-wide attachment cache (one per worker process)."""
    global _worker_cache
    if _worker_cache is None:
        _worker_cache = AttachmentCache()
    return _worker_cache


# ----------------------------------------------------------------------
# Column allocator: StateStore columns backed by shared segments
# ----------------------------------------------------------------------
class ShmColumnAllocator:
    """A :class:`~repro.runtime.state.StateStore` allocator over a registry.

    Every column buffer becomes one shared segment; buffers that grow get a
    fresh segment and the old one is unlinked immediately (workers drop
    stale attachments at their next task).  :meth:`describe` turns a live
    buffer into the picklable :class:`ArrayHandle` the coordinator ships
    instead of the data.
    """

    def __init__(self, registry: ShmRegistry) -> None:
        self._registry = registry
        self._by_array: dict[int, str] = {}

    def empty(self, length: int, dtype: Any) -> np.ndarray:
        dtype = np.dtype(dtype)
        segment = self._registry.create(int(length) * dtype.itemsize)
        array = np.frombuffer(segment.buf, dtype=dtype, count=int(length))
        self._by_array[id(array)] = segment.name
        return array

    def free(self, array: np.ndarray) -> None:
        name = self._by_array.pop(id(array), None)
        if name is not None:
            self._registry.release(name)

    def describe(self, array: np.ndarray,
                 length: int | None = None) -> ArrayHandle:
        name = self._by_array.get(id(array))
        if name is None:
            raise EngineError(
                "array is not backed by this allocator's shared memory"
            )
        return ArrayHandle(
            name, array.dtype.str,
            int(array.size if length is None else length),
        )


# ----------------------------------------------------------------------
# Graph sharing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShmGraphHandle:
    """The whole CSR graph as one mapped segment, shipped by descriptor."""

    num_vertices: int
    num_edges: int
    block: BlockHandle


_GRAPH_ARRAYS = (
    "out_indptr", "out_indices", "out_order",
    "in_indptr", "in_indices", "in_order",
    "edge_src", "edge_dst",
)


def share_graph(registry: ShmRegistry, graph: Any) -> ShmGraphHandle:
    """Pack a :class:`~repro.graph.digraph.DiGraph`'s arrays into a segment."""
    arrays = {
        "out_indptr": graph._out_indptr,
        "out_indices": graph._out_indices,
        "out_order": graph._out_order,
        "in_indptr": graph._in_indptr,
        "in_indices": graph._in_indices,
        "in_order": graph._in_order,
        "edge_src": graph._edge_src,
        "edge_dst": graph._edge_dst,
    }
    return ShmGraphHandle(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        block=registry.share_arrays(arrays),
    )


def attach_graph(handle: ShmGraphHandle, cache: AttachmentCache) -> Any:
    """Reconstruct the graph as read-only views over the mapped segment.

    The segment is pinned in the cache: graph views live for the worker
    process's whole lifetime.  Paging hints are applied per region —
    ``WILLNEED`` on the indptr tables every row lookup walks, ``RANDOM`` on
    the index rows the kernel probes sparsely — mirroring the memmap loader.
    """
    from repro.graph.digraph import DiGraph
    from repro.graph.storage import GRAPH_REGION_ADVICE, madvise_region

    cache.pin(handle.block.segment)
    views = {
        key: cache.view(handle.block.specs[key]) for key in _GRAPH_ARRAYS
    }
    mapping = getattr(cache._get(handle.block.segment), "_mmap", None)
    for key, region_advices in GRAPH_REGION_ADVICE.items():
        spec = handle.block.specs[key]
        madvise_region(mapping, spec.offset, spec.nbytes, *region_advices)
    return DiGraph.from_csr_arrays(
        handle.num_vertices,
        out_indptr=views["out_indptr"],
        out_indices=views["out_indices"],
        out_order=views["out_order"],
        in_indptr=views["in_indptr"],
        in_indices=views["in_indices"],
        in_order=views["in_order"],
        edge_src=views["edge_src"],
        edge_dst=views["edge_dst"],
    )


# ----------------------------------------------------------------------
# State-slice handles (per-superstep boundary exchange)
# ----------------------------------------------------------------------
@dataclass
class ShmSliceHandle:
    """A :class:`StateSlice` by reference: column handles + row indices.

    The only array payload shipped is ``rows`` — the owned+boundary vertex
    ids the task reads.  ``materialize`` gathers those rows out of the
    mapped columns in the worker, producing arrays element-identical to
    what :meth:`StateStore.extract` would have pickled.
    """

    num_vertices: int
    rows: np.ndarray
    ragged: dict[str, tuple[ArrayHandle, ArrayHandle, ArrayHandle,
                            ArrayHandle | None]] = field(default_factory=dict)
    scalars: dict[str, tuple[ArrayHandle, ArrayHandle]] = field(
        default_factory=dict)

    def segments(self) -> set[str]:
        names: set[str] = set()
        for starts, lengths, ids, vals in self.ragged.values():
            names.update((starts.segment, lengths.segment, ids.segment))
            if vals is not None:
                names.add(vals.segment)
        for values, present in self.scalars.values():
            names.update((values.segment, present.segment))
        return names

    def transport_nbytes(self) -> int:
        """Actual bytes this handle ships across the process boundary."""
        return int(self.rows.nbytes)

    def materialize(self, cache: AttachmentCache) -> StateSlice:
        rows = self.rows
        out = StateSlice(num_vertices=self.num_vertices, rows=rows)
        for name, (h_starts, h_lengths, h_ids, h_vals) in self.ragged.items():
            starts = cache.view(h_starts)[rows]
            counts = cache.view(h_lengths)[rows]
            present = starts >= 0
            positions = gather_slices(np.maximum(starts, 0), counts)
            ids = cache.view(h_ids)[positions]
            vals = (cache.view(h_vals)[positions]
                    if h_vals is not None else None)
            out.ragged[name] = (counts, ids, vals, present)
        for name, (h_values, h_present) in self.scalars.items():
            out.scalars[name] = (cache.view(h_values)[rows],
                                 cache.view(h_present)[rows])
        return out


def state_slice_handle(store: StateStore, rows: np.ndarray,
                       fields: tuple[str, ...]) -> ShmSliceHandle:
    """Descriptors for ``fields`` × ``rows`` of an shm-backed store.

    The equivalent of :meth:`StateStore.extract`, except no column data is
    copied or pickled — only the (sorted) row-index array ships.
    """
    allocator = store.allocator
    if not isinstance(allocator, ShmColumnAllocator):
        raise EngineError(
            "state_slice_handle needs a StateStore allocated in shared "
            "memory (ShmColumnAllocator)"
        )
    rows = np.sort(np.asarray(rows, dtype=np.int64))
    handle = ShmSliceHandle(num_vertices=store.num_vertices, rows=rows)
    for name in fields:
        column = store._columns[name]
        if isinstance(column, _ScalarColumn):
            handle.scalars[name] = (
                allocator.describe(column.values),
                allocator.describe(column.present),
            )
        elif isinstance(column, _RaggedColumn):
            handle.ragged[name] = (
                allocator.describe(column.starts),
                allocator.describe(column.lengths),
                allocator.describe(column._ids, length=column._used),
                (allocator.describe(column._vals, length=column._used)
                 if column._vals is not None else None),
            )
        else:  # pragma: no cover - schema guarantees the two kinds
            raise EngineError(f"unknown column type for field {name!r}")
    return handle


# ----------------------------------------------------------------------
# Message-block handles (BSP inbox routing)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShmMessageRange:
    """One partition's contiguous message range of a packed block.

    The coordinator packs the (receiver-owner-ordered) inbox block into a
    single per-superstep segment; each partition receives only its
    ``[start, end)`` range over that block — two integers instead of the
    message payload.
    """

    kinds: tuple[str, ...]
    block: BlockHandle
    start: int
    end: int

    def segments(self) -> set[str]:
        return {self.block.segment}

    def transport_nbytes(self) -> int:
        return 16

    def materialize(self, cache: AttachmentCache) -> MessageBlock:
        specs = self.block.specs
        a, b = self.start, self.end
        ids_indptr = cache.view(specs["ids_indptr"])
        vals_indptr = cache.view(specs["vals_indptr"])
        ids_lo, ids_hi = int(ids_indptr[a]), int(ids_indptr[b])
        vals_lo, vals_hi = int(vals_indptr[a]), int(vals_indptr[b])
        return MessageBlock(
            kinds=self.kinds,
            sender=cache.view(specs["sender"])[a:b].copy(),
            receiver=cache.view(specs["receiver"])[a:b].copy(),
            kind=cache.view(specs["kind"])[a:b].copy(),
            ids_indptr=ids_indptr[a:b + 1] - ids_lo,
            ids=cache.view(specs["ids"])[ids_lo:ids_hi].copy(),
            vals_indptr=vals_indptr[a:b + 1] - vals_lo,
            vals=cache.view(specs["vals"])[vals_lo:vals_hi].copy(),
        )


def message_block_handle(registry: ShmRegistry,
                         block: MessageBlock) -> BlockHandle:
    """Pack a message block's arrays into one per-superstep segment."""
    return registry.share_arrays({
        "sender": block.sender,
        "receiver": block.receiver,
        "kind": block.kind,
        "ids_indptr": block.ids_indptr,
        "ids": block.ids,
        "vals_indptr": block.vals_indptr,
        "vals": block.vals,
    })
