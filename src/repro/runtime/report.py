"""Unified run accounting shared by every execution backend.

Each engine in this reproduction historically returned its own result type
(:class:`~repro.snaple.predictor.PredictionResult`,
:class:`~repro.snaple.bsp_program.BspPredictionResult`,
:class:`~repro.baselines.random_walk_ppr.RandomWalkPredictionResult`, ...)
with subtly different accounting fields.  :class:`RunReport` normalizes them:
every backend reports predictions, candidate scores, wall-clock time, and —
when the backend simulates a cluster — simulated seconds, network traffic,
peak memory, and the number of (super)steps, all under the same names.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any

__all__ = ["RunReport", "VertexPrediction"]


@dataclass(frozen=True)
class VertexPrediction:
    """Per-vertex slice of a run, yielded by streamed prediction."""

    vertex: int
    predicted: list[int]
    scores: dict[int, float]

    @property
    def top(self) -> int | None:
        """Best-scored prediction (``None`` when the vertex has none)."""
        return self.predicted[0] if self.predicted else None


@dataclass
class RunReport:
    """Predictions plus normalized accounting for one backend run.

    ``simulated_seconds``, ``network_bytes``, ``peak_memory_bytes`` and
    ``supersteps`` are ``None`` for backends that do not simulate a cluster
    (e.g. ``local``); ``extra`` carries backend-specific counters (such as
    the random-walk backends' ``walk_steps``, the state plane's
    ``state_columnar`` / ``state_plane_peak_bytes``, and — on checkpointed
    parallel runs — ``checkpoints_written`` / ``checkpoint_bytes`` /
    ``checkpoint_seconds``, ``worker_restarts`` and
    ``resumed_from_superstep``, and — on the online ``serving`` backend —
    ``requests_served``, ``edges_ingested``, ``dirty_vertices_rescored``,
    ``cache_hits`` / ``cache_misses``, ``pair_cache_hits`` /
    ``pair_cache_misses``, ``compactions`` and ``delta_edges``) and
    ``native`` keeps the backend's own
    result object for callers that need engine internals.

    ``scores`` is a mapping from vertex to its candidate score map.  Most
    backends return a plain dict; the vectorized ``local`` mode returns a
    read-only :class:`~repro.snaple.kernel.LazyScores` view that
    materializes each per-vertex dict on access (equality and iteration
    behave like the dict it replaces; call ``dict(report.scores)`` to force
    everything, or use :meth:`to_dict` for JSON).

    Partition accounting: ``workers`` is the worker-process count of a
    shared-nothing parallel run (``None`` for serial runs),
    ``per_partition_seconds`` holds each partition's compute time (one entry
    for a serial run), ``sync_overhead_seconds`` is the coordination time not
    spent inside the slowest partition (``None`` when no synchronization
    happened), and ``partition_reports`` carries one
    :class:`~repro.runtime.parallel.PartitionReport` per partition.  Whenever
    ``partition_reports`` is populated, the report's totals (prediction and
    predicted-edge counts, ``per_partition_seconds``) must equal the sums of
    the per-partition entries — the parity test suite asserts this.
    """

    backend: str
    predictions: dict[int, list[int]]
    scores: Mapping[int, dict[int, float]]
    wall_clock_seconds: float = 0.0
    simulated_seconds: float | None = None
    network_bytes: int | None = None
    peak_memory_bytes: int | None = None
    supersteps: int | None = None
    workers: int | None = None
    per_partition_seconds: list[float] = field(default_factory=list)
    sync_overhead_seconds: float | None = None
    partition_reports: list[Any] = field(default_factory=list, repr=False)
    extra: dict[str, float] = field(default_factory=dict)
    native: Any = field(default=None, repr=False)

    @property
    def time_seconds(self) -> float:
        """Simulated cluster time when available, wall clock otherwise."""
        if self.simulated_seconds is not None:
            return self.simulated_seconds
        return self.wall_clock_seconds

    def predicted_edges(self) -> set[tuple[int, int]]:
        """All predicted edges as ``(source, predicted target)`` pairs."""
        return {
            (u, z) for u, targets in self.predictions.items() for z in targets
        }

    def top_prediction(self, vertex: int) -> int | None:
        """Best-scored prediction for ``vertex`` (``None`` when empty)."""
        targets = self.predictions.get(vertex, [])
        return targets[0] if targets else None

    def vertex_predictions(self, vertices: list[int] | None = None):
        """Iterate :class:`VertexPrediction` slices of this report."""
        targets = self.predictions.keys() if vertices is None else vertices
        for u in targets:
            yield VertexPrediction(
                vertex=u,
                predicted=list(self.predictions.get(u, [])),
                scores=dict(self.scores.get(u, {})),
            )

    def to_dict(self, *, include_scores: bool = False) -> dict[str, Any]:
        """JSON-serializable view of the report (``native`` is omitted)."""
        from dataclasses import asdict, is_dataclass

        payload: dict[str, Any] = {
            "backend": self.backend,
            "num_vertices": len(self.predictions),
            "num_predicted_edges": sum(
                len(targets) for targets in self.predictions.values()
            ),
            "wall_clock_seconds": self.wall_clock_seconds,
            "simulated_seconds": self.simulated_seconds,
            "network_bytes": self.network_bytes,
            "peak_memory_bytes": self.peak_memory_bytes,
            "supersteps": self.supersteps,
            "workers": self.workers,
            "per_partition_seconds": list(self.per_partition_seconds),
            "sync_overhead_seconds": self.sync_overhead_seconds,
            "extra": dict(self.extra),
            "predictions": {
                int(u): [int(z) for z in targets]
                for u, targets in self.predictions.items()
            },
        }
        if self.partition_reports:
            payload["partitions"] = [
                asdict(report) if is_dataclass(report) else report
                for report in self.partition_reports
            ]
        if include_scores:
            payload["scores"] = {
                int(u): {int(z): float(s) for z, s in by_candidate.items()}
                for u, by_candidate in self.scores.items()
            }
        return payload
