"""Backend adapters for the three SNAPLE execution paths (local, GAS, BSP).

The local backend owns the single-process implementation of Algorithm 2 —
a vectorized CSR kernel by default (:mod:`repro.snaple.kernel`), with the
scalar reference implementation kept behind ``mode="reference"``; the GAS
and BSP backends drive the simulated distributed engines.  All three
produce identical predictions for the same configuration and seed whenever no
probabilistic truncation is involved — the cross-backend parity tests rely on
this.
"""

from __future__ import annotations

import math
import random
import time

from repro.errors import ConfigurationError
from repro.gas.cluster import ClusterConfig, TYPE_II, cluster_of
from repro.gas.engine import GasEngine
from repro.gas.partition import Partitioner
from repro.graph.digraph import DiGraph
from repro.graph.sampling import truncate_neighborhood
from repro.runtime.backend import BackendCapabilities, ExecutionBackend
from repro.runtime.parallel import (
    ParallelRunOutcome,
    PartitionReport,
    run_parallel_bsp,
    run_parallel_gas,
    validate_workers,
)
from repro.runtime.report import RunReport
from repro.runtime.state import dict_state_forced
from repro.snaple.bsp_program import SnapleBspPredictor
from repro.snaple.config import SnapleConfig
from repro.snaple.kernel import VectorizedKernel, kernel_supports
from repro.snaple.program import build_snaple_steps, top_k_predictions

__all__ = ["LocalBackend", "GasBackend", "BspBackend", "LOCAL_MODES"]


def _reject_cluster_with_workers(cluster: ClusterConfig | None,
                                 workers: int | None) -> None:
    """A simulated cluster and real worker processes cannot be combined."""
    if cluster is not None and workers is not None:
        raise ConfigurationError(
            "the 'workers' option runs partitions in real worker processes "
            "and cannot be combined with a simulated 'cluster'; drop one of "
            "the two options"
        )


def _fault_tolerance_options(workers: int | None, **options) -> dict:
    """Validate and collect the checkpoint/recovery options of a backend.

    Checkpointing and crash recovery only exist on the shared-nothing
    parallel path — the simulated serial engines have no worker processes
    to lose — so every option here requires ``workers=N``.
    """
    given = {name: value for name, value in options.items()
             if value is not None}
    if given and workers is None:
        raise ConfigurationError(
            f"the {', '.join(sorted(given))} option(s) require workers=N: "
            "checkpointing and crash recovery apply to the shared-nothing "
            "parallel executor, not the simulated serial engines"
        )
    return given


def _reject_pool_without_workers(pool, workers: int | None) -> None:
    """Worker-pool reuse only exists on the shared-nothing parallel path."""
    if pool is not None and workers is None:
        raise ConfigurationError(
            "the 'pool' option reuses a shared-nothing worker pool and "
            "requires workers=N"
        )


def _serial_partition_report(predictions: dict[int, list[int]],
                             gather_invocations: int, apply_invocations: int,
                             wall: float) -> PartitionReport:
    """A serial run is one partition covering the whole graph.

    Emitting the same per-partition record for serial runs keeps the
    accounting invariant (report totals == sum over partitions) uniform
    across serial and parallel execution.
    """
    return PartitionReport(
        partition=0,
        num_vertices=len(predictions),
        num_predictions=len(predictions),
        num_predicted_edges=sum(len(v) for v in predictions.values()),
        gather_invocations=gather_invocations,
        apply_invocations=apply_invocations,
        compute_seconds=wall,
        shipped_bytes=0,
    )


def _parallel_report(backend_name: str,
                     outcome: ParallelRunOutcome) -> RunReport:
    """Normalize a parallel outcome into the shared report type.

    Simulated-cluster fields stay ``None``: a parallel run measures real
    wall-clock parallelism, not the analytical cluster model.  The totals
    are derived from the per-partition reports so they cannot drift.

    ``extra`` records the state plane: whether the run used columnar state
    (``state_columnar``), the peak live column payload and the coordinator
    routing time, with per-superstep breakdowns.  Fault tolerance rides
    along: ``worker_restarts`` (always), ``checkpoints_written`` /
    ``checkpoint_bytes`` / ``checkpoint_seconds`` when snapshots were
    persisted, and ``resumed_from_superstep`` when the run resumed (``0``
    marks a from-scratch replay after a crash without a usable checkpoint).
    """
    extra: dict[str, float] = {
        "state_columnar": 1.0 if outcome.state_plane_bytes else 0.0,
        "worker_restarts": float(outcome.worker_restarts),
    }
    if outcome.checkpoints_written:
        extra["checkpoints_written"] = float(outcome.checkpoints_written)
        extra["checkpoint_bytes"] = float(outcome.checkpoint_bytes)
        extra["checkpoint_seconds"] = float(outcome.checkpoint_seconds)
    if outcome.resumed_from is not None:
        extra["resumed_from_superstep"] = float(outcome.resumed_from)
    if outcome.state_plane_bytes:
        extra["state_plane_peak_bytes"] = float(max(outcome.state_plane_bytes))
        extra["routing_seconds"] = float(sum(outcome.routing_seconds))
        for index, num_bytes in enumerate(outcome.state_plane_bytes):
            extra[f"state_plane_bytes_step{index}"] = float(num_bytes)
        for index, seconds in enumerate(outcome.routing_seconds):
            extra[f"routing_seconds_step{index}"] = float(seconds)
        extra["shm_enabled"] = float(outcome.shm_enabled)
        extra["ooc_enabled"] = float(outcome.ooc_enabled)
        extra["transport_bytes"] = float(sum(outcome.transport_bytes))
        for index, num_bytes in enumerate(outcome.transport_bytes):
            extra[f"transport_bytes_step{index}"] = float(num_bytes)
    return RunReport(
        extra=extra,
        backend=backend_name,
        predictions=outcome.predictions,
        scores=outcome.scores,
        wall_clock_seconds=outcome.wall_clock_seconds,
        network_bytes=outcome.exchanged_bytes,
        supersteps=outcome.supersteps,
        workers=outcome.workers,
        per_partition_seconds=outcome.per_partition_seconds,
        sync_overhead_seconds=outcome.sync_overhead_seconds,
        partition_reports=list(outcome.partitions),
        native=outcome,
    )


def _engine_state_extras(engine) -> dict[str, float]:
    """State-plane accounting of a serial simulated-engine run.

    ``state_columnar`` records which state path ran; on the columnar path
    the peak live column payload (also tracked by the engine's
    :class:`~repro.gas.memory.MemoryTracker`) and per-step sizes ride along.
    """
    store = engine.state_store
    extra: dict[str, float] = {
        "state_columnar": 1.0 if store is not None else 0.0,
    }
    if store is not None:
        extra["state_plane_peak_bytes"] = float(
            engine.memory.state_plane_peak_bytes
        )
    return extra


#: Execution modes of the ``local`` backend.
LOCAL_MODES = ("vectorized", "reference")


class LocalBackend(ExecutionBackend):
    """Single-process SNAPLE scoring without engine book-keeping.

    ``prepare`` runs the graph-global phases once (truncated neighborhoods
    and ``klocal`` selection for every vertex); ``run`` only performs the
    per-vertex path combination, so streaming over vertex batches costs no
    repeated global work.

    ``mode`` selects the implementation: ``"vectorized"`` (the default) runs
    the CSR-native array kernel of :mod:`repro.snaple.kernel`;
    ``"reference"`` keeps the scalar dict/loop implementation for
    cross-checking and for configurations outside the vectorized design
    space (to which the vectorized mode silently falls back — the report's
    ``extra["kernel_vectorized"]`` flag records which path actually ran).
    Both modes produce identical predictions and scores for the same
    configuration and seed.
    """

    name = "local"

    def __init__(self, mode: str = "vectorized") -> None:
        super().__init__()
        if mode not in LOCAL_MODES:
            raise ConfigurationError(
                f"unknown local mode {mode!r}; available modes: "
                f"{', '.join(LOCAL_MODES)}"
            )
        self._mode = mode
        self._kernel = None
        self._gamma: list[list[int]] = []
        self._sims: list[dict[int, float]] = []
        self._prepare_seconds = 0.0
        self._prepare_billed = False

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name=self.name,
            description=("single-process Algorithm 2 "
                         "(vectorized CSR kernel, reference mode available)"),
            simulated=False,
            distributed=False,
            vertex_subset=True,
            incremental=True,
            options=("mode",),
        )

    def prepare(self, graph: DiGraph,
                config: SnapleConfig | None = None) -> "LocalBackend":
        super().prepare(graph, config)
        config = self._config
        assert config is not None
        start = time.perf_counter()
        self._kernel = None
        if self._mode == "vectorized" and kernel_supports(config):
            self._kernel = VectorizedKernel(graph, config)
        else:
            self._prepare_reference(graph, config)
        self._prepare_seconds = time.perf_counter() - start
        self._prepare_billed = False
        return self

    def _prepare_reference(self, graph: DiGraph, config: SnapleConfig) -> None:
        rng_truncate = random.Random(config.seed)
        rng_sample = random.Random(config.seed + 1)

        # Phase 1: truncated neighborhoods for every vertex (targets need the
        # neighborhoods of their neighbors too, so compute them globally).
        gamma: list[list[int]] = []
        for u in graph.vertices():
            neighbors = graph.out_neighbors(u).tolist()
            if (
                not math.isinf(config.truncation_threshold)
                and len(neighbors) > config.truncation_threshold
            ):
                neighbors = truncate_neighborhood(
                    neighbors,
                    config.truncation_threshold,
                    rng=rng_truncate,
                    exact=config.exact_truncation,
                )
            gamma.append(sorted(neighbors))

        # Phase 2: raw similarities and klocal selection for every vertex.
        # The selection ranks neighbors by the set similarity of equation
        # (11) (Jaccard by default), while the kept values are the score's
        # own raw similarity, which phase 3 combines along paths.  The
        # neighborhood sets are built once per vertex, not once per edge.
        similarity = config.score.similarity
        selection_similarity = config.score.selection_similarity
        gamma_sets = [frozenset(neighborhood) for neighborhood in gamma]
        sampler = config.sampler
        sims: list[dict[int, float]] = []
        for u in graph.vertices():
            neighbors = graph.out_neighbors(u).tolist()
            set_u = gamma_sets[u]
            selection = {
                v: selection_similarity(set_u, gamma_sets[v]) for v in neighbors
            }
            kept = sampler.select(selection, config.k_local, rng=rng_sample)
            if selection_similarity is similarity:
                sims.append(kept)
            else:
                sims.append({v: similarity(set_u, gamma_sets[v]) for v in kept})

        self._gamma = gamma
        self._sims = sims

    def run(self, vertices: list[int] | None = None) -> RunReport:
        """Score ``vertices`` and report timings.

        The preparation time is billed into ``wall_clock_seconds`` only on
        the first run after a ``prepare`` (so a single-shot ``predict``
        matches the historical accounting while summing per-batch reports
        from ``predict_iter`` never double-counts it); every report carries
        it separately as ``extra["prepare_seconds"]``.
        """
        _, config = self._require_prepared()
        targets = self._target_vertices(vertices)

        start = time.perf_counter()
        if self._kernel is not None:
            predictions, scores = self._kernel.run(targets)
        else:
            predictions, scores = self._run_reference(targets, config)
        wall = time.perf_counter() - start
        if not self._prepare_billed:
            wall += self._prepare_seconds
            self._prepare_billed = True
        return RunReport(
            backend=self.name,
            predictions=predictions,
            scores=scores,
            wall_clock_seconds=wall,
            extra={
                "prepare_seconds": self._prepare_seconds,
                "kernel_vectorized": 1.0 if self._kernel is not None else 0.0,
            },
        )

    def _run_reference(self, targets: list[int], config: SnapleConfig):
        """Phase 3 of the scalar reference: dict-based path accumulation."""
        gamma, sims = self._gamma, self._sims
        combinator = config.score.combinator
        aggregator = config.score.aggregator
        predictions: dict[int, list[int]] = {}
        scores: dict[int, dict[int, float]] = {}
        for u in targets:
            gamma_u = set(gamma[u])
            accumulated: dict[int, tuple[float, int]] = {}
            for v, sim_uv in sims[u].items():
                for z, sim_vz in sims[v].items():
                    if z == u or z in gamma_u:
                        continue
                    path_similarity = combinator.combine(sim_uv, sim_vz)
                    if z in accumulated:
                        value, count = accumulated[z]
                        accumulated[z] = (aggregator.pre(value, path_similarity),
                                          count + 1)
                    else:
                        accumulated[z] = (path_similarity, 1)
            final = {
                z: aggregator.post(value, count)
                for z, (value, count) in accumulated.items()
            }
            scores[u] = final
            predictions[u] = top_k_predictions(final, config.k)
        return predictions, scores


class GasBackend(ExecutionBackend):
    """Algorithm 2 on the simulated gather-apply-scatter engine.

    With ``workers=N`` the simulated cluster is replaced by real
    shared-nothing parallelism: the vertex-cut's masters are mapped onto
    ``N`` worker processes through :mod:`repro.runtime.parallel`, and the
    report carries per-partition accounting instead of simulated cluster
    time.  Predictions are identical for every worker count.
    """

    name = "gas"

    def __init__(self, cluster: ClusterConfig | None = None,
                 partitioner: Partitioner | None = None,
                 enforce_memory: bool = True,
                 workers: int | None = None,
                 checkpoint_dir=None, checkpoint_every: int | None = None,
                 resume_from=None, worker_timeout: float | None = None,
                 max_restarts: int | None = None, fault=None,
                 pool=None) -> None:
        super().__init__()
        _reject_cluster_with_workers(cluster, workers)
        self._cluster = cluster
        self._partitioner = partitioner
        self._enforce_memory = enforce_memory
        self._workers = None if workers is None else validate_workers(workers)
        _reject_pool_without_workers(pool, self._workers)
        self._pool = pool
        self._fault_tolerance = _fault_tolerance_options(
            self._workers,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            resume_from=resume_from,
            worker_timeout=worker_timeout,
            max_restarts=max_restarts,
            fault=fault,
        )

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name=self.name,
            description="simulated distributed GAS engine (vertex-cut)",
            simulated=True,
            distributed=True,
            vertex_subset=True,
            incremental=False,
            parallel=True,
            options=("cluster", "partitioner", "enforce_memory", "workers",
                     "checkpoint_dir", "checkpoint_every", "resume_from",
                     "worker_timeout", "max_restarts", "fault", "pool"),
        )

    def run(self, vertices: list[int] | None = None) -> RunReport:
        graph, config = self._require_prepared()
        targets = self._target_vertices(vertices)
        if self._workers is not None:
            outcome = run_parallel_gas(
                graph,
                config,
                workers=self._workers,
                partitioner=self._partitioner,
                vertices=vertices,
                pool=self._pool,
                **self._fault_tolerance,
            )
            return _parallel_report(self.name, outcome)
        cluster = self._cluster if self._cluster is not None else cluster_of(TYPE_II, 1)
        engine = GasEngine(
            graph=graph,
            cluster=cluster,
            partitioner=self._partitioner,
            enforce_memory=self._enforce_memory,
            seed=config.seed,
        )
        steps = build_snaple_steps(config, graph)
        recommendation_step = steps[-1]
        start = time.perf_counter()
        run = engine.run(steps, vertices=vertices)
        wall = time.perf_counter() - start
        predictions: dict[int, list[int]] = {}
        scores: dict[int, dict[int, float]] = {}
        for u in targets:
            data = run.data_of(u)
            predictions[u] = list(data.get("predicted", []))
            scores[u] = dict(recommendation_step.collected_scores.get(u, {}))
        metrics = run.metrics
        return RunReport(
            backend=self.name,
            predictions=predictions,
            scores=scores,
            wall_clock_seconds=wall,
            simulated_seconds=run.simulated_seconds,
            network_bytes=metrics.total_network_bytes,
            peak_memory_bytes=metrics.peak_machine_memory_bytes,
            supersteps=len(metrics.steps),
            per_partition_seconds=[wall],
            partition_reports=[_serial_partition_report(
                predictions, metrics.total_gather_invocations,
                sum(step.apply_invocations for step in metrics.steps), wall,
            )],
            extra=_engine_state_extras(engine),
            native=run,
        )


class BspBackend(ExecutionBackend):
    """Algorithm 2 ported to the simulated BSP/Pregel engine.

    The BSP program always computes every vertex (message passing needs all
    neighborhoods in flight); a ``vertices`` restriction only filters the
    returned predictions.

    With ``workers=N`` the four supersteps execute shared-nothing across
    ``N`` worker processes (edge-cut vertex ownership), with messages routed
    between partitions at every superstep barrier.
    """

    name = "bsp"

    def __init__(self, cluster: ClusterConfig | None = None,
                 partitioner=None, enforce_memory: bool = True,
                 workers: int | None = None,
                 checkpoint_dir=None, checkpoint_every: int | None = None,
                 resume_from=None, worker_timeout: float | None = None,
                 max_restarts: int | None = None, fault=None,
                 pool=None) -> None:
        super().__init__()
        _reject_cluster_with_workers(cluster, workers)
        self._cluster = cluster
        self._partitioner = partitioner
        self._enforce_memory = enforce_memory
        self._workers = None if workers is None else validate_workers(workers)
        _reject_pool_without_workers(pool, self._workers)
        self._pool = pool
        self._fault_tolerance = _fault_tolerance_options(
            self._workers,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            resume_from=resume_from,
            worker_timeout=worker_timeout,
            max_restarts=max_restarts,
            fault=fault,
        )

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name=self.name,
            description="simulated BSP/Pregel engine (edge-cut, explicit messages)",
            simulated=True,
            distributed=True,
            vertex_subset=False,
            incremental=False,
            parallel=True,
            options=("cluster", "partitioner", "enforce_memory", "workers",
                     "checkpoint_dir", "checkpoint_every", "resume_from",
                     "worker_timeout", "max_restarts", "fault", "pool"),
        )

    def run(self, vertices: list[int] | None = None) -> RunReport:
        graph, config = self._require_prepared()
        targets = self._target_vertices(vertices)
        if self._workers is not None:
            # The BSP program needs every vertex in flight; compute all,
            # restrict only the reported targets, as the serial path does.
            outcome = run_parallel_bsp(
                graph,
                config,
                workers=self._workers,
                partitioner=self._partitioner,
                vertices=None,
                targets=targets,
                pool=self._pool,
                **self._fault_tolerance,
            )
            return _parallel_report(self.name, outcome)
        predictor = SnapleBspPredictor(config)
        result = predictor.predict(
            graph,
            cluster=self._cluster,
            partitioner=self._partitioner,
            enforce_memory=self._enforce_memory,
        )
        metrics = result.bsp_result.metrics
        predictions = {u: result.predictions.get(u, []) for u in targets}
        # The SNAPLE BSP program always declares a state schema, so the
        # serial engine runs columnar unless the escape hatch forces dicts.
        extra: dict[str, float] = {
            "state_columnar": 0.0 if dict_state_forced() else 1.0,
        }
        if metrics.peak_state_plane_bytes:
            extra["state_plane_peak_bytes"] = float(
                metrics.peak_state_plane_bytes
            )
        return RunReport(
            backend=self.name,
            predictions=predictions,
            scores={u: result.scores.get(u, {}) for u in targets},
            wall_clock_seconds=result.wall_clock_seconds,
            simulated_seconds=result.simulated_seconds,
            network_bytes=metrics.total_network_bytes,
            peak_memory_bytes=metrics.peak_machine_memory_bytes,
            supersteps=result.bsp_result.supersteps,
            per_partition_seconds=[result.wall_clock_seconds],
            partition_reports=[_serial_partition_report(
                predictions, metrics.total_gather_invocations,
                sum(step.apply_invocations for step in metrics.steps),
                result.wall_clock_seconds,
            )],
            extra=extra,
            native=result.bsp_result,
        )
