"""String-keyed registry of execution backends.

Backends register a *factory* (usually the adapter class itself) under a
short name; callers obtain configured instances through :func:`get_backend`.
Option validation happens here, up front: passing an option the factory does
not accept raises a :class:`~repro.errors.ConfigurationError` naming the
backend and the offending option instead of a bare ``TypeError`` from deep
inside the engine.

The built-in backends (``local``, ``gas``, ``bsp``, ``cassovary``,
``random_walk_ppr``, ``topological``) are registered lazily on the first
registry lookup; third-party engines can plug in with::

    from repro.runtime import ExecutionBackend, register_backend

    class ShardedBackend(ExecutionBackend):
        name = "sharded"
        ...

    register_backend("sharded", ShardedBackend)
"""

from __future__ import annotations

import inspect
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.backend import BackendCapabilities, ExecutionBackend

__all__ = [
    "available_backends",
    "backend_capabilities",
    "get_backend",
    "register_backend",
    "unregister_backend",
]

#: Backend factories by name.  A factory is any callable whose keyword
#: parameters are the backend's options and which returns an
#: :class:`~repro.runtime.backend.ExecutionBackend`.
_REGISTRY: dict[str, Callable[..., "ExecutionBackend"]] = {}

_builtins_registered = False


def _ensure_builtin_backends() -> None:
    """Register the built-in backends on first use.

    Registration is deferred (rather than done at package import) so that
    importing :mod:`repro.runtime` stays cheap and free of import cycles:
    the engine adapters transitively import the engine packages, which in
    turn import the foundation modules of this package
    (:mod:`repro.runtime.state`, :mod:`repro.runtime.partition`).
    """
    global _builtins_registered
    if _builtins_registered:
        return
    _builtins_registered = True
    from repro.runtime.baselines import (
        CassovaryBackend,
        RandomWalkPprBackend,
        TopologicalBackend,
    )
    from repro.runtime.engines import BspBackend, GasBackend, LocalBackend

    for backend_cls in (LocalBackend, GasBackend, BspBackend,
                        CassovaryBackend, RandomWalkPprBackend,
                        TopologicalBackend):
        _REGISTRY.setdefault(backend_cls.name, backend_cls)


def register_backend(name: str, factory: Callable[..., "ExecutionBackend"],
                     *, replace: bool = False) -> None:
    """Register ``factory`` under ``name``.

    Re-registering an existing name raises unless ``replace=True`` (so a
    typo cannot silently shadow a built-in engine).
    """
    _ensure_builtin_backends()
    if not name:
        raise ConfigurationError("backend name must be a non-empty string")
    if name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"execution backend {name!r} is already registered; pass "
            "replace=True to override it"
        )
    _REGISTRY[name] = factory


def unregister_backend(name: str) -> None:
    """Remove ``name`` from the registry (no-op names raise)."""
    _ensure_builtin_backends()
    if name not in _REGISTRY:
        raise ConfigurationError(f"execution backend {name!r} is not registered")
    del _REGISTRY[name]


def available_backends() -> tuple[str, ...]:
    """Sorted names of every registered backend."""
    _ensure_builtin_backends()
    return tuple(sorted(_REGISTRY))


def _supported_options(factory: Callable[..., "ExecutionBackend"]) -> set[str] | None:
    """Keyword options ``factory`` accepts (``None`` means "anything")."""
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # builtins without introspectable signatures
        return None
    options: set[str] = set()
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return None
        if parameter.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                              inspect.Parameter.KEYWORD_ONLY):
            options.add(parameter.name)
    return options


def get_backend(name: str, **options) -> "ExecutionBackend":
    """A configured backend instance for ``name``.

    Raises
    ------
    ConfigurationError
        When ``name`` is not registered, or when an option is not accepted
        by the backend (the message names both).
    """
    _ensure_builtin_backends()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_backends()) or "none registered"
        raise ConfigurationError(
            f"unknown execution backend {name!r}; available backends: {known}"
        ) from None
    supported = _supported_options(factory)
    if supported is not None:
        for option in options:
            if option not in supported:
                accepted = ", ".join(sorted(supported)) or "no options"
                raise ConfigurationError(
                    f"backend {name!r} does not support option {option!r}; "
                    f"it accepts: {accepted}"
                )
    return factory(**options)


def backend_capabilities(name: str) -> "BackendCapabilities":
    """The :class:`BackendCapabilities` of backend ``name`` (no options)."""
    return get_backend(name).capabilities()
