"""String-keyed plugin registry for every component family.

Originally this module registered only *execution backends*; it now hosts a
per-family namespace for every pluggable component of the reproduction:

==============  ======================================================
``engine``      execution backends (``local``, ``gas``, ``bsp``, ...)
``similarity``  raw vertex similarities (:mod:`repro.snaple.similarity`)
``aggregator``  path aggregators ``⊕`` (:mod:`repro.snaple.aggregators`)
``combinator``  path combinators ``⊗`` (:mod:`repro.snaple.combinators`)
``sampler``     ``klocal`` neighbor-selection policies
``dataset``     dataset analogs and graph sources (generators)
``workload``    suite-runner workload drivers (:mod:`repro.suites.runner`)
==============  ======================================================

Each family pairs a table of *built-in* factories (seeded lazily the first
time the family is touched, so importing :mod:`repro.runtime` stays cheap
and cycle-free) with user registrations layered on top.  Built-ins are
tracked separately from user registrations: unregistering a name removes
the user's factory and *reverts* to the built-in one, which is re-seeded
lazily on the next lookup — a built-in can be shadowed but never lost.

Option validation happens here, up front: passing an option the factory
does not accept raises a :class:`~repro.errors.ConfigurationError` naming
the component and the offending option instead of a bare ``TypeError``
from deep inside the component.

Name normalization is unified at the registry level: ``_`` and ``-`` are
interchangeable in lookups (``random-walk-ppr`` resolves the built-in
``random_walk_ppr`` backend) while case stays significant (the paper's
``Sum`` / ``Mean`` / ``Geom`` aggregators are distinct from hypothetical
lowercase names).  Every name lookup in the repository — CLI experiment
names, suite files, component getters — routes through
:func:`match_component_name`.

Constructed components are fingerprint-cached per family (name + options,
JSON-serialized with sorted keys, as in the elspeth middleware-lifecycle
design): same fingerprint → same instance.  Stateful families (engines,
workloads — a backend binds a graph in ``prepare``) opt out and construct
a fresh instance per :func:`get_component` call.

Third-party components plug in with the decorator or the functional API::

    from repro.runtime.registry import component, register_component

    @component("engine", "sharded")
    class ShardedBackend(ExecutionBackend):
        name = "sharded"
        ...

    register_component("similarity", "lhn", value=leicht_holme_newman)
"""

from __future__ import annotations

import inspect
import json
from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.backend import BackendCapabilities, ExecutionBackend

__all__ = [
    "available_backends",
    "available_components",
    "backend_capabilities",
    "component",
    "component_families",
    "component_options",
    "get_backend",
    "get_component",
    "match_component_name",
    "normalize_component_name",
    "register_backend",
    "register_component",
    "register_family",
    "unregister_backend",
    "unregister_component",
]


def normalize_component_name(name: str) -> str:
    """The normalization fold applied to every registry name lookup.

    ``_`` and ``-`` are interchangeable; case is preserved (the paper's
    aggregator names are case-sensitive).  Canonical registered names are
    kept as-is — the fold is only used for matching.
    """
    return name.strip().replace("-", "_")


def match_component_name(name: str, candidates: Iterable[str]) -> str | None:
    """The canonical candidate ``name`` refers to, or ``None``.

    Exact matches win; otherwise the normalization fold decides (so
    ``ablation_engines`` matches the canonical ``ablation-engines``).
    This is the single normalizer behind every component *and* experiment
    name lookup.
    """
    pool = list(candidates)
    if name in pool:
        return name
    fold = normalize_component_name(name)
    for candidate in pool:
        if normalize_component_name(candidate) == fold:
            return candidate
    return None


class _Value:
    """Marker wrapper for constant (non-constructed) components."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value


@dataclass
class _Family:
    """One component namespace: built-ins + user registrations + cache."""

    name: str
    label: str
    loader: Callable[[], None] | None = None
    cacheable: bool = True
    loaded: bool = False
    loading: bool = False
    builtins: dict[str, Any] = field(default_factory=dict)
    active: dict[str, Any] = field(default_factory=dict)
    cache: dict[tuple[str, str], Any] = field(default_factory=dict)

    @property
    def plural(self) -> str:
        return f"{self.label}s"

    def ensure_loaded(self) -> None:
        if self.loaded or self.loading:
            return
        self.loading = True
        try:
            if self.loader is not None:
                self.loader()
        finally:
            self.loading = False
        self.loaded = True

    def names(self) -> tuple[str, ...]:
        """Every resolvable name: active registrations plus built-ins.

        Built-ins always appear — an unregistered built-in is re-seeded on
        its next lookup, so it is still available.
        """
        self.ensure_loaded()
        return tuple(sorted(set(self.active) | set(self.builtins)))

    def resolve(self, name: str) -> tuple[str, Any]:
        """The ``(canonical name, factory)`` pair for ``name``.

        Falls back to the built-in table when the name is absent from the
        active registrations (the lazy re-seed that makes
        ``unregister`` of a built-in revertible rather than permanent).
        """
        self.ensure_loaded()
        canonical = match_component_name(name, self.active)
        if canonical is not None:
            return canonical, self.active[canonical]
        canonical = match_component_name(name, self.builtins)
        if canonical is not None:
            factory = self.builtins[canonical]
            self.active[canonical] = factory
            return canonical, factory
        known = ", ".join(self.names()) or "none registered"
        raise ConfigurationError(
            f"unknown {self.label} {name!r}; available {self.plural}: {known}"
        )


#: All component families by name.  ``register_family`` adds more.
_FAMILIES: dict[str, _Family] = {}


def _family(name: str) -> _Family:
    try:
        return _FAMILIES[name]
    except KeyError:
        known = ", ".join(sorted(_FAMILIES))
        raise ConfigurationError(
            f"unknown component family {name!r}; available families: {known}"
        ) from None


def register_family(name: str, *, label: str | None = None,
                    cacheable: bool = True,
                    loader: Callable[[], None] | None = None) -> None:
    """Declare a new component namespace (idempotent for identical specs)."""
    if not name:
        raise ConfigurationError("family name must be a non-empty string")
    if name in _FAMILIES:
        raise ConfigurationError(f"component family {name!r} already exists")
    _FAMILIES[name] = _Family(name=name, label=label or name,
                              cacheable=cacheable, loader=loader)


def component_families() -> tuple[str, ...]:
    """Sorted names of every component family."""
    return tuple(sorted(_FAMILIES))


_UNSET = object()


def register_component(family: str, name: str,
                       factory: Callable[..., Any] | None = None, *,
                       value: Any = _UNSET, replace: bool = False,
                       builtin: bool = False) -> None:
    """Register a component under ``family``/``name``.

    Exactly one of ``factory`` (a callable whose keyword parameters are the
    component's options) or ``value`` (a constant component handed out
    as-is, e.g. a similarity function) must be given.  Re-registering an
    existing name raises unless ``replace=True`` (so a typo cannot silently
    shadow a built-in).  ``builtin`` is reserved for the lazy family
    loaders: such registrations land in the built-in table and survive
    :func:`unregister_component`.
    """
    spec = _family(family)
    if not builtin:
        spec.ensure_loaded()
    if not name:
        raise ConfigurationError(
            f"{spec.label} name must be a non-empty string"
        )
    if (factory is None) == (value is _UNSET):
        raise ConfigurationError(
            "register_component needs exactly one of factory= or value="
        )
    entry = _Value(value) if factory is None else factory
    existing = match_component_name(name, spec.names())
    if existing is not None and not replace:
        if existing == name and name in spec.active:
            raise ConfigurationError(
                f"{spec.label} {name!r} is already registered; pass "
                "replace=True to override it"
            )
        if existing != name:
            raise ConfigurationError(
                f"{spec.label} name {name!r} normalizes to the same key as "
                f"the registered {existing!r}; pick a distinct name or pass "
                "replace=True"
            )
    canonical = existing if existing is not None else name
    spec.active[canonical] = entry
    if builtin:
        spec.builtins[canonical] = entry
    _evict_fingerprints(spec, canonical)


def unregister_component(family: str, name: str) -> None:
    """Remove ``name`` from ``family``'s active registrations.

    Built-in names revert to their built-in factory: the registry re-seeds
    them lazily on the next lookup, so unregistering a built-in removes an
    override rather than losing the component forever.
    """
    spec = _family(family)
    spec.ensure_loaded()
    canonical = match_component_name(name, spec.active)
    if canonical is None:
        if match_component_name(name, spec.builtins) is not None:
            # Already at the built-in baseline; nothing to remove.
            return
        raise ConfigurationError(
            f"{spec.label} {name!r} is not registered"
        )
    del spec.active[canonical]
    _evict_fingerprints(spec, canonical)


def available_components(family: str) -> tuple[str, ...]:
    """Sorted canonical names of every component in ``family``."""
    return _family(family).names()


def _evict_fingerprints(spec: _Family, canonical: str) -> None:
    for key in [k for k in spec.cache if k[0] == canonical]:
        del spec.cache[key]


def _supported_options(factory: Callable[..., Any]) -> set[str] | None:
    """Keyword options ``factory`` accepts (``None`` means "anything")."""
    if isinstance(factory, _Value):
        return set()
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # builtins without introspectable signatures
        return None
    options: set[str] = set()
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return None
        if parameter.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                              inspect.Parameter.KEYWORD_ONLY):
            options.add(parameter.name)
    return options


def _required_options(factory: Callable[..., Any]) -> set[str]:
    """Options without defaults — construction fails unless they are given."""
    if isinstance(factory, _Value):
        return set()
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):
        return set()
    return {
        parameter.name
        for parameter in signature.parameters.values()
        if parameter.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                              inspect.Parameter.KEYWORD_ONLY)
        and parameter.default is inspect.Parameter.empty
    }


def _validate_options(spec: _Family, name: str, factory: Callable[..., Any],
                      options: Mapping[str, Any]) -> None:
    supported = _supported_options(factory)
    if supported is None:
        return
    for option in options:
        if option not in supported:
            accepted = ", ".join(sorted(supported)) or "no options"
            raise ConfigurationError(
                f"{spec.label} {name!r} does not support option "
                f"{option!r}; it accepts: {accepted}"
            )


def _fingerprint(options: Mapping[str, Any]) -> str:
    """Stable options fingerprint (sorted-key JSON; ``repr`` as fallback)."""
    return json.dumps(options, sort_keys=True, default=repr)


def component_options(family: str, name: str) -> tuple[str, ...] | None:
    """Sorted option names ``family``/``name`` accepts (``None``: anything)."""
    spec = _family(family)
    _, factory = spec.resolve(name)
    supported = _supported_options(factory)
    if supported is None:
        return None
    return tuple(sorted(supported))


def get_component(family: str, name: str, **options) -> Any:
    """A configured component instance for ``family``/``name``.

    Options are validated against the factory signature up front.  For
    cacheable families the constructed instance is fingerprint-cached:
    repeated calls with the same (name, options) return the same object.

    Raises
    ------
    ConfigurationError
        When the family or name is unknown, or an option is not accepted
        by the factory (the message names both).
    """
    spec = _family(family)
    canonical, factory = spec.resolve(name)
    _validate_options(spec, canonical, factory, options)
    if isinstance(factory, _Value):
        return factory.value
    if spec.cacheable:
        key = (canonical, _fingerprint(options))
        if key not in spec.cache:
            spec.cache[key] = factory(**options)
        return spec.cache[key]
    return factory(**options)


def component(family: str, name: str | None = None, *, value: bool = False,
              replace: bool = False, builtin: bool = False):
    """Decorator form of :func:`register_component`.

    ``name`` defaults to the object's ``name`` attribute (the convention
    every component class in this repository follows) and falls back to
    ``__name__``.  ``value=True`` registers the decorated object itself as
    a constant component instead of treating it as a factory.
    """
    def decorate(obj):
        key = name
        if key is None:
            key = getattr(obj, "name", None)
            if not isinstance(key, str) or not key:
                key = getattr(obj, "__name__", None)
        if not key:
            raise ConfigurationError(
                f"cannot derive a registry name for {obj!r}; pass name="
            )
        if value:
            register_component(family, key, value=obj, replace=replace,
                               builtin=builtin)
        else:
            register_component(family, key, obj, replace=replace,
                               builtin=builtin)
        return obj

    return decorate


# ----------------------------------------------------------------------
# Built-in family loaders.  Each one imports the defining modules lazily
# (keeping :mod:`repro.runtime` import-cheap and cycle-free) and seeds the
# family's built-in table.
# ----------------------------------------------------------------------

def _load_engines() -> None:
    from repro.runtime.baselines import (
        CassovaryBackend,
        RandomWalkPprBackend,
        TopologicalBackend,
    )
    from repro.runtime.engines import BspBackend, GasBackend, LocalBackend

    for backend_cls in (LocalBackend, GasBackend, BspBackend,
                        CassovaryBackend, RandomWalkPprBackend,
                        TopologicalBackend):
        register_component("engine", backend_cls.name, backend_cls,
                           replace=True, builtin=True)


def _load_similarities() -> None:
    from repro.snaple.similarity import SIMILARITIES

    for name, function in SIMILARITIES.items():
        register_component("similarity", name, value=function,
                           replace=True, builtin=True)


def _load_aggregators() -> None:
    from repro.snaple.aggregators import AGGREGATORS

    for name, aggregator in AGGREGATORS.items():
        register_component("aggregator", name, value=aggregator,
                           replace=True, builtin=True)


def _load_combinators() -> None:
    from repro.snaple.combinators import COMBINATORS, linear_combinator

    for name, combinator in COMBINATORS.items():
        if name == "linear":
            register_component("combinator", name, linear_combinator,
                               replace=True, builtin=True)
        else:
            register_component("combinator", name, value=combinator,
                               replace=True, builtin=True)


def _load_samplers() -> None:
    from repro.snaple.sampler import SAMPLERS

    for name, sampler in SAMPLERS.items():
        register_component("sampler", name, value=sampler,
                           replace=True, builtin=True)


def _load_datasets() -> None:
    from repro.graph.datasets import register_builtin_sources

    register_builtin_sources()


def _load_workloads() -> None:
    from repro.suites.runner import register_builtin_workloads

    register_builtin_workloads()


register_family("engine", label="execution backend", cacheable=False,
                loader=_load_engines)
register_family("similarity", loader=_load_similarities)
register_family("aggregator", loader=_load_aggregators)
register_family("combinator", loader=_load_combinators)
register_family("sampler", loader=_load_samplers)
register_family("dataset", label="dataset source", loader=_load_datasets)
register_family("workload", cacheable=False, loader=_load_workloads)


# ----------------------------------------------------------------------
# Execution-backend convenience wrappers (the original registry API).
# ----------------------------------------------------------------------

def register_backend(name: str, factory: Callable[..., "ExecutionBackend"],
                     *, replace: bool = False) -> None:
    """Register an execution-backend ``factory`` under ``name``.

    Re-registering an existing name raises unless ``replace=True`` (so a
    typo cannot silently shadow a built-in engine).
    """
    register_component("engine", name, factory, replace=replace)


def unregister_backend(name: str) -> None:
    """Remove ``name`` from the engine registry.

    Unknown names raise; built-in names revert to the built-in engine
    (re-seeded lazily on the next lookup) instead of disappearing forever.
    """
    unregister_component("engine", name)


def available_backends() -> tuple[str, ...]:
    """Sorted names of every registered execution backend."""
    return available_components("engine")


def get_backend(name: str, **options) -> "ExecutionBackend":
    """A configured backend instance for ``name``.

    Raises
    ------
    ConfigurationError
        When ``name`` is not registered, or when an option is not accepted
        by the backend (the message names both).
    """
    return get_component("engine", name, **options)


def backend_capabilities(name: str) -> "BackendCapabilities":
    """The :class:`BackendCapabilities` of backend ``name``.

    Resolved without a full construction when possible: a factory exposing
    ``capabilities`` as a classmethod/staticmethod is asked directly.
    Otherwise the backend is instantiated with no options — and factories
    with *required* options get a precise :class:`ConfigurationError`
    (instead of the bare ``TypeError`` a blind ``factory()`` would raise)
    telling the caller to construct via :func:`get_backend` and call
    ``.capabilities()`` on the instance.
    """
    spec = _family("engine")
    canonical, factory = spec.resolve(name)
    capabilities = inspect.getattr_static(factory, "capabilities", None)
    if isinstance(capabilities, (classmethod, staticmethod)):
        return getattr(factory, "capabilities")()
    required = _required_options(factory)
    if required:
        missing = ", ".join(sorted(required))
        raise ConfigurationError(
            f"backend {canonical!r} requires options ({missing}) and cannot "
            "be instantiated without them; construct it with "
            "get_backend(name, ...) and call .capabilities() on the "
            "instance, or expose capabilities as a classmethod"
        )
    return factory().capabilities()
