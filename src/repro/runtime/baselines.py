"""Backend adapters for the paper's single-machine competitors.

Three baselines plug into the same registry as the SNAPLE engines:

* ``cassovary`` — the Section 5.9 competitor: random-walk personalized
  PageRank on a Cassovary-like in-memory graph, with its walk steps converted
  to simulated seconds on one type-II machine (the same currency as the GAS
  cost model, so Figure 11 / Table 6 comparisons stay apples-to-apples);
* ``random_walk_ppr`` — the same predictor reported in raw wall-clock time,
  for callers who want the untranslated measurement;
* ``topological`` — the classic Liben-Nowell & Kleinberg 2-hop scores
  (Jaccard, Adamic/Adar, ...), the quality reference of Algorithm 1.

Where an option is not given, the baselines inherit ``k`` and ``seed`` from
the :class:`~repro.snaple.config.SnapleConfig` passed to ``prepare`` so that
a cross-backend sweep keeps one source of truth for those knobs.
"""

from __future__ import annotations

from repro.baselines.random_walk_ppr import RandomWalkConfig, RandomWalkPPRPredictor
from repro.baselines.topological import TopologicalPredictor
from repro.gas.cluster import TYPE_II
from repro.runtime.backend import BackendCapabilities, ExecutionBackend
from repro.runtime.report import RunReport

__all__ = ["CassovaryBackend", "RandomWalkPprBackend", "TopologicalBackend"]


class _WalkBackendBase(ExecutionBackend):
    """Shared machinery of the two random-walk backends."""

    #: Whether walk steps are converted into simulated cluster seconds.
    simulate_time = False

    def __init__(self, num_walks: int = 100, depth: int = 3,
                 k: int | None = None, seed: int | None = None) -> None:
        super().__init__()
        self._num_walks = num_walks
        self._depth = depth
        self._k = k
        self._seed = seed

    def run(self, vertices: list[int] | None = None) -> RunReport:
        graph, config = self._require_prepared()
        targets = self._target_vertices(vertices)
        walk_config = RandomWalkConfig(
            num_walks=self._num_walks,
            depth=self._depth,
            k=self._k if self._k is not None else config.k,
            seed=self._seed if self._seed is not None else config.seed,
        )
        result = RandomWalkPPRPredictor(walk_config).predict(
            graph, vertices=targets
        )
        simulated = None
        if self.simulate_time:
            throughput = TYPE_II.cores * TYPE_II.core_ops_per_second
            simulated = result.total_walk_steps / throughput
        return RunReport(
            backend=self.name,
            predictions=result.predictions,
            scores={
                u: {z: float(count) for z, count in visits.items()}
                for u, visits in result.visit_counts.items()
            },
            wall_clock_seconds=result.wall_clock_seconds,
            simulated_seconds=simulated,
            extra={"walk_steps": float(result.total_walk_steps)},
            native=result,
        )


class CassovaryBackend(_WalkBackendBase):
    """The paper's Cassovary competitor with simulated-time accounting."""

    name = "cassovary"
    simulate_time = True

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name=self.name,
            description="random-walk PPR on an in-memory graph, simulated-time accounting",
            simulated=True,
            distributed=False,
            vertex_subset=True,
            incremental=False,
            options=("num_walks", "depth", "k", "seed"),
        )


class RandomWalkPprBackend(_WalkBackendBase):
    """Random-walk PPR reported in raw wall-clock time."""

    name = "random_walk_ppr"
    simulate_time = False

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name=self.name,
            description="random-walk personalized PageRank, wall-clock accounting",
            simulated=False,
            distributed=False,
            vertex_subset=True,
            incremental=False,
            options=("num_walks", "depth", "k", "seed"),
        )


class TopologicalBackend(ExecutionBackend):
    """Classic closed-form topological scores over 2-hop candidates."""

    name = "topological"

    def __init__(self, score: str = "jaccard", k: int | None = None) -> None:
        super().__init__()
        self._score = score
        self._k = k

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name=self.name,
            description="closed-form topological scores (Jaccard, Adamic/Adar, ...)",
            simulated=False,
            distributed=False,
            vertex_subset=True,
            incremental=False,
            options=("score", "k"),
        )

    def run(self, vertices: list[int] | None = None) -> RunReport:
        graph, config = self._require_prepared()
        targets = self._target_vertices(vertices)
        predictor = TopologicalPredictor(
            self._score, k=self._k if self._k is not None else config.k
        )
        result = predictor.predict(graph, vertices=targets)
        return RunReport(
            backend=self.name,
            predictions=result.predictions,
            scores=result.scores,
            wall_clock_seconds=result.wall_clock_seconds,
            native=result,
        )
