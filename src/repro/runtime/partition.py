"""Graph partitioning shared by every execution layer.

Both simulated engines and the shared-nothing parallel executor need a
placement of the graph on machines/workers, and the two historical modules
(``repro.gas.partition`` — PowerGraph's *vertex-cut*, assigning edges and
replicating vertices; ``repro.bsp.partition`` — Pregel's *edge-cut*,
assigning vertices with their out-edges) duplicated the strategy interface,
the assignment validation and the balance metrics.  This module is the
single home for all of it; the historical modules remain as thin re-export
shims so existing imports keep working.

Vertex-cut strategies (GAS):

* :class:`RandomVertexCut` — hash each edge to a machine (PowerGraph's
  default random placement);
* :class:`GreedyVertexCut` — the "oblivious" greedy heuristic that places an
  edge on a machine already holding one of its endpoints, reducing the
  replication factor;
* :class:`HdrfVertexCut` — the High-Degree-Replicated-First heuristic, which
  prefers replicating the endpoint with the higher (partial) degree; on
  power-law graphs this concentrates replication on the few hubs and lowers
  the replication factor further, which the partitioning ablation measures.

Edge-cut strategies (BSP):

* :class:`HashVertexPartitioner` — Pregel's default: hash the vertex id;
* :class:`BlockVertexPartitioner` — contiguous ranges of vertex ids, which
  keeps generator-produced communities together and serves as a locality
  ablation against the hash placement.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import PartitionError
from repro.graph.digraph import DiGraph

__all__ = [
    "GraphPartition",
    "Partitioner",
    "RandomVertexCut",
    "GreedyVertexCut",
    "HdrfVertexCut",
    "partition_graph",
    "VertexPartition",
    "VertexPartitioner",
    "HashVertexPartitioner",
    "BlockVertexPartitioner",
    "partition_vertices",
]


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _check_num_machines(num_machines: int) -> None:
    if num_machines <= 0:
        raise PartitionError("num_machines must be positive")


def _validate_assignment(assignment: np.ndarray, expected_size: int,
                         num_machines: int, *, unit: str) -> None:
    """Shape/range validation shared by both placement flavours."""
    if assignment.shape != (expected_size,):
        raise PartitionError(
            "partitioner returned an assignment of the wrong shape"
        )
    if expected_size and (assignment.min() < 0
                          or assignment.max() >= num_machines):
        raise PartitionError(
            f"partitioner assigned {unit} to a non-existent machine"
        )


def _load_imbalance(counts: np.ndarray) -> float:
    """Max/mean ratio of per-machine counts (1.0 is perfectly even)."""
    if counts.size == 0 or counts.mean() == 0:
        return 1.0
    return float(counts.max() / counts.mean())


# ======================================================================
# Vertex-cut placement (GAS / PowerGraph)
# ======================================================================
@dataclass
class GraphPartition:
    """Placement of a graph's edges and vertex replicas on a cluster.

    Attributes
    ----------
    num_machines:
        Number of machines in the simulated cluster.
    edge_machine:
        Array with one entry per edge giving the machine that owns it.
    vertex_master:
        Array with one entry per vertex giving its master machine.
    vertex_replicas:
        For each vertex, the set of machines holding a replica (always
        includes the master).
    """

    num_machines: int
    edge_machine: np.ndarray
    vertex_master: np.ndarray
    vertex_replicas: list[set[int]]

    @property
    def num_vertices(self) -> int:
        return int(self.vertex_master.size)

    @property
    def num_edges(self) -> int:
        return int(self.edge_machine.size)

    def replication_factor(self) -> float:
        """Average number of replicas per vertex (PowerGraph's key metric)."""
        if not self.vertex_replicas:
            return 0.0
        replicated = [len(reps) for reps in self.vertex_replicas if reps]
        if not replicated:
            return 0.0
        return sum(replicated) / len(replicated)

    def edges_per_machine(self) -> np.ndarray:
        """Number of edges placed on each machine."""
        return np.bincount(self.edge_machine, minlength=self.num_machines)

    def load_imbalance(self) -> float:
        """Max/mean ratio of per-machine edge counts (1.0 is perfectly even)."""
        return _load_imbalance(self.edges_per_machine())

    def machines_of(self, vertex: int) -> set[int]:
        """Machines holding a replica of ``vertex``."""
        return self.vertex_replicas[vertex]

    def is_local_edge(self, source: int, target: int, edge_index: int) -> bool:
        """True when both endpoint masters live on the edge's machine."""
        machine = self.edge_machine[edge_index]
        return bool(self.vertex_master[source] == machine
                    and self.vertex_master[target] == machine)


class Partitioner(ABC):
    """Strategy interface for assigning edges to machines."""

    @abstractmethod
    def assign_edges(self, graph: DiGraph, num_machines: int,
                     *, seed: int) -> np.ndarray:
        """Return one machine id per edge."""


class RandomVertexCut(Partitioner):
    """Uniform random edge placement (PowerGraph's default)."""

    def assign_edges(self, graph: DiGraph, num_machines: int,
                     *, seed: int) -> np.ndarray:
        rng = np.random.default_rng(seed)
        return rng.integers(0, num_machines, size=graph.num_edges, dtype=np.int64)


class GreedyVertexCut(Partitioner):
    """Oblivious greedy placement minimizing new replicas.

    For each edge, prefer a machine that already hosts both endpoints, then
    one hosting either endpoint (the least loaded among them), then the least
    loaded machine overall.  A balance guard keeps any machine from holding
    more than ``balance_slack`` times its fair share of edges, which is what
    PowerGraph's oblivious heuristic does to avoid collapsing a connected
    graph onto one machine.
    """

    def __init__(self, balance_slack: float = 1.25) -> None:
        if balance_slack < 1.0:
            raise PartitionError("balance_slack must be >= 1.0")
        self._balance_slack = balance_slack

    def assign_edges(self, graph: DiGraph, num_machines: int,
                     *, seed: int) -> np.ndarray:
        rng = random.Random(seed)
        placed: list[set[int]] = [set() for _ in range(graph.num_vertices)]
        load = [0] * num_machines
        assignment = np.zeros(graph.num_edges, dtype=np.int64)
        src, dst = graph.edge_arrays()
        fair_share = graph.num_edges / num_machines if num_machines else 0.0
        load_cap = self._balance_slack * fair_share + 1.0
        for index in range(graph.num_edges):
            u = int(src[index])
            v = int(dst[index])
            both = placed[u] & placed[v]
            either = placed[u] | placed[v]
            if both:
                candidates = both
            elif either:
                candidates = either
            else:
                candidates = set(range(num_machines))
            # Balance guard: drop candidates that already exceed their share.
            balanced = {m for m in candidates if load[m] < load_cap}
            if not balanced:
                balanced = set(range(num_machines))
            min_load = min(load[m] for m in balanced)
            best = [m for m in balanced if load[m] == min_load]
            machine = rng.choice(best)
            assignment[index] = machine
            placed[u].add(machine)
            placed[v].add(machine)
            load[machine] += 1
        return assignment


class HdrfVertexCut(Partitioner):
    """High-Degree-Replicated-First streaming vertex-cut.

    For every edge the candidate machines are scored with two terms:

    * a *replication* term rewarding machines that already hold one of the
      endpoints, weighted so that the endpoint with the **higher** partial
      degree is the one that gets replicated (hubs are replicated, low-degree
      vertices stay on few machines);
    * a *balance* term (weighted by ``balance_weight``) rewarding the least
      loaded machines.

    On power-law graphs this yields lower replication factors than both the
    random and the oblivious-greedy placements while keeping the edge load
    balanced (the default ``balance_weight`` of 2.0 trades a little
    replication for near-perfect balance); the partitioning ablation
    quantifies the effect on SNAPLE's synchronization traffic.
    """

    def __init__(self, balance_weight: float = 2.0) -> None:
        if balance_weight < 0.0:
            raise PartitionError("balance_weight must be non-negative")
        self._balance_weight = balance_weight

    def assign_edges(self, graph: DiGraph, num_machines: int,
                     *, seed: int) -> np.ndarray:
        rng = random.Random(seed)
        placed: list[set[int]] = [set() for _ in range(graph.num_vertices)]
        partial_degree = [0] * graph.num_vertices
        load = [0] * num_machines
        assignment = np.zeros(graph.num_edges, dtype=np.int64)
        src, dst = graph.edge_arrays()
        epsilon = 1.0
        for index in range(graph.num_edges):
            u = int(src[index])
            v = int(dst[index])
            partial_degree[u] += 1
            partial_degree[v] += 1
            degree_u = partial_degree[u]
            degree_v = partial_degree[v]
            # Normalized degrees decide which endpoint the replication term
            # prefers to replicate (the higher-degree one).
            theta_u = degree_u / (degree_u + degree_v)
            theta_v = 1.0 - theta_u
            max_load = max(load)
            min_load = min(load)
            best_score = -math.inf
            best_machines: list[int] = []
            for machine in range(num_machines):
                replication = 0.0
                if machine in placed[u]:
                    replication += 1.0 + (1.0 - theta_u)
                if machine in placed[v]:
                    replication += 1.0 + (1.0 - theta_v)
                balance = (
                    self._balance_weight
                    * (max_load - load[machine])
                    / (epsilon + max_load - min_load)
                )
                score = replication + balance
                if score > best_score + 1e-12:
                    best_score = score
                    best_machines = [machine]
                elif abs(score - best_score) <= 1e-12:
                    best_machines.append(machine)
            machine = rng.choice(best_machines)
            assignment[index] = machine
            placed[u].add(machine)
            placed[v].add(machine)
            load[machine] += 1
        return assignment


def partition_graph(
    graph: DiGraph,
    num_machines: int,
    *,
    partitioner: Partitioner | None = None,
    seed: int = 0,
) -> GraphPartition:
    """Partition ``graph`` onto ``num_machines`` simulated machines.

    Returns a :class:`GraphPartition` with edge placements, vertex masters
    (the machine holding most of a vertex's edges, ties broken by hash) and
    the replica sets implied by the vertex-cut.
    """
    _check_num_machines(num_machines)
    if partitioner is None:
        partitioner = RandomVertexCut() if num_machines > 1 else _SingleMachine()
    edge_machine = partitioner.assign_edges(graph, num_machines, seed=seed)
    _validate_assignment(edge_machine, graph.num_edges, num_machines,
                         unit="an edge")

    replicas: list[set[int]] = [set() for _ in range(graph.num_vertices)]
    per_vertex_counts: list[dict[int, int]] = [dict() for _ in range(graph.num_vertices)]
    src, dst = graph.edge_arrays()
    for index in range(graph.num_edges):
        machine = int(edge_machine[index])
        for vertex in (int(src[index]), int(dst[index])):
            replicas[vertex].add(machine)
            counts = per_vertex_counts[vertex]
            counts[machine] = counts.get(machine, 0) + 1

    vertex_master = np.zeros(graph.num_vertices, dtype=np.int64)
    for vertex in range(graph.num_vertices):
        counts = per_vertex_counts[vertex]
        if counts:
            # Master = machine with the most incident edges (stable tie-break).
            vertex_master[vertex] = min(
                counts, key=lambda m: (-counts[m], m)
            )
            replicas[vertex].add(int(vertex_master[vertex]))
        else:
            vertex_master[vertex] = vertex % num_machines
            replicas[vertex].add(int(vertex_master[vertex]))
    return GraphPartition(
        num_machines=num_machines,
        edge_machine=edge_machine,
        vertex_master=vertex_master,
        vertex_replicas=replicas,
    )


class _SingleMachine(Partitioner):
    """Trivial partitioner placing everything on machine 0."""

    def assign_edges(self, graph: DiGraph, num_machines: int,
                     *, seed: int) -> np.ndarray:
        return np.zeros(graph.num_edges, dtype=np.int64)


# ======================================================================
# Edge-cut placement (BSP / Pregel)
# ======================================================================
@dataclass
class VertexPartition:
    """Placement of every vertex (and its out-edges) on a machine.

    Attributes
    ----------
    num_machines:
        Number of machines in the simulated cluster.
    vertex_machine:
        Array with one entry per vertex giving the machine that owns it.
    """

    num_machines: int
    vertex_machine: np.ndarray

    @property
    def num_vertices(self) -> int:
        return int(self.vertex_machine.size)

    def machine_of(self, vertex: int) -> int:
        """Machine owning ``vertex``."""
        return int(self.vertex_machine[vertex])

    def vertices_per_machine(self) -> np.ndarray:
        """Number of vertices placed on each machine."""
        return np.bincount(self.vertex_machine, minlength=self.num_machines)

    def edges_per_machine(self, graph: DiGraph) -> np.ndarray:
        """Number of out-edges stored on each machine."""
        counts = np.zeros(self.num_machines, dtype=np.int64)
        degrees = graph.out_degrees()
        for machine in range(self.num_machines):
            counts[machine] = int(degrees[self.vertex_machine == machine].sum())
        return counts

    def load_imbalance(self, graph: DiGraph) -> float:
        """Max/mean ratio of per-machine edge counts (1.0 is perfectly even)."""
        return _load_imbalance(self.edges_per_machine(graph))

    def cut_edges(self, graph: DiGraph) -> int:
        """Number of edges whose endpoints live on different machines.

        Every cut edge turns the message sent along it into network traffic;
        this is the edge-cut analog of the vertex-cut's replication factor.
        """
        src, dst = graph.edge_arrays()
        return int(
            (self.vertex_machine[src] != self.vertex_machine[dst]).sum()
        )

    def cut_fraction(self, graph: DiGraph) -> float:
        """Fraction of edges that cross machines."""
        if graph.num_edges == 0:
            return 0.0
        return self.cut_edges(graph) / graph.num_edges


class VertexPartitioner(ABC):
    """Strategy interface for assigning vertices to machines."""

    @abstractmethod
    def assign_vertices(self, graph: DiGraph, num_machines: int,
                        *, seed: int) -> np.ndarray:
        """Return one machine id per vertex."""


class HashVertexPartitioner(VertexPartitioner):
    """Pregel's default placement: hash the vertex id modulo machine count."""

    def assign_vertices(self, graph: DiGraph, num_machines: int,
                        *, seed: int) -> np.ndarray:
        ids = np.arange(graph.num_vertices, dtype=np.int64)
        # A multiplicative hash decorrelates the placement from any structure
        # in the generator's id assignment while staying deterministic.
        mixed = (ids * np.int64(2654435761) + np.int64(seed)) & np.int64(0x7FFFFFFF)
        return mixed % num_machines


class BlockVertexPartitioner(VertexPartitioner):
    """Contiguous vertex-id ranges, one block per machine."""

    def assign_vertices(self, graph: DiGraph, num_machines: int,
                        *, seed: int) -> np.ndarray:
        if graph.num_vertices == 0:
            return np.zeros(0, dtype=np.int64)
        block = -(-graph.num_vertices // num_machines)  # ceiling division
        ids = np.arange(graph.num_vertices, dtype=np.int64)
        return np.minimum(ids // block, num_machines - 1)


def partition_vertices(
    graph: DiGraph,
    num_machines: int,
    *,
    partitioner: VertexPartitioner | None = None,
    seed: int = 0,
) -> VertexPartition:
    """Place every vertex of ``graph`` on one of ``num_machines`` machines."""
    _check_num_machines(num_machines)
    if partitioner is None:
        partitioner = HashVertexPartitioner()
    assignment = partitioner.assign_vertices(graph, num_machines, seed=seed)
    assignment = np.asarray(assignment, dtype=np.int64)
    _validate_assignment(assignment, graph.num_vertices, num_machines,
                         unit="a vertex")
    return VertexPartition(num_machines=num_machines, vertex_machine=assignment)
