"""Unified execution-backend API for the SNAPLE reproduction.

One scoring framework, many engines: this package defines the
:class:`~repro.runtime.backend.ExecutionBackend` protocol, the string-keyed
backend registry, the normalized :class:`~repro.runtime.report.RunReport`
accounting shared by every engine, and the columnar state plane
(:mod:`repro.runtime.state`) the engines keep their vertex state and route
their messages through.  The first registry lookup registers the six
built-in backends:

========================  =====================================================
``local``                 single-process scoring (vectorized CSR kernel)
``gas``                   simulated distributed GAS engine (vertex-cut)
``bsp``                   simulated BSP/Pregel engine (edge-cut, messages)
``cassovary``             random-walk PPR competitor, simulated-time accounting
``random_walk_ppr``       random-walk PPR, wall-clock accounting
``topological``           classic 2-hop topological scores
========================  =====================================================

Typical use goes through :meth:`repro.snaple.predictor.SnapleLinkPredictor.predict`::

    report = SnapleLinkPredictor(config).predict(graph, backend="gas")

but backends can also be driven directly::

    backend = get_backend("bsp", cluster=cluster_of(TYPE_I, 8))
    report = backend.predict(graph, config)

The heavy submodules (the engine adapters, the baselines, the parallel
executor) are imported lazily via :pep:`562` so that foundation modules such
as :mod:`repro.runtime.state` and :mod:`repro.runtime.partition` can be
imported from anywhere — including from the engine packages themselves —
without creating an import cycle through this package.
"""

from importlib import import_module

from repro.runtime.backend import BackendCapabilities, ExecutionBackend
from repro.runtime.registry import (
    available_backends,
    available_components,
    backend_capabilities,
    component,
    component_families,
    component_options,
    get_backend,
    get_component,
    match_component_name,
    normalize_component_name,
    register_backend,
    register_component,
    register_family,
    unregister_backend,
    unregister_component,
)
from repro.runtime.report import RunReport, VertexPrediction

__all__ = [
    "ExecutionBackend",
    "BackendCapabilities",
    "RunReport",
    "VertexPrediction",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "backend_capabilities",
    "available_backends",
    "register_component",
    "unregister_component",
    "get_component",
    "available_components",
    "component",
    "component_families",
    "component_options",
    "register_family",
    "match_component_name",
    "normalize_component_name",
    "LocalBackend",
    "LOCAL_MODES",
    "GasBackend",
    "BspBackend",
    "CassovaryBackend",
    "RandomWalkPprBackend",
    "TopologicalBackend",
    "ParallelExecutor",
    "ParallelRunOutcome",
    "PartitionReport",
    "run_parallel_gas",
    "run_parallel_bsp",
    "StateStore",
    "StateSchema",
    "StateField",
    "FieldKind",
    "MessageBlock",
    "CheckpointData",
    "FaultSpec",
    "save_checkpoint",
    "load_checkpoint",
    "resolve_checkpoint",
    "latest_valid_checkpoint",
    "list_checkpoint_dirs",
]

#: Lazily-resolved exports (PEP 562): name -> defining submodule.
_LAZY_EXPORTS = {
    "LocalBackend": "repro.runtime.engines",
    "LOCAL_MODES": "repro.runtime.engines",
    "GasBackend": "repro.runtime.engines",
    "BspBackend": "repro.runtime.engines",
    "CassovaryBackend": "repro.runtime.baselines",
    "RandomWalkPprBackend": "repro.runtime.baselines",
    "TopologicalBackend": "repro.runtime.baselines",
    "ParallelExecutor": "repro.runtime.parallel",
    "ParallelRunOutcome": "repro.runtime.parallel",
    "PartitionReport": "repro.runtime.parallel",
    "run_parallel_gas": "repro.runtime.parallel",
    "run_parallel_bsp": "repro.runtime.parallel",
    "StateStore": "repro.runtime.state",
    "StateSchema": "repro.runtime.state",
    "StateField": "repro.runtime.state",
    "FieldKind": "repro.runtime.state",
    "MessageBlock": "repro.runtime.state",
    "CheckpointData": "repro.runtime.checkpoint",
    "FaultSpec": "repro.runtime.checkpoint",
    "save_checkpoint": "repro.runtime.checkpoint",
    "load_checkpoint": "repro.runtime.checkpoint",
    "resolve_checkpoint": "repro.runtime.checkpoint",
    "latest_valid_checkpoint": "repro.runtime.checkpoint",
    "list_checkpoint_dirs": "repro.runtime.checkpoint",
}


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
