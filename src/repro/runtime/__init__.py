"""Unified execution-backend API for the SNAPLE reproduction.

One scoring framework, many engines: this package defines the
:class:`~repro.runtime.backend.ExecutionBackend` protocol, the string-keyed
backend registry, and the normalized :class:`~repro.runtime.report.RunReport`
accounting shared by every engine.  Importing the package registers the six
built-in backends:

========================  =====================================================
``local``                 single-process scoring (vectorized CSR kernel)
``gas``                   simulated distributed GAS engine (vertex-cut)
``bsp``                   simulated BSP/Pregel engine (edge-cut, messages)
``cassovary``             random-walk PPR competitor, simulated-time accounting
``random_walk_ppr``       random-walk PPR, wall-clock accounting
``topological``           classic 2-hop topological scores
========================  =====================================================

Typical use goes through :meth:`repro.snaple.predictor.SnapleLinkPredictor.predict`::

    report = SnapleLinkPredictor(config).predict(graph, backend="gas")

but backends can also be driven directly::

    backend = get_backend("bsp", cluster=cluster_of(TYPE_I, 8))
    report = backend.predict(graph, config)
"""

from repro.runtime.backend import BackendCapabilities, ExecutionBackend
from repro.runtime.baselines import (
    CassovaryBackend,
    RandomWalkPprBackend,
    TopologicalBackend,
)
from repro.runtime.engines import LOCAL_MODES, BspBackend, GasBackend, LocalBackend
from repro.runtime.parallel import (
    ParallelExecutor,
    ParallelRunOutcome,
    PartitionReport,
    run_parallel_bsp,
    run_parallel_gas,
)
from repro.runtime.registry import (
    available_backends,
    backend_capabilities,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.runtime.report import RunReport, VertexPrediction

__all__ = [
    "ExecutionBackend",
    "BackendCapabilities",
    "RunReport",
    "VertexPrediction",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "backend_capabilities",
    "available_backends",
    "LocalBackend",
    "LOCAL_MODES",
    "GasBackend",
    "BspBackend",
    "CassovaryBackend",
    "RandomWalkPprBackend",
    "TopologicalBackend",
    "ParallelExecutor",
    "ParallelRunOutcome",
    "PartitionReport",
    "run_parallel_gas",
    "run_parallel_bsp",
]

#: The built-in backends, registered on package import.
_BUILTIN_BACKENDS = (
    LocalBackend,
    GasBackend,
    BspBackend,
    CassovaryBackend,
    RandomWalkPprBackend,
    TopologicalBackend,
)

for _backend_cls in _BUILTIN_BACKENDS:
    if _backend_cls.name not in available_backends():
        register_backend(_backend_cls.name, _backend_cls)
del _backend_cls
