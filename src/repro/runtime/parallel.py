"""Shared-nothing parallel execution of SNAPLE across graph partitions.

Every engine in :mod:`repro.runtime` historically executed its supersteps in
a single Python process — the GAS/BSP cluster model only *simulated*
distribution.  This module makes the partitions real: the graph is split
into ``workers`` partitions, each partition is mapped to a worker process of
a process pool, and the coordinator exchanges gather/scatter state (GAS) or
vertex messages (BSP) between supersteps, merging the per-partition vertex
state and accounting back into one
:class:`~repro.runtime.report.RunReport`.

Execution model
---------------
Workers are stateless between supersteps: for every superstep the
coordinator ships each partition the snapshot slice it needs (its own
vertices plus the boundary vertices its gathers read, or its inbox
messages), the worker runs the vertex program over its owned vertices, and
the coordinator merges the returned updates.  This gives *superstep-snapshot*
semantics: a vertex program must not read vertex-data fields written during
the same superstep.  SNAPLE's Algorithm 2 satisfies this by construction
(each step only reads keys written by earlier steps), which is why serial
and parallel runs produce identical predictions.

By default the data crossing process boundaries is columnar: vertex state
lives in a coordinator-side :class:`~repro.runtime.state.StateStore`,
boundary state ships as :class:`~repro.runtime.state.StateSlice` arrays,
and BSP messages route as sender-sorted
:class:`~repro.runtime.state.MessageBlock` arrays sliced per partition with
:func:`np.searchsorted` — a handful of flat buffers per (step, partition)
instead of pickled per-vertex dicts and message-object lists.  The legacy
dict path remains behind ``SNAPLE_DICT_STATE=1`` (and is also used by the
GAS flavour when the scoring configuration falls outside the vectorized
kernel or ``SNAPLE_PARALLEL_SCALAR=1`` is set); results are bit-identical
on both paths for every worker count.

Fault tolerance
---------------
Worker failure is treated as the common case, not the exception.  A superstep
is *atomic*: the coordinator merges a superstep's results only after every
partition's task returned, so a worker dying mid-superstep can never leave
half-merged state behind.  With ``checkpoint_dir`` set the coordinator
persists the loop state at superstep boundaries (every ``checkpoint_every``
supersteps, default 1) through :mod:`repro.runtime.checkpoint` — atomic
directory renames, SHA-256-verified shards.  When a worker process dies
(detected immediately through the broken pool) or exceeds
``worker_timeout`` seconds (treated as hung; the stragglers are killed), the
coordinator discards the pool, spawns a fresh one, reloads the newest valid
checkpoint — or restarts from scratch when none exists — and replays from
that superstep.  Up to ``max_restarts`` recoveries are attempted before a
:class:`~repro.errors.WorkerCrashError` propagates.  Because every random
draw comes from a per-vertex ``(seed, step, vertex)`` stream, a replayed
superstep repeats *exactly* the draws of the lost one: resumed runs are
bit-identical to uninterrupted runs, predictions and deterministic
accounting counters alike.

Determinism
-----------
Results are bit-identical for any worker count and any partitioner because

* every vertex draws randomness from its own stream derived from
  ``(seed, step, vertex)`` (see :func:`repro.snaple.program.vertex_rng`),
  never from a shared sequential stream;
* gathers combine in edge (CSR) order per vertex, exactly as the serial
  engine does on a single simulated machine;
* BSP inboxes are sorted by sender id before delivery, so floating-point
  accumulation order does not depend on which partition a sender lives on.

Ownership comes from the same partitioners the simulated engines use: the
GAS path masters vertices through :func:`repro.gas.partition.partition_graph`
(a vertex-cut ``GraphPartition``; each partition's masters go to one worker
process) and the BSP path through
:func:`repro.bsp.partition.partition_vertices` (an edge-cut).  A locality
aware partitioner (e.g. :class:`~repro.gas.partition.GreedyVertexCut`)
therefore reduces the boundary state shipped between supersteps.

Worker processes use an explicit ``forkserver`` start method (``spawn``
where forkserver is unavailable), never plain ``fork``: forking a threaded
parent (pytest plugins, coverage, profilers) can deadlock the child, which
used to make interrupted test runs leak hung workers.  Pool teardown always
runs — broken, hung or healthy — through a kill-then-shutdown path.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import (
    CheckpointError,
    ConfigurationError,
    EngineError,
    WorkerCrashError,
)
from repro.gas.vertex_program import EdgeDirection, VertexProgram, payload_size_bytes
from repro.graph.digraph import DiGraph
from repro.runtime.checkpoint import (
    CheckpointData,
    CheckpointStats,
    FaultSpec,
    checkpoint_fingerprint,
    latest_valid_checkpoint,
    maybe_crash,
    resolve_checkpoint,
    save_checkpoint,
    vertices_digest,
)
from repro.runtime.ooc import (
    MemmapColumnAllocator,
    MemmapGraphHandle,
    MemmapRegistry,
    ooc_enabled,
    spool_graph,
)
from repro.runtime.shm import (
    ShmColumnAllocator,
    ShmGraphHandle,
    ShmMessageRange,
    ShmRegistry,
    ShmSliceHandle,
    attach_graph,
    attachment_cache,
    message_block_handle,
    share_graph,
    shm_available,
    shm_disabled,
    state_slice_handle,
)
from repro.runtime.state import (
    MessageBlock,
    StateSlice,
    StateStore,
    dict_state_forced,
    env_flag,
    gather_slices,
)
from repro.snaple.config import SnapleConfig

__all__ = [
    "PartitionReport",
    "ParallelRunOutcome",
    "ParallelExecutor",
    "WorkerPoolLease",
    "pool_context",
    "run_parallel_gas",
    "run_parallel_bsp",
    "validate_workers",
]

#: Upper bound on worker processes; far above any sensible laptop value but
#: low enough that a typo (``workers=400``) fails fast instead of forking
#: hundreds of interpreters.
MAX_WORKERS = 64

#: Default number of pool respawn + resume attempts after a worker crash.
DEFAULT_MAX_RESTARTS = 2


def validate_workers(workers: Any) -> int:
    """Validate a ``workers=`` option value, returning it as an ``int``."""
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ConfigurationError(
            f"workers must be an integer, got {workers!r}"
        )
    if not 1 <= workers <= MAX_WORKERS:
        raise ConfigurationError(
            f"workers must be between 1 and {MAX_WORKERS}, got {workers}"
        )
    return workers


# ----------------------------------------------------------------------
# Accounting
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PartitionReport:
    """Per-partition slice of a run's results and accounting.

    The merged :class:`~repro.runtime.report.RunReport` derives its totals
    from these records (every target vertex is owned by exactly one
    partition), so the sum of the per-partition counters always equals the
    report's totals — the accounting invariant the parity suite asserts.
    """

    partition: int
    num_vertices: int
    num_predictions: int
    num_predicted_edges: int
    gather_invocations: int
    apply_invocations: int
    compute_seconds: float
    shipped_bytes: int


@dataclass
class ParallelRunOutcome:
    """Merged result of one shared-nothing parallel run.

    ``routing_seconds`` and ``state_plane_bytes`` carry one entry per
    superstep on the columnar state-plane path (coordinator time spent
    slicing/merging state and routing message blocks, and the live columnar
    payload after the step); both stay empty on the legacy dict path.

    ``checkpoints_written`` / ``checkpoint_bytes`` / ``checkpoint_seconds``
    account the snapshots persisted during the run; ``worker_restarts``
    counts pool respawns after worker crashes and ``resumed_from`` is the
    superstep the run (last) resumed at — ``0`` for a from-scratch replay,
    ``None`` when the run never resumed.

    ``shm_enabled`` records whether the run hosted graph + state columns in
    shared memory and ``ooc_enabled`` whether they lived in on-disk spool
    files instead (``SNAPLE_OOC=1``; at most one of the two is set);
    ``transport_bytes`` carries the bytes that actually crossed the process
    boundary per executed superstep (descriptors + row indices on the
    shm/memmap paths, the slice/message arrays themselves on the
    pickled path).  Unlike the deterministic ``shipped``/``exchanged``
    accounting — which is transport-independent by design — transport bytes
    are a measurement of the wire, so they are *not* checkpointed: a
    resumed run reports entries only for the supersteps it replayed.
    """

    predictions: dict[int, list[int]]
    scores: Any
    workers: int
    supersteps: int
    partitions: list[PartitionReport]
    wall_clock_seconds: float
    sync_overhead_seconds: float
    exchanged_bytes: int
    vertex_data: Any = field(default_factory=dict, repr=False)
    routing_seconds: list[float] = field(default_factory=list)
    state_plane_bytes: list[int] = field(default_factory=list)
    checkpoints_written: int = 0
    checkpoint_bytes: int = 0
    checkpoint_seconds: float = 0.0
    worker_restarts: int = 0
    resumed_from: int | None = None
    shm_enabled: bool = False
    ooc_enabled: bool = False
    transport_bytes: list[int] = field(default_factory=list)

    @property
    def per_partition_seconds(self) -> list[float]:
        return [partition.compute_seconds for partition in self.partitions]


@dataclass
class _Accounting:
    """The per-run counters every execution flavour accumulates.

    Everything except the timing fields is deterministic, which is what lets
    a checkpointed resume reproduce the uninterrupted run's accounting
    exactly: the counters are snapshotted at the superstep boundary and the
    replayed supersteps re-add exactly what the lost ones would have.
    """

    compute_seconds: list[float]
    gathers: list[int]
    applies: list[int]
    shipped: list[int]
    sync_overhead: float = 0.0
    routing: list[float] = field(default_factory=list)
    plane: list[int] = field(default_factory=list)

    @classmethod
    def fresh(cls, workers: int) -> "_Accounting":
        return cls([0.0] * workers, [0] * workers, [0] * workers, [0] * workers)

    def to_payload(self) -> dict[str, Any]:
        return {
            "compute_seconds": list(self.compute_seconds),
            "gathers": list(self.gathers),
            "applies": list(self.applies),
            "shipped": list(self.shipped),
            "sync_overhead": float(self.sync_overhead),
            "routing": list(self.routing),
            "plane": list(self.plane),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any], workers: int) -> "_Accounting":
        acct = cls(
            compute_seconds=[float(v) for v in payload["compute_seconds"]],
            gathers=[int(v) for v in payload["gathers"]],
            applies=[int(v) for v in payload["applies"]],
            shipped=[int(v) for v in payload["shipped"]],
            sync_overhead=float(payload.get("sync_overhead", 0.0)),
            routing=[float(v) for v in payload.get("routing", [])],
            plane=[int(v) for v in payload.get("plane", [])],
        )
        if len(acct.gathers) != workers:
            raise EngineError(
                f"checkpoint accounting covers {len(acct.gathers)} partitions "
                f"but the executor runs {workers}"
            )
        return acct


# ----------------------------------------------------------------------
# Worker-process side.  Everything here must be module level (picklable by
# reference) and must only touch the state installed by the initializer.
# ----------------------------------------------------------------------
_WORKER_GRAPH: DiGraph | None = None
_WORKER_CONFIG: SnapleConfig | None = None
_WORKER_FAULT: FaultSpec | None = None

#: Environment flags mirrored from the coordinator into every worker.  With
#: an explicit forkserver/spawn start method, workers would otherwise
#: inherit the forkserver's (stale) environment rather than the settings in
#: effect when the pool was created.
_WORKER_ENV_FLAGS = ("SNAPLE_DICT_STATE", "SNAPLE_PARALLEL_SCALAR",
                     "SNAPLE_NO_SHM", "SNAPLE_OOC", "SNAPLE_OOC_DIR")


def _worker_env_snapshot() -> dict[str, str]:
    return {
        name: os.environ[name]
        for name in _WORKER_ENV_FLAGS
        if name in os.environ
    }


def _watch_parent() -> None:
    """Hard-exit this worker the moment the coordinator process dies.

    A worker blocked on the pool's call queue never sees EOF when the
    coordinator is killed outright (every sibling worker inherited the
    queue's write end, so the pipe stays open), which used to leave orphaned
    workers — and the forkserver they keep alive — running forever after a
    ``kill -9`` of the driver.  ``parent_process().join()`` waits on the
    coordinator's death sentinel instead, which fires no matter how the
    coordinator died.
    """
    parent = multiprocessing.parent_process()
    if parent is None:  # pragma: no cover - only when run as a main process
        return
    parent.join()
    os._exit(3)


def _init_worker(graph: DiGraph | ShmGraphHandle | MemmapGraphHandle,
                 config: SnapleConfig,
                 fault: FaultSpec | None = None,
                 env: dict[str, str] | None = None) -> None:
    """Pool initializer: install the graph, config and flags once per process.

    On the shared-memory path the coordinator passes a
    :class:`~repro.runtime.shm.ShmGraphHandle` instead of the graph itself:
    the worker maps the coordinator's CSR segment once (read-only views,
    pinned for the process lifetime) rather than unpickling an edge-array
    copy per pool spawn.  On the out-of-core path the graph arrives as a
    :class:`~repro.runtime.ooc.MemmapGraphHandle` — the path of an on-disk
    container the worker maps read-only in O(1).
    """
    global _WORKER_GRAPH, _WORKER_CONFIG, _WORKER_FAULT
    if isinstance(graph, ShmGraphHandle):
        graph = attach_graph(graph, attachment_cache())
    elif isinstance(graph, MemmapGraphHandle):
        graph = graph.load()
    _WORKER_GRAPH = graph
    _WORKER_CONFIG = config
    _WORKER_FAULT = fault
    for name in _WORKER_ENV_FLAGS:
        os.environ.pop(name, None)
    if env:
        os.environ.update(env)
    threading.Thread(target=_watch_parent, name="snaple-parent-watchdog",
                     daemon=True).start()


def _worker_state() -> tuple[DiGraph, SnapleConfig]:
    if _WORKER_GRAPH is None or _WORKER_CONFIG is None:
        raise EngineError("parallel worker used before initialization")
    return _WORKER_GRAPH, _WORKER_CONFIG


def _collect_segments(payload: Any, names: set[str]) -> None:
    if isinstance(payload, tuple):
        for part in payload:
            _collect_segments(part, names)
    elif isinstance(payload, (ShmSliceHandle, ShmMessageRange)):
        names |= payload.segments()


def _materialize_payload(payload: Any) -> Any:
    """Resolve shared-memory descriptors in a task payload into arrays.

    Plain payloads (``None``, :class:`StateSlice`, :class:`MessageBlock`,
    tuples thereof) pass through untouched, so the worker task bodies are
    identical on the pickled and shared-memory transports — which is what
    keeps the two bit-identical.  Before materializing, attachments to
    segments the payload no longer references are dropped (state columns
    migrate to fresh segments when they grow).
    """
    names: set[str] = set()
    _collect_segments(payload, names)
    if not names:
        return payload
    cache = attachment_cache()
    cache.retain(names)
    return _resolve_payload(payload, cache)


def _resolve_payload(payload: Any, cache) -> Any:
    if isinstance(payload, tuple):
        return tuple(_resolve_payload(part, cache) for part in payload)
    if isinstance(payload, (ShmSliceHandle, ShmMessageRange)):
        return payload.materialize(cache)
    return payload


def _transport_nbytes(payload: Any) -> int:
    """Bytes a task payload actually ships across the process boundary.

    On the shared-memory path this is descriptors plus row indices; on the
    pickled path it is the arrays themselves (array body bytes — pickle
    framing overhead is ignored on both sides).  The per-superstep totals
    surface as ``transport_bytes`` in the run report so the two transports
    can be compared directly.
    """
    if payload is None:
        return 0
    if isinstance(payload, tuple):
        return sum(_transport_nbytes(part) for part in payload)
    if isinstance(payload, (ShmSliceHandle, ShmMessageRange)):
        return payload.transport_nbytes()
    if isinstance(payload, StateSlice):
        total = int(payload.rows.nbytes)
        for counts, ids, vals, present in payload.ragged.values():
            total += int(counts.nbytes) + int(ids.nbytes) + int(present.nbytes)
            if vals is not None:
                total += int(vals.nbytes)
        for values, present in payload.scalars.values():
            total += int(values.nbytes) + int(present.nbytes)
        return total
    if isinstance(payload, MessageBlock):
        return payload.nbytes()
    return 0


def _gather_neighbors(graph: DiGraph, vertex: int,
                      direction: EdgeDirection) -> list[int]:
    """Incident neighbors in the order the serial engine gathers them."""
    if direction is EdgeDirection.OUT:
        return graph.out_neighbors(vertex).tolist()
    if direction is EdgeDirection.IN:
        return graph.in_neighbors(vertex).tolist()
    if direction is EdgeDirection.BOTH:
        return (graph.out_neighbors(vertex).tolist()
                + graph.in_neighbors(vertex).tolist())
    return []


def _run_gas_step(step: VertexProgram, graph: DiGraph, active: list[int],
                  data: dict[int, dict[str, Any]]) -> tuple[int, int]:
    """Run one GAS superstep over ``active`` against the snapshot ``data``."""
    if step.scatter_direction is not EdgeDirection.NONE:
        raise EngineError(
            "the shared-nothing parallel executor does not support scatter "
            f"phases (step {step.name!r})"
        )
    gathers = 0
    empty: dict[str, Any] = {}
    for u in active:
        u_data = data[u]
        gathered: Any = None
        has_value = False
        for v in _gather_neighbors(graph, u, step.gather_direction):
            value = step.gather(u, v, u_data, data.get(v, empty))
            gathers += 1
            if value is None:
                continue
            if has_value:
                gathered = step.sum(gathered, value)
            else:
                gathered = value
                has_value = True
        step.apply(u, u_data, gathered if has_value else None)
    return gathers, len(active)


def _gas_step_task(task: tuple[int, int, list[int], dict[int, dict[str, Any]]]):
    """One (partition, superstep) unit of GAS work, run in a worker process.

    ``task`` is ``(partition, step_index, active owned vertices, snapshot
    slice)``; the result carries the updated owned vertex data, the step's
    side-channel scores (if any), invocation counts, and the compute time.

    When the scoring configuration is inside the vectorized design space
    (see :func:`repro.snaple.kernel.kernel_supports`) the partition's work
    runs through the CSR-native kernel instead of the per-vertex scalar
    loop — bit-identical results (the kernel replicates the gather fold
    order and the per-vertex RNG draws), so serial engines, ``workers=1``
    and ``workers=N`` all still agree exactly.  Set
    ``SNAPLE_PARALLEL_SCALAR=1`` to force the scalar step implementations.
    """
    from repro.snaple import kernel
    from repro.snaple.program import build_snaple_steps

    partition, step_index, active, data = task
    maybe_crash(_WORKER_FAULT, step_index, partition)
    graph, config = _worker_state()
    start = time.perf_counter()
    use_kernel = (
        kernel.kernel_supports(config)
        and not env_flag("SNAPLE_PARALLEL_SCALAR")
    )
    kept_scores = None
    if use_kernel:
        if step_index == 0:
            gathers, applies = kernel.gas_sample_step(graph, config, active, data)
        elif step_index == 1:
            gathers, applies = kernel.gas_similarity_step(graph, config, active, data)
        else:
            step_scores, gathers, applies = kernel.gas_recommendation_step(
                graph, config, active, data
            )
            kept_scores = step_scores or None
    else:
        # Steps are rebuilt per task: with per-vertex RNG they carry no
        # state across vertices, so a fresh instance keeps workers stateless
        # and the outcome independent of which tasks land on which process.
        step = build_snaple_steps(config, graph, per_vertex_rng=True)[step_index]
        gathers, applies = _run_gas_step(step, graph, active, data)
        scores = getattr(step, "collected_scores", None)
        kept_scores = (
            {u: scores[u] for u in active if u in scores} if scores else None
        )
    updates = {u: data[u] for u in active}
    return updates, kept_scores, gathers, applies, time.perf_counter() - start


def _gas_step_task_columnar(task):
    """One (partition, superstep) unit of columnar GAS work.

    ``task`` is ``(partition, step_index, active owned vertices (array),
    payload)`` where the payload is the
    :class:`~repro.runtime.state.StateSlice` (or pair of slices) the step
    reads.  Everything crossing the process boundary — in both directions —
    is a handful of flat arrays; the vectorized kernel consumes the slices
    without per-vertex marshalling.
    """
    from repro.snaple import kernel

    partition, step_index, active, payload = task
    maybe_crash(_WORKER_FAULT, step_index, partition)
    graph, config = _worker_state()
    start = time.perf_counter()
    payload = _materialize_payload(payload)
    num_vertices = graph.num_vertices
    if step_index == 0:
        counts, flat, gathers = kernel.gas_sample_step_columnar(
            graph, config, active
        )
        result: tuple = (counts, flat)
    elif step_index == 1:
        rows, counts, ids, _vals = payload.field_rows("gamma")
        gamma = kernel.columns_to_neighborhood_csr(num_vertices, rows,
                                                   counts, ids)
        counts, ids, vals, gathers = kernel.gas_similarity_step_columnar(
            graph, config, active, gamma
        )
        result = (counts, ids, vals)
    else:
        gamma_slice, sims_slice = payload
        rows, counts, ids, _vals = gamma_slice.field_rows("gamma")
        gamma = kernel.columns_to_neighborhood_csr(num_vertices, rows,
                                                   counts, ids)
        rows, counts, ids, vals = sims_slice.field_rows("sims")
        kept = kernel.columns_to_kept(num_vertices, rows, counts, ids, vals)
        (pred_counts, pred_flat, score_counts, candidates, values,
         gathers) = kernel.gas_recommendation_step_columnar(
            graph, config, active, gamma, kept
        )
        result = (pred_counts, pred_flat, score_counts, candidates, values)
    return result, gathers, int(active.size), time.perf_counter() - start


def _bsp_compute_loop(graph, config, superstep: int, compute_list: list[int],
                      state_of, inboxes: dict[int, list[Any]],
                      aggregated: dict[str, Any]):
    """Run the SNAPLE program over ``compute_list`` against a state snapshot.

    Shared by the dict and columnar worker tasks, which differ only in how
    vertex state and messages are (de)materialized: ``state_of`` maps a
    vertex id to its mutable state mapping.  Returns ``(program, sent,
    halted, contributions, messages_processed)``.
    """
    from repro.bsp.vertex import ComputeContext
    from repro.snaple.bsp_program import SnapleBspProgram

    program = SnapleBspProgram(config, per_vertex_rng=True)
    aggregator_fns = program.aggregators()
    sent: list[tuple[int, int, Any]] = []
    halted: list[int] = []
    contributions: dict[str, Any] = {}
    messages_processed = 0

    def contribute(name: str, value: Any) -> None:
        if name not in aggregator_fns:
            raise EngineError(
                f"program {program.name!r} aggregated to undeclared "
                f"aggregator {name!r}"
            )
        if name in contributions:
            contributions[name] = aggregator_fns[name](contributions[name], value)
        else:
            contributions[name] = value

    def send(source: int, target: int, value: Any) -> None:
        if not 0 <= target < graph.num_vertices:
            raise EngineError(f"message sent to non-existent vertex {target}")
        sent.append((source, target, value))

    def halt(vertex: int) -> None:
        halted.append(vertex)

    for u in compute_list:
        messages = inboxes.get(u, [])
        messages_processed += len(messages)
        context = ComputeContext(
            superstep=superstep,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            vertex=u,
            out_neighbors=graph.out_neighbors(u).tolist(),
            send=send,
            halt=halt,
            aggregate=contribute,
            aggregated_values=aggregated,
        )
        program.compute(state_of(u), messages, context)
    return program, sent, halted, contributions, messages_processed


def _bsp_step_task(task):
    """One (partition, superstep) unit of BSP work, run in a worker process.

    ``task`` is ``(partition, superstep, owned states, vertices to compute,
    inboxes, aggregated values)``.  Messages are returned as ``(sender,
    target, value)`` triples so the coordinator can deliver them in a
    globally deterministic (sender-sorted) order.
    """
    partition, superstep, states, compute_list, inboxes, aggregated = task
    maybe_crash(_WORKER_FAULT, superstep, partition)
    graph, config = _worker_state()
    start = time.perf_counter()
    program, sent, halted, contributions, messages_processed = (
        _bsp_compute_loop(graph, config, superstep, compute_list,
                          states.__getitem__, inboxes, aggregated)
    )
    updates = {u: states[u] for u in compute_list}
    kept_scores = {
        u: program.collected_scores[u]
        for u in compute_list
        if u in program.collected_scores
    }
    elapsed = time.perf_counter() - start
    return (updates, sent, halted, kept_scores or None, contributions,
            messages_processed, len(compute_list), elapsed)


def _bsp_step_task_columnar(task):
    """One (partition, superstep) unit of columnar BSP work.

    ``task`` is ``(partition, superstep, state slice, vertices to compute
    (array), inbox MessageBlock, aggregated values)``.  The vertex programs
    run unchanged against :class:`~repro.runtime.state.VertexRow` views over
    a partition-local store (sized to the partition, with vertex ids
    remapped to local row indices); state and messages cross the process
    boundary as raw arrays instead of pickled dicts and message-tuple lists.
    """
    from repro.snaple.bsp_program import (
        decode_snaple_inboxes,
        encode_snaple_messages,
        snaple_bsp_state_schema,
    )

    partition, superstep, state_slice, compute, inbox_block, aggregated = task
    maybe_crash(_WORKER_FAULT, superstep, partition)
    graph, config = _worker_state()
    start = time.perf_counter()
    state_slice, inbox_block = _materialize_payload((state_slice, inbox_block))
    num_local = int(compute.size)
    local_rows = np.arange(num_local, dtype=np.int64)
    # ``extract`` emits rows in ascending id order and ``compute`` is
    # ascending, so the slice maps 1:1 onto local rows 0..n-1.
    store = StateStore(num_local, snaple_bsp_state_schema())
    state_slice.rows = local_rows
    store.merge(state_slice)
    compute_list = compute.tolist()
    local_of = {u: i for i, u in enumerate(compute_list)}
    inboxes = decode_snaple_inboxes(inbox_block)

    program, sent, halted, contributions, messages_processed = (
        _bsp_compute_loop(graph, config, superstep, compute_list,
                          lambda u: store.row(local_of[u]), inboxes,
                          aggregated)
    )

    updates = store.extract(local_rows, store.schema.names())
    updates.rows = compute
    outbox = encode_snaple_messages(sent)
    kept_scores = {
        u: program.collected_scores[u]
        for u in compute_list
        if u in program.collected_scores
    }
    elapsed = time.perf_counter() - start
    return (updates, outbox, halted, kept_scores or None, contributions,
            messages_processed, len(compute_list), elapsed)


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
_FORKSERVER_PRELOADED = False


def _pool_context():
    """An explicit spawn-family start method: forkserver, or spawn fallback.

    Plain ``fork`` is deliberately not used: forking a threaded parent
    (pytest plugins, coverage, profilers) can deadlock the child, which used
    to make interrupted test runs hang and leak worker processes.
    ``forkserver`` keeps fork's cheap per-worker startup by forking from a
    clean, single-threaded server process; preloading this module there
    (pulling in numpy and the engine packages once) keeps repeated pool
    creation fast.
    """
    global _FORKSERVER_PRELOADED
    if "forkserver" in multiprocessing.get_all_start_methods():
        ctx = multiprocessing.get_context("forkserver")
        if not _FORKSERVER_PRELOADED:
            ctx.set_forkserver_preload(["repro.runtime.parallel"])
            _FORKSERVER_PRELOADED = True
        return ctx
    return multiprocessing.get_context("spawn")


def pool_context():
    """Public alias of the executor's start-method choice.

    Other process fan-outs (the sharded serving plane) must make the same
    forkserver-or-spawn decision for the same thread-safety reasons; sharing
    the helper keeps the preload bookkeeping in one place.
    """
    return _pool_context()


class WorkerPoolLease:
    """A worker pool (plus its graph plane) reused across parallel runs.

    Spawning a pool is the fixed cost of every ``workers=N`` run: N process
    creations, a graph transport (shm packing, container spooling, or an
    edge-array pickle per worker), and the workers' first-import warmup.
    A lease amortizes that cost: the first run materializes the pool and
    the graph plane, and later runs with the *same* (graph, config,
    workers, transport, env-flags) key reuse both — ``spawns`` counts how
    often the expensive path actually ran.  :class:`ParallelExecutor`
    acquires the lease when given one (``pool=``), bypassing it for
    fault-injected runs, and invalidates it when a worker crashes so
    recovery always replays on a fresh self-managed pool.

    The lease owns real resources (processes, shared segments or spool
    files): call :meth:`close` — or use it as a context manager — when done.
    :class:`~repro.snaple.predictor.SnapleLinkPredictor` holds one lease
    per predictor and forwards ``close()``.
    """

    def __init__(self) -> None:
        self._pool: ProcessPoolExecutor | None = None
        self._registry: ShmRegistry | None = None
        self._graph_handle: ShmGraphHandle | MemmapGraphHandle | None = None
        self._key: tuple | None = None
        #: How many times a pool was actually spawned (cache misses).
        self.spawns = 0

    def acquire(self, *, graph: DiGraph, config: SnapleConfig, workers: int,
                transport: str, env: dict[str, str]) -> ProcessPoolExecutor:
        """The pool for this run key, spawning or respawning as needed."""
        key = (id(graph), id(config), workers, transport,
               tuple(sorted(env.items())))
        if self._pool is not None and self._key == key:
            return self._pool
        self.invalidate()
        if transport == "shm":
            self._registry = ShmRegistry()
            self._graph_handle = share_graph(self._registry, graph)
        elif transport == "ooc":
            self._registry = MemmapRegistry()
            self._graph_handle = spool_graph(self._registry, graph)
        graph_arg = self._graph_handle if self._graph_handle is not None \
            else graph
        self._pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_pool_context(),
            initializer=_init_worker,
            initargs=(graph_arg, config, None, env),
        )
        self._key = key
        self.spawns += 1
        return self._pool

    def invalidate(self, *, kill: bool = False) -> None:
        """Discard the pool and its graph plane (``kill`` after a crash)."""
        pool, self._pool = self._pool, None
        registry, self._registry = self._registry, None
        self._graph_handle = None
        self._key = None
        if pool is not None:
            ParallelExecutor._shutdown_pool(pool, kill=kill)
        if registry is not None:
            registry.close()

    def close(self) -> None:
        """Release the pool and every segment/spool file.  Idempotent."""
        self.invalidate()

    def __enter__(self) -> "WorkerPoolLease":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC backstop
        try:
            self.invalidate(kill=True)
        except Exception:
            pass


class ParallelExecutor:
    """Coordinates one shared-nothing parallel run over a worker pool.

    Parameters
    ----------
    graph, config:
        The input graph and SNAPLE configuration.
    workers:
        Number of partitions / worker processes (1..``MAX_WORKERS``).
    kind:
        ``"gas"`` to execute Algorithm 2's three GAS steps, ``"bsp"`` for
        the four-superstep BSP port.
    partitioner:
        Optional placement strategy: a
        :class:`~repro.gas.partition.Partitioner` (vertex-cut; masters
        become owners) for ``kind="gas"`` or a
        :class:`~repro.bsp.partition.VertexPartitioner` (edge-cut) for
        ``kind="bsp"``.  Placement only affects how much boundary state is
        shipped, never the predictions.
    seed:
        Partitioner seed; defaults to the configuration's seed.
    checkpoint_dir:
        Directory for superstep-boundary checkpoints (see
        :mod:`repro.runtime.checkpoint`).  ``None`` disables checkpointing;
        crash recovery then replays from scratch.
    checkpoint_every:
        Checkpoint cadence in supersteps (default 1 when ``checkpoint_dir``
        is set).  Requires ``checkpoint_dir``.
    resume_from:
        A checkpoint step directory — or a checkpoint root, resolving to its
        newest step — to restore before executing.  Corruption or a
        graph/config/workers mismatch raises
        :class:`~repro.errors.CheckpointError`.
    max_restarts:
        Crash recoveries attempted before the failure propagates.
    worker_timeout:
        Seconds a superstep may take before its workers are declared hung,
        killed and recovered (``None`` disables the watchdog).
    fault:
        A :class:`~repro.runtime.checkpoint.FaultSpec` crash injection used
        by the fault-tolerance test harness; never set in production.
    pool:
        An optional :class:`WorkerPoolLease` to reuse the worker pool (and
        graph transport) across runs.  Ignored for fault-injected runs and
        invalidated on worker crashes, so fault tolerance is unchanged.
    """

    def __init__(self, graph: DiGraph, config: SnapleConfig | None = None, *,
                 workers: int, kind: str, partitioner: Any = None,
                 seed: int | None = None,
                 checkpoint_dir: str | Path | None = None,
                 checkpoint_every: int | None = None,
                 resume_from: str | Path | None = None,
                 max_restarts: int = DEFAULT_MAX_RESTARTS,
                 worker_timeout: float | None = None,
                 fault: FaultSpec | None = None,
                 pool: "WorkerPoolLease | None" = None) -> None:
        if kind not in ("gas", "bsp"):
            raise ConfigurationError(f"unknown parallel execution kind {kind!r}")
        self._graph = graph
        self._config = config if config is not None else SnapleConfig()
        self._workers = validate_workers(workers)
        self._kind = kind
        if checkpoint_every is not None:
            if (isinstance(checkpoint_every, bool)
                    or not isinstance(checkpoint_every, int)
                    or checkpoint_every < 1):
                raise ConfigurationError(
                    f"checkpoint_every must be a positive integer, got "
                    f"{checkpoint_every!r}"
                )
            if checkpoint_dir is None:
                raise ConfigurationError(
                    "checkpoint_every requires a checkpoint_dir to write to"
                )
        if isinstance(max_restarts, bool) or not isinstance(max_restarts, int) \
                or max_restarts < 0:
            raise ConfigurationError(
                f"max_restarts must be a non-negative integer, got "
                f"{max_restarts!r}"
            )
        if worker_timeout is not None and (
                not isinstance(worker_timeout, (int, float))
                or isinstance(worker_timeout, bool) or worker_timeout <= 0):
            raise ConfigurationError(
                f"worker_timeout must be a positive number of seconds, got "
                f"{worker_timeout!r}"
            )
        self._checkpoint_dir = (
            None if checkpoint_dir is None else Path(checkpoint_dir)
        )
        self._checkpoint_every = (
            checkpoint_every if checkpoint_every is not None
            else (1 if self._checkpoint_dir is not None else None)
        )
        self._resume_from = None if resume_from is None else Path(resume_from)
        self._max_restarts = max_restarts
        self._worker_timeout = (
            None if worker_timeout is None else float(worker_timeout)
        )
        self._fault = fault
        self._ckpt_stats = CheckpointStats()
        self._vertices_digest = "all"  # stamped per run() from its vertices
        self._owner = self._assign_owners(partitioner,
                                          self._config.seed if seed is None else seed)
        self._owned: list[list[int]] = [[] for _ in range(self._workers)]
        for u in range(graph.num_vertices):
            self._owned[self._owner[u]].append(u)
        self._owner_array = np.asarray(self._owner, dtype=np.int64)
        self._owned_arrays = [np.asarray(owned, dtype=np.int64)
                              for owned in self._owned]
        if pool is not None and not isinstance(pool, WorkerPoolLease):
            raise ConfigurationError(
                f"pool must be a WorkerPoolLease, got {pool!r}"
            )
        self._pool_lease = pool
        # State plane (shm segments or memmap spool files), alive only
        # inside run() (see _use_shm / _use_ooc).
        self._registry: ShmRegistry | None = None
        self._graph_handle: ShmGraphHandle | MemmapGraphHandle | None = None

    def _assign_owners(self, partitioner: Any, seed: int) -> list[int]:
        """One owning partition per vertex, from the engine's own partitioner."""
        if self._kind == "gas":
            from repro.gas.partition import partition_graph

            placement = partition_graph(
                self._graph, self._workers, partitioner=partitioner, seed=seed
            )
            return [int(m) for m in placement.vertex_master]
        from repro.bsp.partition import partition_vertices

        placement = partition_vertices(
            self._graph, self._workers, partitioner=partitioner, seed=seed
        )
        return [int(m) for m in placement.vertex_machine]

    # ------------------------------------------------------------------
    # Pool lifecycle and fault handling
    # ------------------------------------------------------------------
    def _make_pool(self) -> ProcessPoolExecutor:
        graph_arg: DiGraph | ShmGraphHandle | MemmapGraphHandle = (
            self._graph_handle if self._graph_handle is not None
            else self._graph
        )
        return ProcessPoolExecutor(
            max_workers=self._workers,
            mp_context=_pool_context(),
            initializer=_init_worker,
            initargs=(graph_arg, self._config, self._fault,
                      _worker_env_snapshot()),
        )

    @staticmethod
    def _shutdown_pool(pool: ProcessPoolExecutor, *, kill: bool) -> None:
        """Terminate-safe teardown: never leaves worker processes behind.

        ``kill=True`` (after a crash or watchdog timeout) SIGKILLs whatever
        workers are still alive before shutting the executor down, so a hung
        worker cannot block teardown or outlive an interrupted run.
        """
        if kill:
            for process in list(getattr(pool, "_processes", {}).values()):
                if process.is_alive():
                    process.kill()
        pool.shutdown(wait=True, cancel_futures=True)

    def _map(self, pool: ProcessPoolExecutor, fn, tasks: list) -> list:
        """Run one superstep's tasks; dead/hung workers raise ``WorkerCrashError``.

        The results are materialized in full before the caller merges
        anything, which is what makes a superstep atomic: a crash mid-map
        loses the whole superstep, never half of it.
        """
        try:
            return list(pool.map(fn, tasks, timeout=self._worker_timeout))
        except BrokenProcessPool as exc:
            raise WorkerCrashError(
                "a parallel worker process died mid-superstep"
            ) from exc
        except FuturesTimeoutError as exc:
            raise WorkerCrashError(
                f"a parallel superstep exceeded worker_timeout="
                f"{self._worker_timeout}s; treating its workers as hung"
            ) from exc

    def _flavour(self) -> str:
        """Which state representation this run executes (``dict``/``columnar``)."""
        if self._kind == "gas":
            return "columnar" if self._use_columnar_gas() else "dict"
        return "dict" if dict_state_forced() else "columnar"

    def _use_shm(self) -> bool:
        """Whether this run hosts the graph and state columns in shared memory.

        Requires the columnar flavour (shm is a transport for column
        buffers), no ``SNAPLE_NO_SHM=1`` escape hatch, and a platform that
        can actually create segments.  The flavour — and therefore the
        checkpoint fingerprint — is unchanged by shm: checkpoints written
        with it resume without it and vice versa.
        """
        return (
            self._flavour() == "columnar"
            and not shm_disabled()
            and shm_available()
        )

    def _use_ooc(self) -> bool:
        """Whether this run hosts graph + state columns in on-disk files.

        ``SNAPLE_OOC=1`` selects the out-of-core plane (it takes precedence
        over shm and needs no shared-memory support); like shm it is a
        transport for column buffers, so it requires the columnar flavour.
        The checkpoint fingerprint is unchanged — checkpoints resume across
        the in-RAM, shm and memmap tiers in any direction.
        """
        return self._flavour() == "columnar" and ooc_enabled()

    def _transport(self) -> str:
        """Which plane this run ships arrays over: ``ooc``/``shm``/``pickle``."""
        if self._use_ooc():
            return "ooc"
        if self._use_shm():
            return "shm"
        return "pickle"

    def _share_graph_plane(
            self, transport: str) -> "ShmGraphHandle | MemmapGraphHandle | None":
        """Host the graph on the run's own plane (``self._registry``)."""
        if transport == "shm":
            return share_graph(self._registry, self._graph)
        if transport == "ooc":
            return spool_graph(self._registry, self._graph)
        return None

    def _column_allocator(self):
        """The StateStore allocator matching the live plane (or ``None``)."""
        if self._registry is None:
            return None
        if isinstance(self._registry, MemmapRegistry):
            return MemmapColumnAllocator(self._registry)
        return ShmColumnAllocator(self._registry)

    def _fingerprint(self) -> dict[str, Any]:
        return checkpoint_fingerprint(
            self._graph, self._config, kind=self._kind,
            flavour=self._flavour(), workers=self._workers,
            vertices=self._vertices_digest,
        )

    def _validate_resume(self, data: CheckpointData) -> None:
        expected = self._fingerprint()
        mismatched = {
            key: (data.fingerprint.get(key), value)
            for key, value in expected.items()
            if data.fingerprint.get(key) != value
        }
        if mismatched:
            detail = ", ".join(
                f"{key}: checkpoint={found!r} != run={wanted!r}"
                for key, (found, wanted) in sorted(mismatched.items())
            )
            raise CheckpointError(
                f"checkpoint is not resumable by this run ({detail})"
            )

    def _checkpoint_due(self, next_step: int, num_steps: int | None) -> bool:
        """Whether the boundary after superstep ``next_step - 1`` persists.

        A checkpoint is never written after a run's known final superstep
        (``num_steps``): for GAS the merged prediction arrays of the final
        step live outside the vertex state, so such a snapshot could not be
        resumed into a complete result.  BSP passes ``num_steps=None`` (its
        superstep count is dynamic) — its predictions are always
        reconstructable from the snapshotted state.

        Call sites gate on this *before* materializing the snapshot payload
        (``store.snapshot()`` copies every state column), so runs without a
        ``checkpoint_dir`` pay nothing on the hot path.
        """
        if self._checkpoint_dir is None:
            return False
        if num_steps is not None and next_step >= num_steps:
            return False
        return next_step % self._checkpoint_every == 0

    def _write_checkpoint(self, next_step: int, *,
                          state: Any, scores: Any, acct: _Accounting,
                          messages: Any = None, active: Any = None,
                          aggregated: dict[str, Any] | None = None) -> None:
        """Persist the loop state at a due superstep boundary."""
        start = time.perf_counter()
        data = CheckpointData(
            kind=self._kind,
            flavour=self._flavour(),
            superstep=next_step,
            workers=self._workers,
            fingerprint=self._fingerprint(),
            state=state,
            messages=messages,
            scores=scores,
            active=active,
            aggregated=dict(aggregated or {}),
            accounting=acct.to_payload(),
            rng={
                "seed": int(self._config.seed),
                "scheme": "per-vertex (seed, step, vertex) streams",
            },
        )
        self._ckpt_stats.bytes += save_checkpoint(self._checkpoint_dir, data)
        self._ckpt_stats.written += 1
        self._ckpt_stats.seconds += time.perf_counter() - start

    # ------------------------------------------------------------------
    def run(self, vertices: list[int] | None = None, *,
            targets: list[int] | None = None) -> ParallelRunOutcome:
        """Execute the program and merge per-partition results.

        ``vertices`` restricts the computation's active set (all by
        default); ``targets`` restricts which vertices appear in the merged
        predictions/scores (defaults to ``vertices``).  The BSP path uses a
        full active set with restricted targets because message passing
        needs every neighborhood in flight.

        State plane vs. dict path: by default vertex state lives in a
        columnar :class:`~repro.runtime.state.StateStore` and supersteps
        exchange :class:`~repro.runtime.state.StateSlice` /
        :class:`~repro.runtime.state.MessageBlock` arrays (the GAS flavour
        additionally requires the scoring configuration to be inside the
        vectorized kernel's design space).  ``SNAPLE_DICT_STATE=1`` — and,
        for GAS, ``SNAPLE_PARALLEL_SCALAR=1`` or an unsupported
        configuration — falls back to the legacy dict path.  Results are
        bit-identical either way.

        Fault handling: a worker death or watchdog timeout discards the
        pool, respawns it, and replays from the newest valid checkpoint
        (from scratch when there is none) up to ``max_restarts`` times; the
        returned outcome is bit-identical to an uninterrupted run.
        """
        start = time.perf_counter()
        self._ckpt_stats = CheckpointStats()
        self._vertices_digest = vertices_digest(vertices)
        resume: CheckpointData | None = None
        external_resume: CheckpointData | None = None
        resumed_from: int | None = None
        if self._resume_from is not None:
            resume = external_resume = resolve_checkpoint(self._resume_from)
            self._validate_resume(resume)
            resumed_from = resume.superstep
        restarts = 0
        transport = self._transport()
        # Fault-injected runs bypass the lease: crash tests must exercise
        # the full self-managed pool + plane lifecycle.
        lease = (self._pool_lease
                 if self._pool_lease is not None and self._fault is None
                 else None)
        try:
            if transport == "ooc":
                # One registry per run owns every spool file; like the shm
                # plane it survives pool respawns after crashes.
                self._registry = MemmapRegistry()
            elif transport == "shm":
                # One registry per run owns every segment; the graph is
                # packed once and survives pool respawns after crashes.
                self._registry = ShmRegistry()
            if lease is None:
                self._graph_handle = self._share_graph_plane(transport)
            while True:
                leased = lease is not None
                if leased:
                    # The lease hosts the graph plane (its own registry) and
                    # the pool; this run's registry only holds state columns
                    # and message blocks.
                    pool = lease.acquire(
                        graph=self._graph, config=self._config,
                        workers=self._workers, transport=transport,
                        env=_worker_env_snapshot(),
                    )
                else:
                    pool = self._make_pool()
                crashed = False
                try:
                    outcome = self._dispatch(pool, vertices, targets, resume)
                    break
                except WorkerCrashError:
                    crashed = True
                    restarts += 1
                    if leased:
                        # The leased pool (and its graph plane) died with
                        # the crash: drop it so no later run reuses a broken
                        # pool; recovery replays on self-managed pools.
                        lease.invalidate(kill=True)
                        lease = None
                    if restarts > self._max_restarts:
                        raise
                    if self._graph_handle is None and self._registry is not None:
                        self._graph_handle = self._share_graph_plane(transport)
                    resume = None
                    if self._checkpoint_dir is not None:
                        resume = latest_valid_checkpoint(self._checkpoint_dir)
                        if resume is not None:
                            self._validate_resume(resume)
                    # An explicitly supplied resume point stays valid: never
                    # replay the work before it when nothing newer exists.
                    if external_resume is not None and (
                            resume is None
                            or resume.superstep < external_resume.superstep):
                        resume = external_resume
                    resumed_from = 0 if resume is None else resume.superstep
                finally:
                    if not leased:
                        self._shutdown_pool(pool, kill=crashed)
        finally:
            # Crash-safe cleanup: every segment is unlinked here no matter
            # how the run ended (success, exhausted restarts, KeyboardInterrupt).
            registry = self._registry
            self._registry = None
            self._graph_handle = None
            if registry is not None:
                registry.close()
        outcome.wall_clock_seconds = time.perf_counter() - start
        outcome.worker_restarts = restarts
        outcome.resumed_from = resumed_from
        outcome.checkpoints_written = self._ckpt_stats.written
        outcome.checkpoint_bytes = self._ckpt_stats.bytes
        outcome.checkpoint_seconds = self._ckpt_stats.seconds
        return outcome

    def _dispatch(self, pool, vertices, targets,
                  resume: CheckpointData | None) -> ParallelRunOutcome:
        if self._kind == "gas":
            if self._use_columnar_gas():
                return self._run_gas_columnar(pool, vertices, targets, resume)
            return self._run_gas(pool, vertices, targets, resume)
        if dict_state_forced():
            return self._run_bsp(pool, vertices, targets, resume)
        return self._run_bsp_columnar(pool, vertices, targets, resume)

    def _use_columnar_gas(self) -> bool:
        """Columnar GAS needs the vectorized kernel and no escape hatches."""
        from repro.snaple.kernel import kernel_supports

        return (
            not dict_state_forced()
            and not env_flag("SNAPLE_PARALLEL_SCALAR")
            and kernel_supports(self._config)
        )

    # ------------------------------------------------------------------
    # GAS coordination
    # ------------------------------------------------------------------
    def _run_gas(self, pool, vertices: list[int] | None,
                 targets: list[int] | None,
                 resume: CheckpointData | None) -> ParallelRunOutcome:
        from repro.snaple.program import build_snaple_steps

        graph, config = self._graph, self._config
        active = list(graph.vertices()) if vertices is None else list(vertices)
        if targets is None:
            targets = active
        active_set = set(active)
        active_owned = [
            [u for u in owned if u in active_set] for owned in self._owned
        ]
        data: dict[int, dict[str, Any]] = {u: {} for u in range(graph.num_vertices)}
        scores: dict[int, dict[int, float]] = {}
        acct = _Accounting.fresh(self._workers)
        start_step = 0
        if resume is not None:
            start_step = resume.superstep
            data = resume.state
            scores = resume.scores
            acct = _Accounting.from_payload(resume.accounting, self._workers)
        # A coordinator-side copy of the steps provides the metadata (gather
        # directions, step count); the computation itself runs in workers.
        steps = build_snaple_steps(config, graph, per_vertex_rng=True)

        for step_index in range(start_step, len(steps)):
            step = steps[step_index]
            step_start = time.perf_counter()
            tasks = []
            for w in range(self._workers):
                needed = self._boundary(w, active_owned[w], step.gather_direction)
                data_slice = {u: data[u] for u in active_owned[w]}
                boundary_bytes = 0
                for v in needed:
                    data_slice[v] = data[v]
                    boundary_bytes += payload_size_bytes(data[v])
                acct.shipped[w] += boundary_bytes
                tasks.append((w, step_index, active_owned[w], data_slice))
            results = self._map(pool, _gas_step_task, tasks)
            slowest = 0.0
            for w, (updates, step_scores, n_gather, n_apply, elapsed) in enumerate(results):
                data.update(updates)
                if step_scores:
                    scores.update(step_scores)
                acct.gathers[w] += n_gather
                acct.applies[w] += n_apply
                acct.compute_seconds[w] += elapsed
                slowest = max(slowest, elapsed)
            acct.sync_overhead += max(
                0.0, (time.perf_counter() - step_start) - slowest
            )
            if self._checkpoint_due(step_index + 1, len(steps)):
                self._write_checkpoint(step_index + 1, state=data,
                                       scores=scores, acct=acct)

        predictions = {u: list(data[u].get("predicted", [])) for u in targets}
        scores = {u: dict(scores.get(u, {})) for u in targets}
        return self._merge_outcome(predictions, scores, len(steps), acct, data)

    def _boundary(self, worker: int, active: list[int],
                  direction: EdgeDirection) -> list[int]:
        """Vertices whose data partition ``worker`` reads but does not own."""
        needed: set[int] = set()
        for u in active:
            for v in _gather_neighbors(self._graph, u, direction):
                if self._owner[v] != worker:
                    needed.add(v)
        return sorted(needed)

    # ------------------------------------------------------------------
    # Columnar GAS coordination (the state-plane path)
    # ------------------------------------------------------------------
    def _boundary_columnar(self, worker: int, active: np.ndarray,
                           indptr: np.ndarray, indices: np.ndarray,
                           degrees: np.ndarray) -> np.ndarray:
        """Vectorized out-edge boundary: remote vertices the gathers read."""
        if active.size == 0:
            return np.empty(0, dtype=np.int64)
        neighbors = indices[gather_slices(indptr[active], degrees[active])]
        remote = neighbors[self._owner_array[neighbors] != worker]
        return np.unique(remote)

    @staticmethod
    def _boundary_bytes(store: StateStore, name: str, rows: np.ndarray,
                        own_mask: np.ndarray) -> int:
        """Payload bytes of the boundary (not owned) rows of one field.

        Computed from the live column's lengths so the pickled-slice and
        shared-memory transports account *identically* — ``shipped`` is the
        logical boundary payload, part of the deterministic accounting the
        parity and resume suites compare bit-for-bit across flavours.
        """
        column = store._column(name)
        per_element = 8 if column._vals is None else 16
        return per_element * int(column.lengths[rows[~own_mask]].sum())

    def _run_gas_columnar(self, pool, vertices: list[int] | None,
                          targets: list[int] | None,
                          resume: CheckpointData | None) -> ParallelRunOutcome:
        """Algorithm 2's three GAS steps over the columnar state plane.

        The coordinator keeps one :class:`~repro.runtime.state.StateStore`;
        per (step, partition) it ships the owned+boundary column slices the
        step reads and bulk-merges the returned column rows.  Nothing that
        crosses a process boundary is a per-vertex Python object, and the
        kernel consumes the slices without dict marshalling — this is what
        ``benchmarks/bench_state_plane.py`` measures against the dict path.
        """
        from repro.snaple.kernel import LazyScores
        from repro.snaple.program import snaple_state_schema

        graph = self._graph
        num_vertices = graph.num_vertices
        active = list(graph.vertices()) if vertices is None else list(vertices)
        if targets is None:
            targets = active
        active_set = set(active)
        active_owned = [
            np.asarray([u for u in owned if u in active_set], dtype=np.int64)
            for owned in self._owned
        ]
        use_plane = self._registry is not None
        use_ooc = isinstance(self._registry, MemmapRegistry)
        store = StateStore(
            num_vertices, snaple_state_schema(),
            allocator=self._column_allocator(),
        )
        transport: list[int] = []
        acct = _Accounting.fresh(self._workers)
        start_step = 0
        if resume is not None:
            start_step = resume.superstep
            store.merge(resume.state)
            acct = _Accounting.from_payload(resume.accounting, self._workers)
        indptr, indices = graph.csr_out_adjacency()
        degrees = np.diff(indptr)
        owner = self._owner_array

        workers = self._workers
        prediction_parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        score_parts: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []

        num_steps = 3
        for step_index in range(start_step, num_steps):
            step_start = time.perf_counter()
            route_seconds = 0.0
            step_transport = 0
            tasks = []
            for w in range(workers):
                owned_active = active_owned[w]
                if step_index == 0:
                    payload: Any = None
                else:
                    boundary = self._boundary_columnar(
                        w, owned_active, indptr, indices, degrees
                    )
                    rows = np.concatenate([owned_active, boundary])
                    rows.sort()
                    own_mask = owner[rows] == w
                    if step_index == 1:
                        payload = (
                            state_slice_handle(store, rows, ("gamma",))
                            if use_plane else store.extract(rows, ("gamma",))
                        )
                        acct.shipped[w] += self._boundary_bytes(
                            store, "gamma", rows, own_mask
                        )
                    else:
                        # The recommendation step probes only the targets'
                        # own Γ̂ but reads every neighbor's kept map.
                        if use_plane:
                            gamma_slice: Any = state_slice_handle(
                                store, owned_active, ("gamma",)
                            )
                            sims_slice: Any = state_slice_handle(
                                store, rows, ("sims",)
                            )
                        else:
                            gamma_slice = store.extract(owned_active,
                                                        ("gamma",))
                            sims_slice = store.extract(rows, ("sims",))
                        acct.shipped[w] += self._boundary_bytes(
                            store, "sims", rows, own_mask
                        )
                        payload = (gamma_slice, sims_slice)
                step_transport += _transport_nbytes(payload)
                tasks.append((w, step_index, owned_active, payload))
            route_seconds += time.perf_counter() - step_start
            results = self._map(pool, _gas_step_task_columnar, tasks)
            merge_start = time.perf_counter()
            slowest = 0.0
            for w, (result, n_gather, n_apply, elapsed) in enumerate(results):
                owned_active = active_owned[w]
                if step_index == 0:
                    counts, flat = result
                    store.set_rows("gamma", owned_active, counts, flat)
                elif step_index == 1:
                    counts, ids, vals = result
                    store.set_rows("sims", owned_active, counts, ids, vals)
                else:
                    pred_counts, pred_flat, score_counts, candidates, values = result
                    store.set_rows("predicted", owned_active, pred_counts,
                                   pred_flat)
                    prediction_parts.append(
                        (owned_active, pred_counts, pred_flat)
                    )
                    score_parts.append(
                        (owned_active, score_counts, candidates, values)
                    )
                acct.gathers[w] += n_gather
                acct.applies[w] += n_apply
                acct.compute_seconds[w] += elapsed
                slowest = max(slowest, elapsed)
            route_seconds += time.perf_counter() - merge_start
            acct.routing.append(route_seconds)
            acct.plane.append(store.nbytes())
            transport.append(step_transport)
            acct.sync_overhead += max(
                0.0, (time.perf_counter() - step_start) - slowest
            )
            # GAS columnar scores exist only after the (never-checkpointed)
            # final step, so snapshots carry an empty score map.
            if self._checkpoint_due(step_index + 1, num_steps):
                self._write_checkpoint(step_index + 1, state=store.snapshot(),
                                       scores={}, acct=acct)

        predictions_all: dict[int, list[int]] = {}
        for rows, counts, flat in prediction_parts:
            values = flat.tolist()
            position = 0
            for u, count in zip(rows.tolist(), counts.tolist()):
                predictions_all[u] = values[position:position + count]
                position += count
        predictions = {u: predictions_all.get(u, []) for u in targets}

        # One LazyScores view over the concatenated per-partition arrays:
        # per-vertex score dicts materialize only if somebody reads them.
        all_targets: list[int] = []
        starts_parts: list[np.ndarray] = []
        counts_parts: list[np.ndarray] = []
        candidate_parts: list[np.ndarray] = []
        value_parts: list[np.ndarray] = []
        offset = 0
        for rows, score_counts, candidates, values in score_parts:
            starts_parts.append(offset + np.cumsum(score_counts) - score_counts)
            counts_parts.append(score_counts)
            candidate_parts.append(candidates)
            value_parts.append(values)
            all_targets.extend(rows.tolist())
            offset += int(candidates.size)
        if all_targets:
            starts_all = np.concatenate(starts_parts)
            counts_all = np.concatenate(counts_parts)
            position_of = {u: i for i, u in enumerate(all_targets)}
            target_rows = np.asarray(
                [position_of.get(u, -1) for u in targets], dtype=np.int64
            )
            known = target_rows >= 0
            target_starts = np.where(known, starts_all[target_rows], 0)
            target_counts = np.where(known, counts_all[target_rows], 0)
            scores: Any = LazyScores(
                list(targets), target_starts, target_counts,
                np.concatenate(candidate_parts), np.concatenate(value_parts),
            )
        else:
            scores = {u: {} for u in targets}

        outcome = self._merge_outcome(predictions, scores, num_steps, acct,
                                      store.rows_mapping())
        outcome.shm_enabled = use_plane and not use_ooc
        outcome.ooc_enabled = use_ooc
        outcome.transport_bytes = transport
        return outcome

    # ------------------------------------------------------------------
    # BSP coordination
    # ------------------------------------------------------------------
    def _run_bsp(self, pool, vertices: list[int] | None,
                 targets: list[int] | None,
                 resume: CheckpointData | None) -> ParallelRunOutcome:
        from repro.snaple.bsp_program import SnapleBspProgram

        graph, config = self._graph, self._config
        program = SnapleBspProgram(config, per_vertex_rng=True)
        aggregator_fns = program.aggregators()
        num_vertices = graph.num_vertices
        state: dict[int, dict[str, Any]] = {
            u: program.initial_state(u) for u in range(num_vertices)
        }
        active = [False] * num_vertices
        for u in (range(num_vertices) if vertices is None else vertices):
            active[u] = True
        inbox: dict[int, list[Any]] = {}
        aggregated: dict[str, Any] = {}
        scores: dict[int, dict[int, float]] = {}
        acct = _Accounting.fresh(self._workers)
        superstep = 0
        if resume is not None:
            superstep = resume.superstep
            state = resume.state
            active = resume.active
            inbox = resume.messages
            aggregated = resume.aggregated
            scores = resume.scores
            acct = _Accounting.from_payload(resume.accounting, self._workers)

        while superstep < program.max_supersteps:
            if not any(active) and not inbox:
                break
            step_start = time.perf_counter()
            tasks = []
            compute_lists = []
            for w in range(self._workers):
                compute_list = [
                    u for u in self._owned[w] if active[u] or inbox.get(u)
                ]
                compute_lists.append(compute_list)
                tasks.append((
                    w,
                    superstep,
                    {u: state[u] for u in compute_list},
                    compute_list,
                    {u: inbox[u] for u in compute_list if u in inbox},
                    aggregated,
                ))
            results = self._map(pool, _bsp_step_task, tasks)
            slowest = 0.0
            all_messages: list[tuple[int, int, Any]] = []
            contributions: dict[str, Any] = {}
            for w, result in enumerate(results):
                (updates, sent, halted, step_scores, worker_contrib,
                 n_messages, n_computed, elapsed) = result
                state.update(updates)
                if step_scores:
                    scores.update(step_scores)
                for u in compute_lists[w]:
                    active[u] = True
                for u in halted:
                    active[u] = False
                all_messages.extend(sent)
                for name, value in worker_contrib.items():
                    if name in contributions:
                        contributions[name] = aggregator_fns[name](
                            contributions[name], value
                        )
                    else:
                        contributions[name] = value
                acct.gathers[w] += n_messages
                acct.applies[w] += n_computed
                acct.compute_seconds[w] += elapsed
                slowest = max(slowest, elapsed)
            # Deliver sender-sorted so floating-point accumulation order in
            # the receivers is independent of the partitioning (the sort is
            # stable, preserving each sender's emission order).
            all_messages.sort(key=lambda message: message[0])
            inbox = {}
            for sender, target, value in all_messages:
                inbox.setdefault(target, []).append(value)
                if self._owner[sender] != self._owner[target]:
                    acct.shipped[self._owner[target]] += payload_size_bytes(value)
            for target in inbox:
                active[target] = True
            aggregated = contributions
            superstep += 1
            acct.sync_overhead += max(
                0.0, (time.perf_counter() - step_start) - slowest
            )
            if self._checkpoint_due(superstep, None):
                self._write_checkpoint(superstep, state=state, scores=scores,
                                       acct=acct, messages=inbox,
                                       active=active, aggregated=aggregated)

        if targets is None:
            targets = list(graph.vertices()) if vertices is None else list(vertices)
        predictions = {u: list(state[u].get("predicted", [])) for u in targets}
        scores = {u: dict(scores.get(u, {})) for u in targets}
        return self._merge_outcome(predictions, scores, superstep, acct, state)

    def _run_bsp_columnar(self, pool, vertices: list[int] | None,
                          targets: list[int] | None,
                          resume: CheckpointData | None) -> ParallelRunOutcome:
        """The four-superstep BSP port over the columnar state plane.

        State ships as :class:`~repro.runtime.state.StateSlice` arrays and
        messages as :class:`~repro.runtime.state.MessageBlock` arrays; the
        blocks are stable-sorted by sender before delivery and split per
        partition with one :func:`np.searchsorted` pass, reproducing the
        dict path's delivery (and float accumulation) order exactly.
        """
        from repro.snaple.bsp_program import (
            MESSAGE_BASE_BYTES,
            MESSAGE_KINDS,
            SnapleBspProgram,
            snaple_bsp_state_schema,
        )

        graph, config = self._graph, self._config
        program = SnapleBspProgram(config, per_vertex_rng=True)
        aggregator_fns = program.aggregators()
        num_vertices = graph.num_vertices
        schema = snaple_bsp_state_schema()
        use_plane = self._registry is not None
        use_ooc = isinstance(self._registry, MemmapRegistry)
        store = StateStore(
            num_vertices, schema,
            allocator=self._column_allocator(),
        )
        field_names = schema.names()
        transport: list[int] = []
        active = np.zeros(num_vertices, dtype=bool)
        inbox = MessageBlock.empty(MESSAGE_KINDS)
        aggregated: dict[str, Any] = {}
        scores: dict[int, dict[int, float]] = {}
        acct = _Accounting.fresh(self._workers)
        superstep = 0
        if resume is not None:
            superstep = resume.superstep
            store.merge(resume.state)
            active = resume.active
            inbox = resume.messages
            aggregated = resume.aggregated
            scores = resume.scores
            acct = _Accounting.from_payload(resume.accounting, self._workers)
        else:
            for u in range(num_vertices):
                initial = program.initial_state(u)
                if initial:
                    row = store.row(u)
                    for key, value in initial.items():
                        row[key] = value
            initial_active = (range(num_vertices) if vertices is None
                              else list(vertices))
            if len(initial_active):
                active[np.asarray(initial_active, dtype=np.int64)] = True
        owner = self._owner_array
        workers = self._workers

        while superstep < program.max_supersteps:
            if not active.any() and inbox.num_messages == 0:
                break
            step_start = time.perf_counter()
            route_seconds = 0.0
            step_transport = 0
            inbox_segment: str | None = None
            has_message = np.zeros(num_vertices, dtype=bool)
            if inbox.num_messages:
                has_message[np.unique(inbox.receiver)] = True
                keys = owner[inbox.receiver]
                if use_plane:
                    # Same routing as split_by — stable owner sort + one
                    # searchsorted pass — but the ordered block is packed
                    # into one per-superstep segment and each partition
                    # receives only its [start, end) range over it.
                    order = np.argsort(keys, kind="stable")
                    ordered = inbox.take(order)
                    bounds = np.searchsorted(
                        keys[order], np.arange(workers + 1, dtype=np.int64)
                    )
                    block_handle = message_block_handle(self._registry,
                                                        ordered)
                    inbox_segment = block_handle.segment
                    inbox_parts: list[Any] = [
                        ShmMessageRange(ordered.kinds, block_handle,
                                        int(bounds[w]), int(bounds[w + 1]))
                        for w in range(workers)
                    ]
                else:
                    inbox_parts = inbox.split_by(keys, workers)
            else:
                inbox_parts = [MessageBlock.empty(MESSAGE_KINDS)] * workers
            tasks = []
            compute_lists = []
            for w in range(workers):
                owned = self._owned_arrays[w]
                compute_w = owned[active[owned] | has_message[owned]]
                compute_lists.append(compute_w)
                state_payload = (
                    state_slice_handle(store, compute_w, field_names)
                    if use_plane else store.extract(compute_w, field_names)
                )
                step_transport += _transport_nbytes(state_payload)
                step_transport += _transport_nbytes(inbox_parts[w])
                tasks.append((
                    w,
                    superstep,
                    state_payload,
                    compute_w,
                    inbox_parts[w],
                    aggregated,
                ))
            route_seconds += time.perf_counter() - step_start
            results = self._map(pool, _bsp_step_task_columnar, tasks)
            if inbox_segment is not None:
                # The superstep is over (results fully materialized), so the
                # per-superstep message segment can be unlinked immediately.
                self._registry.release(inbox_segment)
            merge_start = time.perf_counter()
            slowest = 0.0
            blocks: list[MessageBlock] = []
            contributions: dict[str, Any] = {}
            for w, result in enumerate(results):
                (updates, outbox, halted, step_scores, worker_contrib,
                 n_messages, n_computed, elapsed) = result
                store.merge(updates)
                if step_scores:
                    scores.update(step_scores)
                active[compute_lists[w]] = True
                if halted:
                    active[np.asarray(halted, dtype=np.int64)] = False
                blocks.append(outbox)
                for name, value in worker_contrib.items():
                    if name in contributions:
                        contributions[name] = aggregator_fns[name](
                            contributions[name], value
                        )
                    else:
                        contributions[name] = value
                acct.gathers[w] += n_messages
                acct.applies[w] += n_computed
                acct.compute_seconds[w] += elapsed
                slowest = max(slowest, elapsed)
            merged = MessageBlock.concat(blocks)
            if merged.num_messages:
                # Deliver sender-sorted (stable) so the float accumulation
                # order in the receivers matches the dict path exactly.
                merged = merged.sorted_by_sender()
                sizes = merged.payload_bytes(MESSAGE_BASE_BYTES)
                cross = owner[merged.sender] != owner[merged.receiver]
                if cross.any():
                    per_partition = np.bincount(
                        owner[merged.receiver][cross],
                        weights=sizes[cross], minlength=workers,
                    )
                    for w in range(workers):
                        acct.shipped[w] += int(per_partition[w])
                active[np.unique(merged.receiver)] = True
            inbox = merged
            aggregated = contributions
            superstep += 1
            route_seconds += time.perf_counter() - merge_start
            acct.routing.append(route_seconds)
            acct.plane.append(store.nbytes())
            transport.append(step_transport)
            acct.sync_overhead += max(
                0.0, (time.perf_counter() - step_start) - slowest
            )
            if self._checkpoint_due(superstep, None):
                self._write_checkpoint(superstep, state=store.snapshot(),
                                       scores=scores, acct=acct,
                                       messages=inbox, active=active,
                                       aggregated=aggregated)

        if targets is None:
            targets = (list(graph.vertices()) if vertices is None
                       else list(vertices))
        rows = store.rows()
        predictions = {u: list(rows[u].get("predicted", [])) for u in targets}
        scores = {u: dict(scores.get(u, {})) for u in targets}
        outcome = self._merge_outcome(predictions, scores, superstep, acct,
                                      store.rows_mapping())
        outcome.shm_enabled = use_plane and not use_ooc
        outcome.ooc_enabled = use_ooc
        outcome.transport_bytes = transport
        return outcome

    # ------------------------------------------------------------------
    def _merge_outcome(self, predictions, scores, supersteps,
                       acct: _Accounting, vertex_data) -> ParallelRunOutcome:
        """Build per-partition reports and derive the merged totals from them."""
        partitions = []
        for w in range(self._workers):
            owned_predictions = [
                u for u in self._owned[w] if u in predictions
            ]
            partitions.append(PartitionReport(
                partition=w,
                num_vertices=len(self._owned[w]),
                num_predictions=len(owned_predictions),
                num_predicted_edges=sum(
                    len(predictions[u]) for u in owned_predictions
                ),
                gather_invocations=acct.gathers[w],
                apply_invocations=acct.applies[w],
                compute_seconds=acct.compute_seconds[w],
                shipped_bytes=acct.shipped[w],
            ))
        return ParallelRunOutcome(
            predictions=predictions,
            scores=scores,
            workers=self._workers,
            supersteps=supersteps,
            partitions=partitions,
            wall_clock_seconds=0.0,  # stamped by run()
            sync_overhead_seconds=acct.sync_overhead,
            exchanged_bytes=sum(acct.shipped),
            vertex_data=vertex_data,
            routing_seconds=list(acct.routing),
            state_plane_bytes=list(acct.plane),
        )


# ----------------------------------------------------------------------
# Convenience entry points used by the backends
# ----------------------------------------------------------------------
def run_parallel_gas(graph: DiGraph, config: SnapleConfig | None = None, *,
                     workers: int, partitioner: Any = None,
                     vertices: list[int] | None = None,
                     targets: list[int] | None = None,
                     seed: int | None = None,
                     pool: WorkerPoolLease | None = None,
                     **fault_tolerance: Any) -> ParallelRunOutcome:
    """Run Algorithm 2's GAS steps with partitions in parallel processes.

    ``fault_tolerance`` forwards the checkpoint/recovery options
    (``checkpoint_dir``, ``checkpoint_every``, ``resume_from``,
    ``max_restarts``, ``worker_timeout``, ``fault``) to
    :class:`ParallelExecutor`; ``pool`` optionally reuses a
    :class:`WorkerPoolLease` across runs.
    """
    executor = ParallelExecutor(graph, config, workers=workers, kind="gas",
                                partitioner=partitioner, seed=seed,
                                pool=pool, **fault_tolerance)
    return executor.run(vertices=vertices, targets=targets)


def run_parallel_bsp(graph: DiGraph, config: SnapleConfig | None = None, *,
                     workers: int, partitioner: Any = None,
                     vertices: list[int] | None = None,
                     targets: list[int] | None = None,
                     seed: int | None = None,
                     pool: WorkerPoolLease | None = None,
                     **fault_tolerance: Any) -> ParallelRunOutcome:
    """Run the four-superstep BSP port with partitions in parallel processes.

    ``fault_tolerance`` forwards the checkpoint/recovery options to
    :class:`ParallelExecutor` as in :func:`run_parallel_gas`; ``pool``
    optionally reuses a :class:`WorkerPoolLease` across runs.
    """
    executor = ParallelExecutor(graph, config, workers=workers, kind="bsp",
                                partitioner=partitioner, seed=seed,
                                pool=pool, **fault_tolerance)
    return executor.run(vertices=vertices, targets=targets)
