"""Shared-nothing parallel execution of SNAPLE across graph partitions.

Every engine in :mod:`repro.runtime` historically executed its supersteps in
a single Python process — the GAS/BSP cluster model only *simulated*
distribution.  This module makes the partitions real: the graph is split
into ``workers`` partitions, each partition is mapped to a worker process of
a :mod:`multiprocessing` pool, and the coordinator exchanges gather/scatter
state (GAS) or vertex messages (BSP) between supersteps, merging the
per-partition vertex state and accounting back into one
:class:`~repro.runtime.report.RunReport`.

Execution model
---------------
Workers are stateless between supersteps: for every superstep the
coordinator ships each partition the snapshot slice it needs (its own
vertices plus the boundary vertices its gathers read, or its inbox
messages), the worker runs the vertex program over its owned vertices, and
the coordinator merges the returned updates.  This gives *superstep-snapshot*
semantics: a vertex program must not read vertex-data fields written during
the same superstep.  SNAPLE's Algorithm 2 satisfies this by construction
(each step only reads keys written by earlier steps), which is why serial
and parallel runs produce identical predictions.

Determinism
-----------
Results are bit-identical for any worker count and any partitioner because

* every vertex draws randomness from its own stream derived from
  ``(seed, step, vertex)`` (see :func:`repro.snaple.program.vertex_rng`),
  never from a shared sequential stream;
* gathers combine in edge (CSR) order per vertex, exactly as the serial
  engine does on a single simulated machine;
* BSP inboxes are sorted by sender id before delivery, so floating-point
  accumulation order does not depend on which partition a sender lives on.

Ownership comes from the same partitioners the simulated engines use: the
GAS path masters vertices through :func:`repro.gas.partition.partition_graph`
(a vertex-cut ``GraphPartition``; each partition's masters go to one worker
process) and the BSP path through
:func:`repro.bsp.partition.partition_vertices` (an edge-cut).  A locality
aware partitioner (e.g. :class:`~repro.gas.partition.GreedyVertexCut`)
therefore reduces the boundary state shipped between supersteps.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigurationError, EngineError
from repro.gas.vertex_program import EdgeDirection, VertexProgram, payload_size_bytes
from repro.graph.digraph import DiGraph
from repro.snaple.config import SnapleConfig

__all__ = [
    "PartitionReport",
    "ParallelRunOutcome",
    "ParallelExecutor",
    "run_parallel_gas",
    "run_parallel_bsp",
    "validate_workers",
]

#: Upper bound on worker processes; far above any sensible laptop value but
#: low enough that a typo (``workers=400``) fails fast instead of forking
#: hundreds of interpreters.
MAX_WORKERS = 64


def validate_workers(workers: Any) -> int:
    """Validate a ``workers=`` option value, returning it as an ``int``."""
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ConfigurationError(
            f"workers must be an integer, got {workers!r}"
        )
    if not 1 <= workers <= MAX_WORKERS:
        raise ConfigurationError(
            f"workers must be between 1 and {MAX_WORKERS}, got {workers}"
        )
    return workers


# ----------------------------------------------------------------------
# Accounting
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PartitionReport:
    """Per-partition slice of a run's results and accounting.

    The merged :class:`~repro.runtime.report.RunReport` derives its totals
    from these records (every target vertex is owned by exactly one
    partition), so the sum of the per-partition counters always equals the
    report's totals — the accounting invariant the parity suite asserts.
    """

    partition: int
    num_vertices: int
    num_predictions: int
    num_predicted_edges: int
    gather_invocations: int
    apply_invocations: int
    compute_seconds: float
    shipped_bytes: int


@dataclass
class ParallelRunOutcome:
    """Merged result of one shared-nothing parallel run."""

    predictions: dict[int, list[int]]
    scores: dict[int, dict[int, float]]
    workers: int
    supersteps: int
    partitions: list[PartitionReport]
    wall_clock_seconds: float
    sync_overhead_seconds: float
    exchanged_bytes: int
    vertex_data: dict[int, dict[str, Any]] = field(default_factory=dict, repr=False)

    @property
    def per_partition_seconds(self) -> list[float]:
        return [partition.compute_seconds for partition in self.partitions]


# ----------------------------------------------------------------------
# Worker-process side.  Everything here must be module level (picklable by
# reference) and must only touch the state installed by the initializer.
# ----------------------------------------------------------------------
_WORKER_GRAPH: DiGraph | None = None
_WORKER_CONFIG: SnapleConfig | None = None


def _init_worker(graph: DiGraph, config: SnapleConfig) -> None:
    """Pool initializer: install the graph and config once per process."""
    global _WORKER_GRAPH, _WORKER_CONFIG
    _WORKER_GRAPH = graph
    _WORKER_CONFIG = config


def _worker_state() -> tuple[DiGraph, SnapleConfig]:
    if _WORKER_GRAPH is None or _WORKER_CONFIG is None:
        raise EngineError("parallel worker used before initialization")
    return _WORKER_GRAPH, _WORKER_CONFIG


def _gather_neighbors(graph: DiGraph, vertex: int,
                      direction: EdgeDirection) -> list[int]:
    """Incident neighbors in the order the serial engine gathers them."""
    if direction is EdgeDirection.OUT:
        return graph.out_neighbors(vertex).tolist()
    if direction is EdgeDirection.IN:
        return graph.in_neighbors(vertex).tolist()
    if direction is EdgeDirection.BOTH:
        return (graph.out_neighbors(vertex).tolist()
                + graph.in_neighbors(vertex).tolist())
    return []


def _run_gas_step(step: VertexProgram, graph: DiGraph, active: list[int],
                  data: dict[int, dict[str, Any]]) -> tuple[int, int]:
    """Run one GAS superstep over ``active`` against the snapshot ``data``."""
    if step.scatter_direction is not EdgeDirection.NONE:
        raise EngineError(
            "the shared-nothing parallel executor does not support scatter "
            f"phases (step {step.name!r})"
        )
    gathers = 0
    empty: dict[str, Any] = {}
    for u in active:
        u_data = data[u]
        gathered: Any = None
        has_value = False
        for v in _gather_neighbors(graph, u, step.gather_direction):
            value = step.gather(u, v, u_data, data.get(v, empty))
            gathers += 1
            if value is None:
                continue
            if has_value:
                gathered = step.sum(gathered, value)
            else:
                gathered = value
                has_value = True
        step.apply(u, u_data, gathered if has_value else None)
    return gathers, len(active)


def _gas_step_task(task: tuple[int, list[int], dict[int, dict[str, Any]]]):
    """One (partition, superstep) unit of GAS work, run in a worker process.

    ``task`` is ``(step_index, active owned vertices, snapshot slice)``; the
    result carries the updated owned vertex data, the step's side-channel
    scores (if any), invocation counts, and the compute time.

    When the scoring configuration is inside the vectorized design space
    (see :func:`repro.snaple.kernel.kernel_supports`) the partition's work
    runs through the CSR-native kernel instead of the per-vertex scalar
    loop — bit-identical results (the kernel replicates the gather fold
    order and the per-vertex RNG draws), so serial engines, ``workers=1``
    and ``workers=N`` all still agree exactly.  Set
    ``SNAPLE_PARALLEL_SCALAR=1`` to force the scalar step implementations.
    """
    import os

    from repro.snaple import kernel
    from repro.snaple.program import build_snaple_steps

    step_index, active, data = task
    graph, config = _worker_state()
    start = time.perf_counter()
    use_kernel = (
        kernel.kernel_supports(config)
        and not os.environ.get("SNAPLE_PARALLEL_SCALAR")
    )
    kept_scores = None
    if use_kernel:
        if step_index == 0:
            gathers, applies = kernel.gas_sample_step(graph, config, active, data)
        elif step_index == 1:
            gathers, applies = kernel.gas_similarity_step(graph, config, active, data)
        else:
            step_scores, gathers, applies = kernel.gas_recommendation_step(
                graph, config, active, data
            )
            kept_scores = step_scores or None
    else:
        # Steps are rebuilt per task: with per-vertex RNG they carry no
        # state across vertices, so a fresh instance keeps workers stateless
        # and the outcome independent of which tasks land on which process.
        step = build_snaple_steps(config, graph, per_vertex_rng=True)[step_index]
        gathers, applies = _run_gas_step(step, graph, active, data)
        scores = getattr(step, "collected_scores", None)
        kept_scores = (
            {u: scores[u] for u in active if u in scores} if scores else None
        )
    updates = {u: data[u] for u in active}
    return updates, kept_scores, gathers, applies, time.perf_counter() - start


def _bsp_step_task(task):
    """One (partition, superstep) unit of BSP work, run in a worker process.

    ``task`` is ``(superstep, owned states, vertices to compute, inboxes,
    aggregated values)``.  Messages are returned as ``(sender, target,
    value)`` triples so the coordinator can deliver them in a globally
    deterministic (sender-sorted) order.
    """
    from repro.snaple.bsp_program import SnapleBspProgram

    superstep, states, compute_list, inboxes, aggregated = task
    graph, config = _worker_state()
    start = time.perf_counter()
    program = SnapleBspProgram(config, per_vertex_rng=True)
    aggregator_fns = program.aggregators()
    sent: list[tuple[int, int, Any]] = []
    halted: list[int] = []
    contributions: dict[str, Any] = {}
    messages_processed = 0

    def contribute(name: str, value: Any) -> None:
        if name not in aggregator_fns:
            raise EngineError(
                f"program {program.name!r} aggregated to undeclared "
                f"aggregator {name!r}"
            )
        if name in contributions:
            contributions[name] = aggregator_fns[name](contributions[name], value)
        else:
            contributions[name] = value

    from repro.bsp.vertex import ComputeContext

    def send(source: int, target: int, value: Any) -> None:
        if not 0 <= target < graph.num_vertices:
            raise EngineError(f"message sent to non-existent vertex {target}")
        sent.append((source, target, value))

    def halt(vertex: int) -> None:
        halted.append(vertex)

    for u in compute_list:
        messages = inboxes.get(u, [])
        messages_processed += len(messages)
        context = ComputeContext(
            superstep=superstep,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            vertex=u,
            out_neighbors=graph.out_neighbors(u).tolist(),
            send=send,
            halt=halt,
            aggregate=contribute,
            aggregated_values=aggregated,
        )
        program.compute(states[u], messages, context)

    updates = {u: states[u] for u in compute_list}
    kept_scores = {
        u: program.collected_scores[u]
        for u in compute_list
        if u in program.collected_scores
    }
    elapsed = time.perf_counter() - start
    return (updates, sent, halted, kept_scores or None, contributions,
            messages_processed, len(compute_list), elapsed)


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
def _pool_context():
    """Prefer ``fork`` (cheap, shares the imported modules) when available."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class ParallelExecutor:
    """Coordinates one shared-nothing parallel run over a worker pool.

    Parameters
    ----------
    graph, config:
        The input graph and SNAPLE configuration.
    workers:
        Number of partitions / worker processes (1..``MAX_WORKERS``).
    kind:
        ``"gas"`` to execute Algorithm 2's three GAS steps, ``"bsp"`` for
        the four-superstep BSP port.
    partitioner:
        Optional placement strategy: a
        :class:`~repro.gas.partition.Partitioner` (vertex-cut; masters
        become owners) for ``kind="gas"`` or a
        :class:`~repro.bsp.partition.VertexPartitioner` (edge-cut) for
        ``kind="bsp"``.  Placement only affects how much boundary state is
        shipped, never the predictions.
    seed:
        Partitioner seed; defaults to the configuration's seed.
    """

    def __init__(self, graph: DiGraph, config: SnapleConfig | None = None, *,
                 workers: int, kind: str, partitioner: Any = None,
                 seed: int | None = None) -> None:
        if kind not in ("gas", "bsp"):
            raise ConfigurationError(f"unknown parallel execution kind {kind!r}")
        self._graph = graph
        self._config = config if config is not None else SnapleConfig()
        self._workers = validate_workers(workers)
        self._kind = kind
        self._owner = self._assign_owners(partitioner,
                                          self._config.seed if seed is None else seed)
        self._owned: list[list[int]] = [[] for _ in range(self._workers)]
        for u in range(graph.num_vertices):
            self._owned[self._owner[u]].append(u)

    def _assign_owners(self, partitioner: Any, seed: int) -> list[int]:
        """One owning partition per vertex, from the engine's own partitioner."""
        if self._kind == "gas":
            from repro.gas.partition import partition_graph

            placement = partition_graph(
                self._graph, self._workers, partitioner=partitioner, seed=seed
            )
            return [int(m) for m in placement.vertex_master]
        from repro.bsp.partition import partition_vertices

        placement = partition_vertices(
            self._graph, self._workers, partitioner=partitioner, seed=seed
        )
        return [int(m) for m in placement.vertex_machine]

    # ------------------------------------------------------------------
    def run(self, vertices: list[int] | None = None, *,
            targets: list[int] | None = None) -> ParallelRunOutcome:
        """Execute the program and merge per-partition results.

        ``vertices`` restricts the computation's active set (all by
        default); ``targets`` restricts which vertices appear in the merged
        predictions/scores (defaults to ``vertices``).  The BSP path uses a
        full active set with restricted targets because message passing
        needs every neighborhood in flight.
        """
        start = time.perf_counter()
        ctx = _pool_context()
        with ctx.Pool(
            processes=self._workers,
            initializer=_init_worker,
            initargs=(self._graph, self._config),
        ) as pool:
            if self._kind == "gas":
                outcome = self._run_gas(pool, vertices, targets)
            else:
                outcome = self._run_bsp(pool, vertices, targets)
        outcome.wall_clock_seconds = time.perf_counter() - start
        return outcome

    # ------------------------------------------------------------------
    # GAS coordination
    # ------------------------------------------------------------------
    def _run_gas(self, pool, vertices: list[int] | None,
                 targets: list[int] | None) -> ParallelRunOutcome:
        from repro.snaple.program import build_snaple_steps

        graph, config = self._graph, self._config
        active = list(graph.vertices()) if vertices is None else list(vertices)
        if targets is None:
            targets = active
        active_set = set(active)
        active_owned = [
            [u for u in owned if u in active_set] for owned in self._owned
        ]
        data: dict[int, dict[str, Any]] = {u: {} for u in range(graph.num_vertices)}
        scores: dict[int, dict[int, float]] = {}
        # A coordinator-side copy of the steps provides the metadata (gather
        # directions, step count); the computation itself runs in workers.
        steps = build_snaple_steps(config, graph, per_vertex_rng=True)

        compute_seconds = [0.0] * self._workers
        gathers = [0] * self._workers
        applies = [0] * self._workers
        shipped = [0] * self._workers
        sync_overhead = 0.0

        for step_index, step in enumerate(steps):
            step_start = time.perf_counter()
            tasks = []
            for w in range(self._workers):
                needed = self._boundary(w, active_owned[w], step.gather_direction)
                data_slice = {u: data[u] for u in active_owned[w]}
                boundary_bytes = 0
                for v in needed:
                    data_slice[v] = data[v]
                    boundary_bytes += payload_size_bytes(data[v])
                shipped[w] += boundary_bytes
                tasks.append((step_index, active_owned[w], data_slice))
            results = pool.map(_gas_step_task, tasks)
            slowest = 0.0
            for w, (updates, step_scores, n_gather, n_apply, elapsed) in enumerate(results):
                data.update(updates)
                if step_scores:
                    scores.update(step_scores)
                gathers[w] += n_gather
                applies[w] += n_apply
                compute_seconds[w] += elapsed
                slowest = max(slowest, elapsed)
            sync_overhead += max(0.0, (time.perf_counter() - step_start) - slowest)

        predictions = {u: list(data[u].get("predicted", [])) for u in targets}
        scores = {u: dict(scores.get(u, {})) for u in targets}
        return self._merge_outcome(
            predictions, scores, len(steps), compute_seconds, gathers, applies,
            shipped, sync_overhead, data,
        )

    def _boundary(self, worker: int, active: list[int],
                  direction: EdgeDirection) -> list[int]:
        """Vertices whose data partition ``worker`` reads but does not own."""
        needed: set[int] = set()
        for u in active:
            for v in _gather_neighbors(self._graph, u, direction):
                if self._owner[v] != worker:
                    needed.add(v)
        return sorted(needed)

    # ------------------------------------------------------------------
    # BSP coordination
    # ------------------------------------------------------------------
    def _run_bsp(self, pool, vertices: list[int] | None,
                 targets: list[int] | None) -> ParallelRunOutcome:
        from repro.snaple.bsp_program import SnapleBspProgram

        graph, config = self._graph, self._config
        program = SnapleBspProgram(config, per_vertex_rng=True)
        aggregator_fns = program.aggregators()
        num_vertices = graph.num_vertices
        state: dict[int, dict[str, Any]] = {
            u: program.initial_state(u) for u in range(num_vertices)
        }
        active = [False] * num_vertices
        for u in (range(num_vertices) if vertices is None else vertices):
            active[u] = True
        inbox: dict[int, list[Any]] = {}
        aggregated: dict[str, Any] = {}
        scores: dict[int, dict[int, float]] = {}

        compute_seconds = [0.0] * self._workers
        gathers = [0] * self._workers
        applies = [0] * self._workers
        shipped = [0] * self._workers
        sync_overhead = 0.0
        superstep = 0

        while superstep < program.max_supersteps:
            if not any(active) and not inbox:
                break
            step_start = time.perf_counter()
            tasks = []
            compute_lists = []
            for w in range(self._workers):
                compute_list = [
                    u for u in self._owned[w] if active[u] or inbox.get(u)
                ]
                compute_lists.append(compute_list)
                tasks.append((
                    superstep,
                    {u: state[u] for u in compute_list},
                    compute_list,
                    {u: inbox[u] for u in compute_list if u in inbox},
                    aggregated,
                ))
            results = pool.map(_bsp_step_task, tasks)
            slowest = 0.0
            all_messages: list[tuple[int, int, Any]] = []
            contributions: dict[str, Any] = {}
            for w, result in enumerate(results):
                (updates, sent, halted, step_scores, worker_contrib,
                 n_messages, n_computed, elapsed) = result
                state.update(updates)
                if step_scores:
                    scores.update(step_scores)
                for u in compute_lists[w]:
                    active[u] = True
                for u in halted:
                    active[u] = False
                all_messages.extend(sent)
                for name, value in worker_contrib.items():
                    if name in contributions:
                        contributions[name] = aggregator_fns[name](
                            contributions[name], value
                        )
                    else:
                        contributions[name] = value
                gathers[w] += n_messages
                applies[w] += n_computed
                compute_seconds[w] += elapsed
                slowest = max(slowest, elapsed)
            # Deliver sender-sorted so floating-point accumulation order in
            # the receivers is independent of the partitioning (the sort is
            # stable, preserving each sender's emission order).
            all_messages.sort(key=lambda message: message[0])
            inbox = {}
            for sender, target, value in all_messages:
                inbox.setdefault(target, []).append(value)
                if self._owner[sender] != self._owner[target]:
                    shipped[self._owner[target]] += payload_size_bytes(value)
            for target in inbox:
                active[target] = True
            aggregated = contributions
            superstep += 1
            sync_overhead += max(0.0, (time.perf_counter() - step_start) - slowest)

        if targets is None:
            targets = list(graph.vertices()) if vertices is None else list(vertices)
        predictions = {u: list(state[u].get("predicted", [])) for u in targets}
        scores = {u: dict(scores.get(u, {})) for u in targets}
        return self._merge_outcome(
            predictions, scores, superstep, compute_seconds, gathers, applies,
            shipped, sync_overhead, state,
        )

    # ------------------------------------------------------------------
    def _merge_outcome(self, predictions, scores, supersteps, compute_seconds,
                       gathers, applies, shipped, sync_overhead,
                       vertex_data) -> ParallelRunOutcome:
        """Build per-partition reports and derive the merged totals from them."""
        partitions = []
        for w in range(self._workers):
            owned_predictions = [
                u for u in self._owned[w] if u in predictions
            ]
            partitions.append(PartitionReport(
                partition=w,
                num_vertices=len(self._owned[w]),
                num_predictions=len(owned_predictions),
                num_predicted_edges=sum(
                    len(predictions[u]) for u in owned_predictions
                ),
                gather_invocations=gathers[w],
                apply_invocations=applies[w],
                compute_seconds=compute_seconds[w],
                shipped_bytes=shipped[w],
            ))
        return ParallelRunOutcome(
            predictions=predictions,
            scores=scores,
            workers=self._workers,
            supersteps=supersteps,
            partitions=partitions,
            wall_clock_seconds=0.0,  # stamped by run()
            sync_overhead_seconds=sync_overhead,
            exchanged_bytes=sum(shipped),
            vertex_data=vertex_data,
        )


# ----------------------------------------------------------------------
# Convenience entry points used by the backends
# ----------------------------------------------------------------------
def run_parallel_gas(graph: DiGraph, config: SnapleConfig | None = None, *,
                     workers: int, partitioner: Any = None,
                     vertices: list[int] | None = None,
                     targets: list[int] | None = None,
                     seed: int | None = None) -> ParallelRunOutcome:
    """Run Algorithm 2's GAS steps with partitions in parallel processes."""
    executor = ParallelExecutor(graph, config, workers=workers, kind="gas",
                                partitioner=partitioner, seed=seed)
    return executor.run(vertices=vertices, targets=targets)


def run_parallel_bsp(graph: DiGraph, config: SnapleConfig | None = None, *,
                     workers: int, partitioner: Any = None,
                     vertices: list[int] | None = None,
                     targets: list[int] | None = None,
                     seed: int | None = None) -> ParallelRunOutcome:
    """Run the four-superstep BSP port with partitions in parallel processes."""
    executor = ParallelExecutor(graph, config, workers=workers, kind="bsp",
                                partitioner=partitioner, seed=seed)
    return executor.run(vertices=vertices, targets=targets)
