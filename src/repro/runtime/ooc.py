"""Out-of-core state plane: file-backed segments for parallel execution.

The shared-memory plane (:mod:`repro.runtime.shm`) bounds the *transport*
cost of shared-nothing execution but not its *memory* cost: every CSR array
and every state column still occupies RAM-backed ``/dev/shm`` segments, so
peak RSS grows linearly with the graph.  This module swaps the segment
substrate from POSIX shared memory to plain files mapped with ``mmap``:

* the graph ships as a :class:`MemmapGraphHandle` — the path of an on-disk
  container (:mod:`repro.graph.storage`) each worker maps read-only in
  O(1), reusing a pre-existing container (``DiGraph.load_memmap``) without
  copying a byte;
* state columns and message blocks live in *spool files* created by a
  :class:`MemmapRegistry` under one run-scoped spool directory
  (``$TMPDIR/snaple-ooc-*``, override the parent with ``SNAPLE_OOC_DIR``);
* what crosses the process boundary is unchanged — the same
  ``ArrayHandle`` descriptors, except the segment "name" is an absolute
  file path, which :class:`~repro.runtime.shm.AttachmentCache` recognizes
  and maps read-only.

Because file-backed ``MAP_SHARED`` pages are reclaimable page cache rather
than anonymous memory, the kernel can evict cold graph and column pages
under pressure: peak RSS stays bounded while the on-disk working set grows
(``benchmarks/bench_out_of_core.py`` gates on exactly this).  Coherence
needs no flushing — coordinator writes and worker reads meet in the same
page cache on one host.

Everything else is inherited verbatim: :class:`MemmapRegistry` reuses the
shm registry's packing, release and accounting logic because
:class:`FileSegment` duck-types ``multiprocessing.shared_memory``'s
segment object (``name``/``buf``/``size``/``close``/``unlink`` plus the
``_buf``/``_mmap`` attributes the BufferError disarm path pokes), and
:class:`MemmapColumnAllocator` *is* the shm column allocator over a
different registry.  Results are bit-identical across the in-RAM, shm and
memmap tiers — the parity suite asserts it — and checkpoints carry the
``columnar`` flavour on all three, so resume works across tiers in both
directions.

Enable with ``SNAPLE_OOC=1`` (or ``snaple --graph-format memmap``).  The
spool directory is removed on registry close (``finally``-driven, like the
shm plane); there is no resource-tracker backstop for plain files, so the
CI job additionally asserts no ``snaple-ooc-*`` directories survive a run.
"""

from __future__ import annotations

import mmap
import os
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.runtime.shm import ShmColumnAllocator, ShmRegistry
from repro.runtime.state import env_flag

__all__ = [
    "SPOOL_PREFIX",
    "FileSegment",
    "MemmapColumnAllocator",
    "MemmapGraphHandle",
    "MemmapRegistry",
    "attach_file_segment",
    "list_spool_dirs",
    "ooc_enabled",
    "spool_graph",
]

#: Every spool directory name starts with this, so leak checks can find
#: strays (the on-disk analogue of ``shm.SEGMENT_PREFIX``).
SPOOL_PREFIX = "snaple-ooc-"


def ooc_enabled() -> bool:
    """Whether ``SNAPLE_OOC=1`` selects the out-of-core state plane."""
    return env_flag("SNAPLE_OOC")


def _spool_parent() -> str:
    return os.environ.get("SNAPLE_OOC_DIR") or tempfile.gettempdir()


def list_spool_dirs() -> list[str]:
    """Live spool directories under the configured parent.

    Used by the leak tests and the CI leak check, mirroring
    :func:`repro.runtime.shm.list_segments`.
    """
    try:
        return sorted(
            name for name in os.listdir(_spool_parent())
            if name.startswith(SPOOL_PREFIX)
        )
    except OSError:
        return []


class FileSegment:
    """One spool file mapped like a shared-memory segment.

    Duck-types the segment objects :class:`~repro.runtime.shm.ShmRegistry`
    and :class:`~repro.runtime.shm.AttachmentCache` traffic in: ``name`` is
    the *absolute file path* (which is what makes the descriptors
    self-routing — the attachment cache maps any name that is a path),
    ``buf`` is a memoryview over the mapping, and ``close``/``unlink``
    split exactly as they do for POSIX shm (mapping vs. name).  The
    ``_buf``/``_mmap`` attributes exist so the registry's BufferError
    disarm path works unchanged when a NumPy view outlives a release.
    """

    def __init__(self, path: str | Path, size: int | None = None, *,
                 create: bool = False) -> None:
        path = os.path.abspath(os.fspath(path))
        if create:
            if size is None or size < 1:
                raise ValueError("creating a FileSegment requires size >= 1")
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o600)
            try:
                os.ftruncate(fd, size)
                self._mmap = mmap.mmap(fd, size, access=mmap.ACCESS_WRITE)
            finally:
                os.close(fd)
        else:
            fd = os.open(path, os.O_RDONLY)
            try:
                size = os.fstat(fd).st_size
                self._mmap = mmap.mmap(fd, size, access=mmap.ACCESS_READ)
            finally:
                os.close(fd)
        self._path = path
        self._size = int(size)
        self._buf: memoryview | None = memoryview(self._mmap)

    @property
    def name(self) -> str:
        return self._path

    @property
    def size(self) -> int:
        return self._size

    @property
    def buf(self) -> memoryview:
        return self._buf

    def close(self) -> None:
        """Drop the mapping (raises ``BufferError`` while views are live)."""
        if self._buf is not None:
            self._buf.release()
            self._buf = None
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None

    def unlink(self) -> None:
        """Remove the file name; existing mappings stay valid."""
        try:
            os.unlink(self._path)
        except FileNotFoundError:
            pass


def attach_file_segment(path: str) -> FileSegment:
    """Worker-side read-only attachment to a coordinator spool file."""
    return FileSegment(path)


class MemmapRegistry(ShmRegistry):
    """An :class:`~repro.runtime.shm.ShmRegistry` over on-disk spool files.

    Only segment creation differs — everything else (per-segment release,
    the array/block packing helpers, byte accounting) is inherited, which
    is what keeps the shm and out-of-core transports behaviourally
    identical.  ``close`` additionally removes the spool directory.
    """

    def __init__(self, spool_parent: str | Path | None = None) -> None:
        super().__init__()
        parent = os.fspath(spool_parent) if spool_parent else _spool_parent()
        self._spool_dir = Path(tempfile.mkdtemp(prefix=SPOOL_PREFIX,
                                                dir=parent))

    @property
    def spool_dir(self) -> Path:
        return self._spool_dir

    def create(self, nbytes: int) -> FileSegment:
        """A new spool-file segment of at least ``nbytes`` (1-byte floor)."""
        size = max(1, int(nbytes))
        self._sequence += 1
        path = self._spool_dir / f"seg-{self._sequence:06d}.bin"
        segment = FileSegment(path, size, create=True)
        self._segments[segment.name] = segment
        self._created_bytes += size
        return segment

    def close(self) -> None:
        """Release every segment and remove the spool directory.  Idempotent."""
        super().close()
        shutil.rmtree(self._spool_dir, ignore_errors=True)


class MemmapColumnAllocator(ShmColumnAllocator):
    """StateStore columns in spool files instead of shared memory.

    The allocator logic is inherited untouched: ``empty``/``free``/
    ``describe`` only speak to the registry and the segment's ``buf``/
    ``name``, both of which :class:`FileSegment` provides.  Descriptors
    produced by :meth:`describe` therefore carry file paths, which the
    worker-side attachment cache maps read-only.
    """

    def __init__(self, registry: MemmapRegistry) -> None:
        super().__init__(registry)


@dataclass(frozen=True)
class MemmapGraphHandle:
    """The whole CSR graph as an on-disk container, shipped by path.

    The out-of-core analogue of :class:`~repro.runtime.shm.ShmGraphHandle`:
    instead of packing the eight CSR arrays into a segment, the coordinator
    ships the path of a :mod:`repro.graph.storage` container and each
    worker maps it read-only in O(1).
    """

    path: str
    num_vertices: int
    num_edges: int

    def load(self):
        """Map the container as a read-only graph (worker side)."""
        from repro.graph.storage import load_graph_memmap

        return load_graph_memmap(self.path)


def spool_graph(registry: MemmapRegistry, graph) -> MemmapGraphHandle:
    """A graph handle over an on-disk container, spooling one if needed.

    A graph that already lives in a container (``DiGraph.load_memmap``)
    ships as its existing path — zero copies; an in-RAM graph is persisted
    once into the registry's spool directory (removed with it on close).
    """
    path = graph.memmap_path
    if path is None:
        from repro.graph.storage import save_graph_memmap

        path = registry.spool_dir / "graph"
        save_graph_memmap(graph, path)
    return MemmapGraphHandle(str(path), graph.num_vertices, graph.num_edges)
