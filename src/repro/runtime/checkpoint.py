"""Checkpoint/recovery for the shared-nothing parallel executor.

SNAPLE's pitch is link prediction on commodity graph-processing clusters,
where a worker process dying mid-superstep is the common case, not the
exception.  This module gives :class:`~repro.runtime.parallel.ParallelExecutor`
a durable superstep boundary: at a configurable cadence the coordinator
snapshots everything the next superstep needs — the vertex state (the
columnar :class:`~repro.runtime.state.StateStore` content or the legacy
per-vertex dicts), the pending :class:`~repro.runtime.state.MessageBlock`
inboxes, the collected candidate scores, and the deterministic accounting
counters — and on a crash the run resumes from the last snapshot with
**bit-identical** final predictions versus an uninterrupted run.

Bit-identical resume is possible because every random draw in the parallel
engines comes from a per-vertex stream derived from ``(seed, step, vertex)``
(:func:`repro.snaple.program.vertex_rng`): the RNG has no mutable cursor to
snapshot — re-executing a superstep replays exactly the same draws.  The
manifest still records the seed and the stream scheme so a resume against a
different configuration is rejected instead of silently diverging.

On-disk layout
--------------
One checkpoint is one directory named ``step-NNNNNN`` under the checkpoint
root (``NNNNNN`` = the next superstep to execute on resume)::

    <checkpoint_root>/
        step-000001/
            manifest.json     # format version, fingerprint, shard checksums
            state.bin         # vertex state (StateSlice arrays or dicts)
            messages.bin      # pending MessageBlock / inboxes, active flags
            runmeta.bin       # collected scores + accounting counters
        step-000002/
            ...
        LATEST                # last fully committed step number

Writes are atomic: shards and manifest land in a hidden temporary directory
first (each file fsynced), which is then :func:`os.replace`-renamed to its
final ``step-NNNNNN`` name.  A crash while writing leaves only a ``.tmp-*``
directory behind, never a half-valid checkpoint.  Every shard's byte size
and SHA-256 digest live in the manifest; :func:`load_checkpoint` verifies
them before unpickling, so corruption surfaces as a clean
:class:`~repro.errors.CheckpointError` instead of wrong predictions.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import CheckpointError

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "MANIFEST_NAME",
    "CheckpointData",
    "CheckpointStats",
    "FaultSpec",
    "checkpoint_fingerprint",
    "latest_valid_checkpoint",
    "list_checkpoint_dirs",
    "load_checkpoint",
    "maybe_crash",
    "resolve_checkpoint",
    "save_checkpoint",
    "vertices_digest",
]

#: Bumped whenever the shard payload layout changes incompatibly.
CHECKPOINT_FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"
LATEST_NAME = "LATEST"
_STEP_PREFIX = "step-"


# ----------------------------------------------------------------------
# Payload
# ----------------------------------------------------------------------
@dataclass
class CheckpointData:
    """Everything a parallel run needs to restart at a superstep boundary.

    ``superstep`` is the *next* superstep to execute; ``state`` /
    ``messages`` / ``active`` / ``aggregated`` hold the flavour-specific
    loop state (columnar :class:`~repro.runtime.state.StateSlice` and
    :class:`~repro.runtime.state.MessageBlock` arrays, or the legacy dicts),
    ``scores`` the candidate score maps collected so far, and
    ``accounting`` the deterministic per-partition counters (gathers,
    applies, shipped bytes) plus the timing accumulated before the snapshot.
    ``fingerprint`` pins the graph/config/worker identity the snapshot is
    valid for; ``rng`` records the seed and the per-vertex stream scheme.
    """

    kind: str
    flavour: str
    superstep: int
    workers: int
    fingerprint: dict[str, Any]
    state: Any
    messages: Any = None
    scores: Any = field(default_factory=dict)
    active: Any = None
    aggregated: dict[str, Any] = field(default_factory=dict)
    accounting: dict[str, Any] = field(default_factory=dict)
    rng: dict[str, Any] = field(default_factory=dict)


@dataclass
class CheckpointStats:
    """Checkpoint accounting surfaced in ``RunReport.extra``."""

    written: int = 0
    bytes: int = 0
    seconds: float = 0.0


def vertices_digest(vertices) -> str:
    """A stable digest of a run's active vertex set (``"all"`` when unset).

    The snapshotted state only covers the supersteps' active vertices, so a
    resume with a different ``vertices=`` subset would replay against
    partial state; the digest pins the subset in the fingerprint.
    """
    if vertices is None:
        return "all"
    payload = ",".join(str(int(u)) for u in sorted(vertices))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def checkpoint_fingerprint(graph, config, *, kind: str, flavour: str,
                           workers: int, vertices: str = "all") -> dict[str, Any]:
    """The identity a checkpoint is valid for.

    A resume is accepted only when the fingerprint matches exactly: the same
    graph shape, scoring configuration, execution kind, state flavour,
    worker count and active vertex subset (as a :func:`vertices_digest`).
    Anything else could silently change the partitioning, the RNG streams,
    or the state layout.
    """
    return {
        "num_vertices": int(graph.num_vertices),
        "num_edges": int(graph.num_edges),
        "config": config.describe(),
        "seed": int(config.seed),
        "kind": kind,
        "flavour": flavour,
        "workers": int(workers),
        "vertices": vertices,
    }


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------
def _fsync_write(path: Path, blob: bytes) -> None:
    with open(path, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())


class _HashingSink:
    """Write-through file wrapper that hashes and counts streamed bytes.

    Lets :func:`save_checkpoint` pickle a shard straight to disk — the
    historical ``pickle.dumps`` materialized every shard fully in memory,
    doubling peak RSS for state-plane-sized snapshots — while still
    recording the byte count and SHA-256 digest the manifest needs.
    """

    def __init__(self, handle) -> None:
        self._handle = handle
        self._digest = hashlib.sha256()
        self.nbytes = 0

    def write(self, blob) -> int:
        # Protocol-5 pickle hands over PickleBuffer objects (no len());
        # a memoryview covers those and plain bytes alike.
        view = memoryview(blob)
        written = self._handle.write(view)
        self._digest.update(view)
        self.nbytes += view.nbytes
        return written

    def hexdigest(self) -> str:
        return self._digest.hexdigest()


#: Chunk size for streamed shard hashing on load (bounded regardless of
#: shard size).
_HASH_CHUNK_BYTES = 4 * 1024 * 1024


def _shard_payloads(data: CheckpointData) -> dict[str, dict[str, Any]]:
    """The three shard files a checkpoint is split across.

    Splitting state, messages and run metadata keeps each shard
    independently verifiable — the fault-injection suite corrupts them one
    at a time — and keeps the (large) state shard rewrite-free when only
    metadata would change.
    """
    return {
        "state.bin": {"state": data.state},
        "messages.bin": {
            "messages": data.messages,
            "active": data.active,
            "aggregated": data.aggregated,
        },
        "runmeta.bin": {"scores": data.scores, "accounting": data.accounting},
    }


def save_checkpoint(root: str | Path, data: CheckpointData) -> int:
    """Atomically write ``data`` under ``root``; returns the payload bytes.

    The checkpoint becomes visible only through the final directory rename,
    so readers never observe a partially written snapshot.  An existing
    checkpoint for the same superstep is replaced.
    """
    root = Path(root)
    step_dir = root / f"{_STEP_PREFIX}{data.superstep:06d}"
    tmp_dir = root / f".tmp-{step_dir.name}-{os.getpid()}"
    try:
        root.mkdir(parents=True, exist_ok=True)
        if tmp_dir.exists():
            shutil.rmtree(tmp_dir)
        tmp_dir.mkdir()
        shards: dict[str, dict[str, Any]] = {}
        total = 0
        for name, payload in _shard_payloads(data).items():
            with open(tmp_dir / name, "wb") as handle:
                sink = _HashingSink(handle)
                pickle.dump(payload, sink, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                os.fsync(handle.fileno())
            shards[name] = {
                "bytes": sink.nbytes,
                "sha256": sink.hexdigest(),
            }
            total += sink.nbytes
        manifest = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "kind": data.kind,
            "flavour": data.flavour,
            "superstep": data.superstep,
            "workers": data.workers,
            "fingerprint": data.fingerprint,
            "rng": data.rng,
            "shards": shards,
        }
        _fsync_write(tmp_dir / MANIFEST_NAME,
                     json.dumps(manifest, indent=2, sort_keys=True).encode())
        if step_dir.exists():
            shutil.rmtree(step_dir)
        os.replace(tmp_dir, step_dir)
    except OSError as exc:
        raise CheckpointError(
            f"cannot write checkpoint {step_dir}: {exc}"
        ) from exc
    finally:
        if tmp_dir.exists():
            shutil.rmtree(tmp_dir, ignore_errors=True)
    # The LATEST pointer is a purely informational breadcrumb for humans
    # inspecting a checkpoint directory; readers always discover snapshots
    # by scanning step-* directories, so it is written without fsync and a
    # stale or missing pointer is harmless.
    latest_tmp = root / f".{LATEST_NAME}.tmp"
    try:
        latest_tmp.write_bytes(f"{data.superstep}\n".encode())
        os.replace(latest_tmp, root / LATEST_NAME)
    except OSError:
        latest_tmp.unlink(missing_ok=True)
    return total


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------
def _step_number(path: Path) -> int | None:
    name = path.name
    if not name.startswith(_STEP_PREFIX):
        return None
    try:
        return int(name[len(_STEP_PREFIX):])
    except ValueError:
        return None


def list_checkpoint_dirs(root: str | Path) -> list[Path]:
    """Checkpoint step directories under ``root``, oldest first."""
    root = Path(root)
    if not root.is_dir():
        return []
    found = [
        (number, path)
        for path in root.iterdir()
        if path.is_dir() and (number := _step_number(path)) is not None
    ]
    return [path for _, path in sorted(found)]


def _read_manifest(step_dir: Path) -> dict[str, Any]:
    manifest_path = step_dir / MANIFEST_NAME
    try:
        blob = manifest_path.read_bytes()
    except OSError as exc:
        raise CheckpointError(
            f"checkpoint {step_dir} has no readable manifest: {exc}"
        ) from exc
    try:
        manifest = json.loads(blob)
    except ValueError as exc:
        raise CheckpointError(
            f"checkpoint manifest {manifest_path} is truncated or not valid "
            f"JSON: {exc}"
        ) from exc
    if not isinstance(manifest, dict) or "shards" not in manifest:
        raise CheckpointError(
            f"checkpoint manifest {manifest_path} is missing its shard table"
        )
    version = manifest.get("format_version")
    if version != CHECKPOINT_FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint {step_dir} has format version {version!r}; this "
            f"build reads version {CHECKPOINT_FORMAT_VERSION}"
        )
    return manifest


def _read_shard(step_dir: Path, name: str, expected: dict[str, Any]) -> Any:
    path = step_dir / name
    digest = hashlib.sha256()
    size = 0
    try:
        with open(path, "rb") as handle:
            # Hash in bounded chunks: the verify pass never holds the whole
            # shard in memory, matching the streamed write path.
            while chunk := handle.read(_HASH_CHUNK_BYTES):
                digest.update(chunk)
                size += len(chunk)
    except OSError as exc:
        raise CheckpointError(
            f"checkpoint shard {path} is missing or unreadable: {exc}"
        ) from exc
    if size != int(expected.get("bytes", -1)):
        raise CheckpointError(
            f"checkpoint shard {path} is {size} bytes but the manifest "
            f"recorded {expected.get('bytes')}; the checkpoint is truncated "
            "or corrupt"
        )
    if digest.hexdigest() != expected.get("sha256"):
        raise CheckpointError(
            f"checkpoint shard {path} failed its checksum "
            f"(sha256 {digest.hexdigest()} != manifest "
            f"{expected.get('sha256')}); refusing to resume from corrupt "
            "state"
        )
    try:
        with open(path, "rb") as handle:
            return pickle.load(handle)
    except Exception as exc:  # pickle raises a zoo of exception types
        raise CheckpointError(
            f"checkpoint shard {path} passed its checksum but cannot be "
            f"deserialized: {exc}"
        ) from exc


def load_checkpoint(step_dir: str | Path) -> CheckpointData:
    """Load and verify one checkpoint step directory.

    Every shard's size and SHA-256 digest are checked against the manifest
    before anything is unpickled; any mismatch, truncation, or missing file
    raises :class:`~repro.errors.CheckpointError`.
    """
    step_dir = Path(step_dir)
    manifest = _read_manifest(step_dir)
    shards = {
        name: _read_shard(step_dir, name, expected)
        for name, expected in manifest["shards"].items()
    }
    state_shard = shards.get("state.bin", {})
    messages_shard = shards.get("messages.bin", {})
    runmeta_shard = shards.get("runmeta.bin", {})
    return CheckpointData(
        kind=manifest.get("kind", ""),
        flavour=manifest.get("flavour", ""),
        superstep=int(manifest.get("superstep", 0)),
        workers=int(manifest.get("workers", 0)),
        fingerprint=dict(manifest.get("fingerprint", {})),
        state=state_shard.get("state"),
        messages=messages_shard.get("messages"),
        scores=runmeta_shard.get("scores", {}),
        active=messages_shard.get("active"),
        aggregated=dict(messages_shard.get("aggregated") or {}),
        accounting=dict(runmeta_shard.get("accounting") or {}),
        rng=dict(manifest.get("rng", {})),
    )


def resolve_checkpoint(path: str | Path) -> CheckpointData:
    """Load a checkpoint from a step directory *or* a checkpoint root.

    Given a root, the newest step directory is loaded **strictly**: if it —
    or the root's only checkpoint — is corrupt, the error propagates rather
    than silently falling back to older (or no) state.  Explicit resumes
    must never hide corruption.
    """
    path = Path(path)
    if (path / MANIFEST_NAME).exists():
        return load_checkpoint(path)
    steps = list_checkpoint_dirs(path)
    if not steps:
        raise CheckpointError(
            f"{path} contains no checkpoints (no {_STEP_PREFIX}* directory "
            f"with a {MANIFEST_NAME})"
        )
    return load_checkpoint(steps[-1])


def latest_valid_checkpoint(root: str | Path) -> CheckpointData | None:
    """The newest checkpoint under ``root`` that verifies, or ``None``.

    Used by crash *recovery*, where falling back past a corrupt newest
    checkpoint (or to a from-scratch restart) is the right behaviour —
    determinism guarantees the same final answer from any superstep.
    """
    for step_dir in reversed(list_checkpoint_dirs(root)):
        try:
            return load_checkpoint(step_dir)
        except CheckpointError:
            continue
    return None


# ----------------------------------------------------------------------
# Fault injection (test harness)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultSpec:
    """Deterministic one-shot crash injection for worker processes.

    The worker executing ``partition``'s task at ``superstep`` hard-exits
    (``os._exit``) *once*: the first process to trigger atomically creates
    ``token_path`` (``O_CREAT | O_EXCL``) before dying, and every later
    attempt — including the respawned worker re-running the same task after
    recovery — sees the token and proceeds normally.  The token file makes
    "kill worker N at superstep K" reproducible across pool restarts without
    any shared in-memory state.
    """

    superstep: int
    partition: int
    token_path: str
    exit_code: int = 13


def maybe_crash(fault: FaultSpec | None, superstep: int, partition: int) -> None:
    """Crash the current process if ``fault`` targets this (step, partition)."""
    if fault is None:
        return
    if fault.superstep != superstep or fault.partition != partition:
        return
    try:
        fd = os.open(fault.token_path,
                     os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return  # already fired once; behave normally on retry
    os.write(fd, b"crashed\n")
    os.close(fd)
    os._exit(fault.exit_code)
