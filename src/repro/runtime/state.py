"""Columnar state plane: array-backed vertex state and message routing.

The engines historically kept per-vertex state as one Python ``dict`` per
vertex and shuttled per-message objects between supersteps.  On anything
beyond toy graphs the engine layer then spends most of its time building,
copying and pickling those dicts — not computing.  This module replaces that
layer with a structure-of-arrays design:

* :class:`StateStore` — vertex state as one NumPy-backed *column* per field,
  with the set of fields declared up front by the vertex program through a
  typed :class:`StateSchema`.  Scalar fields are flat arrays; variable-length
  fields (neighborhood samples, similarity maps) are ragged columns (flat
  value buffer + per-vertex offsets) that expose zero-copy row views and
  CSR-shaped bulk access for the vectorized kernel.
* :class:`MessageBlock` — a batch of messages as parallel ``sender`` /
  ``receiver`` / payload arrays instead of a list of message objects.
  Blocks concatenate, sort by sender, and split per partition with a few
  array operations, which is what lets the shared-nothing executor route
  supersteps' traffic as raw arrays.
* :class:`VertexRow` — a per-vertex :class:`~collections.abc.Mapping` view
  over the store so scalar vertex programs keep their historical
  ``state["field"]`` read/write protocol while the data lives in columns.

Compatibility contract
----------------------
The state plane is a drop-in replacement for the dict path: results are
bit-identical (the parity suites assert this for every backend × worker
count) and the simulated-cluster accounting is unchanged —
:meth:`VertexRow.nbytes` reproduces exactly what
:func:`repro.gas.vertex_program.payload_size_bytes` would charge for the
equivalent dict.  Setting ``SNAPLE_DICT_STATE=1`` forces every engine back
onto the legacy dict path (kept for one release; see
:func:`dict_state_forced`).
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

import numpy as np

from repro.errors import EngineError

__all__ = [
    "ArrayAllocator",
    "FieldKind",
    "StateField",
    "StateSchema",
    "StateStore",
    "StateSlice",
    "VertexRow",
    "StateRows",
    "MessageBlock",
    "MessageBlockBuilder",
    "dict_state_forced",
    "env_flag",
    "common_state_schema",
    "gather_slices",
    "indptr_from_counts",
]


def env_flag(name: str) -> bool:
    """A boolean environment flag: set and not one of ``'' / 0 / false / no``."""
    value = os.environ.get(name, "")
    return value.strip().lower() not in ("", "0", "false", "no")


def dict_state_forced() -> bool:
    """Whether ``SNAPLE_DICT_STATE=1`` forces the legacy dict-state path.

    The escape hatch keeps the historical per-vertex-dict execution path
    alive for one release; the parity suite runs both paths and asserts
    bit-identical results.  ``SNAPLE_DICT_STATE=0`` (or ``false``/``no``)
    explicitly selects the columnar default.
    """
    return env_flag("SNAPLE_DICT_STATE")


def gather_slices(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat indices concatenating the ranges ``[starts[i], starts[i]+counts[i])``.

    The per-range shift is computed on the (short) range arrays so only one
    repeat and one add run over the (long) output.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    shift = starts - (np.cumsum(counts) - counts)
    out = np.repeat(shift, counts)
    out += np.arange(total, dtype=np.int64)
    return out


def indptr_from_counts(counts: np.ndarray) -> np.ndarray:
    """CSR ``indptr`` (length ``counts.size + 1``) from per-row counts."""
    indptr = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr


_indptr_from_counts = indptr_from_counts


# ----------------------------------------------------------------------
# Schema
# ----------------------------------------------------------------------
class FieldKind(Enum):
    """Storage class of one state field."""

    #: One fixed-width value per vertex (``rank``, ``distance``, ...).
    SCALAR = "scalar"
    #: A variable-length list of vertex ids per vertex (``gamma``, ...).
    INT_LIST = "int_list"
    #: An insertion-ordered ``{vertex id: float}`` map per vertex (``sims``).
    INT_FLOAT_MAP = "int_float_map"


@dataclass(frozen=True)
class StateField:
    """One declared field of a vertex program's state.

    ``dtype`` only applies to :attr:`FieldKind.SCALAR` fields and is stored
    as a NumPy dtype *name* so the declaration stays hashable.
    """

    name: str
    kind: FieldKind
    dtype: str = "float64"

    def numpy_dtype(self) -> np.dtype:
        return np.dtype(self.dtype)


class StateSchema:
    """The typed set of state fields a vertex program declares.

    Engines build a :class:`StateStore` from the schema; programs that do
    not declare one (``state_schema()`` returning ``None``) keep the legacy
    per-vertex dicts.
    """

    __slots__ = ("_fields", "_by_name")

    def __init__(self, fields: Iterable[StateField]) -> None:
        self._fields = tuple(fields)
        self._by_name = {}
        for spec in self._fields:
            if not isinstance(spec, StateField):
                raise EngineError(f"not a StateField: {spec!r}")
            if spec.name in self._by_name:
                raise EngineError(f"duplicate state field {spec.name!r}")
            self._by_name[spec.name] = spec

    @property
    def fields(self) -> tuple[StateField, ...]:
        return self._fields

    def names(self) -> tuple[str, ...]:
        return tuple(spec.name for spec in self._fields)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[StateField]:
        return iter(self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    def __getitem__(self, name: str) -> StateField:
        return self._by_name[name]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StateSchema):
            return NotImplemented
        return self._fields == other._fields

    def __hash__(self) -> int:
        return hash(self._fields)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{spec.name}:{spec.kind.value}" for spec in self._fields
        )
        return f"StateSchema({inner})"


def common_state_schema(programs: Iterable[Any]) -> StateSchema | None:
    """The shared schema of a program sequence, or ``None`` for dict state.

    Every program must declare the *same* schema (the steps of one run share
    one store); a single undeclared or diverging schema falls the whole run
    back to the legacy dict path.
    """
    schema: StateSchema | None = None
    for program in programs:
        getter = getattr(program, "state_schema", None)
        declared = getter() if callable(getter) else None
        if declared is None:
            return None
        if schema is None:
            schema = declared
        elif declared != schema:
            return None
    return schema


# ----------------------------------------------------------------------
# Columns
# ----------------------------------------------------------------------
class ArrayAllocator:
    """Default column-buffer allocator: process-private ``np.empty``.

    The allocator seam is what lets the shared-nothing executor host
    column buffers in POSIX shared memory (:mod:`repro.runtime.shm`)
    without the columns knowing: every buffer (re)allocation — initial
    construction, :meth:`_RaggedColumn._reserve` growth and compaction —
    funnels through :meth:`empty` / :meth:`free`.  Buffers from
    :meth:`empty` are uninitialized; callers fill them.
    """

    def empty(self, length: int, dtype: Any) -> np.ndarray:
        return np.empty(int(length), dtype=np.dtype(dtype))

    def free(self, array: np.ndarray) -> None:
        """Release a buffer obtained from :meth:`empty` (no-op here)."""

    def describe(self, array: np.ndarray, length: int | None = None):
        """Turn a live buffer into a picklable by-reference descriptor.

        The descriptor seam of the zero-copy transports: allocators whose
        buffers other processes can attach to — shared-memory segments
        (:class:`~repro.runtime.shm.ShmColumnAllocator`) and on-disk spool
        files (:class:`~repro.runtime.ooc.MemmapColumnAllocator`) — return
        an :class:`~repro.runtime.shm.ArrayHandle` here.  The process-
        private default cannot ship buffers by reference.
        """
        raise EngineError(
            "process-private column buffers cannot be shipped by reference; "
            "use an allocator with an attachable backing store"
        )


class _ScalarColumn:
    """One fixed-width value per vertex plus a present mask."""

    __slots__ = ("values", "present", "_num_present", "_alloc")

    def __init__(self, num_vertices: int, dtype: np.dtype,
                 alloc: ArrayAllocator | None = None) -> None:
        self._alloc = alloc if alloc is not None else ArrayAllocator()
        self.values = self._alloc.empty(num_vertices, dtype)
        self.values[:] = 0
        self.present = self._alloc.empty(num_vertices, bool)
        self.present[:] = False
        self._num_present = 0

    def set(self, u: int, value: Any) -> None:
        self.values[u] = value
        if not self.present[u]:
            self.present[u] = True
            self._num_present += 1

    def get(self, u: int) -> Any:
        return self.values[u].item()

    def nbytes(self) -> int:
        # Dict-accounting parity: one 8-byte int/float per present value.
        return 8 * self._num_present

    def array_nbytes(self) -> int:
        return int(self.values.nbytes) + int(self.present.nbytes)


class _RaggedColumn:
    """Variable-length rows in one growable flat buffer (+ offsets).

    Rows are rewritten by appending at the tail (the old region becomes
    garbage); the column compacts itself in vertex order when the garbage
    outweighs the live payload.  ``INT_FLOAT_MAP`` columns keep a parallel
    ``float64`` value buffer sharing the id buffer's offsets.
    """

    __slots__ = ("starts", "lengths", "_ids", "_vals", "_used", "_live",
                 "_alloc")

    def __init__(self, num_vertices: int, *, with_values: bool,
                 alloc: ArrayAllocator | None = None) -> None:
        self._alloc = alloc if alloc is not None else ArrayAllocator()
        self.starts = self._alloc.empty(num_vertices, np.int64)
        self.starts[:] = -1
        self.lengths = self._alloc.empty(num_vertices, np.int64)
        self.lengths[:] = 0
        self._ids = self._alloc.empty(0, np.int64)
        self._vals = self._alloc.empty(0, np.float64) if with_values else None
        self._used = 0
        self._live = 0

    # -- capacity ------------------------------------------------------
    def _reserve(self, extra: int) -> None:
        needed = self._used + extra
        if needed <= self._ids.size:
            return
        capacity = max(needed, 2 * self._ids.size, 64)
        ids = self._alloc.empty(capacity, np.int64)
        ids[: self._used] = self._ids[: self._used]
        self._alloc.free(self._ids)
        self._ids = ids
        if self._vals is not None:
            vals = self._alloc.empty(capacity, np.float64)
            vals[: self._used] = self._vals[: self._used]
            self._alloc.free(self._vals)
            self._vals = vals

    def _maybe_compact(self) -> None:
        if self._used > 256 and self._used > 4 * max(self._live, 1):
            # Compaction implies garbage (used > live), so csr() took the
            # gather path and ids/vals are fresh arrays of the live payload.
            counts, ids, vals = self.csr()
            self._used = self._live = int(counts.sum())
            present = self.starts >= 0
            indptr = _indptr_from_counts(counts)
            # starts/lengths are fixed-size: rewrite in place so shm-backed
            # buffers keep their segments (counts IS self.lengths here).
            np.copyto(self.starts, np.where(present, indptr[:-1],
                                            np.int64(-1)))
            new_ids = self._alloc.empty(self._used, np.int64)
            new_ids[:] = ids[: self._used]
            self._alloc.free(self._ids)
            self._ids = new_ids
            if self._vals is not None:
                new_vals = self._alloc.empty(self._used, np.float64)
                new_vals[:] = vals[: self._used]
                self._alloc.free(self._vals)
                self._vals = new_vals

    # -- writes --------------------------------------------------------
    def set_row(self, u: int, ids: np.ndarray,
                vals: np.ndarray | None = None) -> None:
        n = int(ids.size)
        self._reserve(n)
        start = self._used
        self._ids[start:start + n] = ids
        if self._vals is not None:
            self._vals[start:start + n] = vals
        if self.starts[u] >= 0:
            self._live -= int(self.lengths[u])
        self.starts[u] = start
        self.lengths[u] = n
        self._used += n
        self._live += n
        self._maybe_compact()

    def set_rows(self, rows: np.ndarray, counts: np.ndarray,
                 ids: np.ndarray, vals: np.ndarray | None = None) -> None:
        """Bulk write: ``ids`` concatenates the rows' payloads in order."""
        total = int(counts.sum())
        self._reserve(total)
        start = self._used
        self._ids[start:start + total] = ids
        if self._vals is not None:
            self._vals[start:start + total] = vals
        self._live -= int(self.lengths[rows][self.starts[rows] >= 0].sum())
        offsets = np.cumsum(counts) - counts
        self.starts[rows] = start + offsets
        self.lengths[rows] = counts
        self._used += total
        self._live += total
        self._maybe_compact()

    # -- reads ---------------------------------------------------------
    def present(self, u: int) -> bool:
        return bool(self.starts[u] >= 0)

    def row_ids(self, u: int) -> np.ndarray:
        start = self.starts[u]
        if start < 0:
            return np.empty(0, dtype=np.int64)
        return self._ids[start:start + self.lengths[u]]

    def row_vals(self, u: int) -> np.ndarray:
        start = self.starts[u]
        if start < 0:
            return np.empty(0, dtype=np.float64)
        return self._vals[start:start + self.lengths[u]]

    def csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """``(counts, ids, vals)`` over all vertices in ascending id order.

        Zero-copy when the live payload is already laid out contiguously in
        vertex order (the common case after bulk writes), a single gather
        otherwise.
        """
        counts = self.lengths
        indptr = _indptr_from_counts(counts)
        present = self.starts >= 0
        if self._live == self._used and np.array_equal(
                self.starts[present], indptr[:-1][present]):
            ids = self._ids[: self._used]
            vals = self._vals[: self._used] if self._vals is not None else None
            return counts, ids, vals
        positions = gather_slices(np.maximum(self.starts, 0), counts)
        ids = self._ids[positions]
        vals = self._vals[positions] if self._vals is not None else None
        return counts, ids, vals

    def gather(self, rows: np.ndarray
               ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None, np.ndarray]:
        """``(counts, ids, vals, present)`` restricted to ``rows``."""
        counts = self.lengths[rows]
        present = self.starts[rows] >= 0
        positions = gather_slices(np.maximum(self.starts[rows], 0), counts)
        ids = self._ids[positions]
        vals = self._vals[positions] if self._vals is not None else None
        return counts, ids, vals, present

    def nbytes(self) -> int:
        # Dict-accounting parity: 8 bytes per id (+8 per float value).
        per_element = 8 if self._vals is None else 16
        return per_element * self._live

    def array_nbytes(self) -> int:
        total = int(self._ids.nbytes) + int(self.starts.nbytes)
        total += int(self.lengths.nbytes)
        if self._vals is not None:
            total += int(self._vals.nbytes)
        return total


# ----------------------------------------------------------------------
# Slices (the unit shipped between coordinator and workers)
# ----------------------------------------------------------------------
@dataclass
class StateSlice:
    """A picklable extract of selected fields for selected vertices.

    ``ragged`` maps a field name to ``(counts, ids, vals, present)`` arrays
    aligned with ``rows``; ``scalars`` maps a name to ``(values, present)``.
    Slices are what the shared-nothing executor ships instead of pickled
    per-vertex dicts — a handful of flat arrays regardless of vertex count.
    """

    num_vertices: int
    rows: np.ndarray
    ragged: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray | None, np.ndarray]] = field(
        default_factory=dict)
    scalars: dict[str, tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)

    def nbytes(self) -> int:
        """Payload bytes (dict-accounting units) carried by this slice."""
        total = 0
        for counts, ids, vals, _present in self.ragged.values():
            total += 8 * int(ids.size)
            if vals is not None:
                total += 8 * int(vals.size)
        for values, present in self.scalars.values():
            total += 8 * int(present.sum())
        return total

    def field_rows(self, name: str) -> tuple[np.ndarray, ...]:
        """The raw arrays of one ragged field: ``(rows, counts, ids, vals)``."""
        counts, ids, vals, _present = self.ragged[name]
        return self.rows, counts, ids, vals


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------
class StateStore:
    """Structure-of-arrays vertex state for one engine run.

    One column per schema field; per-vertex access goes through
    :class:`VertexRow` views (kept API-compatible with the historical state
    dicts), bulk access through :meth:`set_rows` / :meth:`field_csr` /
    :meth:`extract` / :meth:`merge`.
    """

    def __init__(self, num_vertices: int, schema: StateSchema,
                 allocator: ArrayAllocator | None = None) -> None:
        if num_vertices < 0:
            raise EngineError("num_vertices must be non-negative")
        self._num_vertices = int(num_vertices)
        self._schema = schema
        self._allocator = allocator if allocator is not None else ArrayAllocator()
        self._columns: dict[str, Any] = {}
        for spec in schema:
            if spec.kind is FieldKind.SCALAR:
                column: Any = _ScalarColumn(
                    num_vertices, spec.numpy_dtype(), self._allocator
                )
            else:
                column = _RaggedColumn(
                    num_vertices,
                    with_values=spec.kind is FieldKind.INT_FLOAT_MAP,
                    alloc=self._allocator,
                )
            self._columns[spec.name] = column
        self._row_views: list[VertexRow | None] = [None] * self._num_vertices

    # -- basics --------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    @property
    def schema(self) -> StateSchema:
        return self._schema

    @property
    def allocator(self) -> ArrayAllocator:
        return self._allocator

    def _column(self, name: str):
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"field {name!r} is not declared in the state schema "
                f"({', '.join(self._schema.names()) or 'empty'})"
            ) from None

    # -- per-vertex views ----------------------------------------------
    def row(self, u: int) -> "VertexRow":
        view = self._row_views[u]
        if view is None:
            view = VertexRow(self, u)
            self._row_views[u] = view
        return view

    def rows(self) -> "StateRows":
        """A list-like sequence of per-vertex :class:`VertexRow` views."""
        return StateRows(self)

    def rows_mapping(self) -> Mapping[int, "VertexRow"]:
        """A lazy ``{vertex: row view}`` mapping over all vertices."""
        return _RowsMapping(self)

    # -- bulk columnar access ------------------------------------------
    def set_rows(self, name: str, rows: np.ndarray, counts: np.ndarray,
                 ids: np.ndarray, vals: np.ndarray | None = None) -> None:
        """Bulk-write a ragged field: one flat payload covering ``rows``."""
        column = self._column(name)
        if isinstance(column, _ScalarColumn):
            raise EngineError(f"field {name!r} is scalar; use row views")
        column.set_rows(np.asarray(rows, dtype=np.int64),
                        np.asarray(counts, dtype=np.int64), ids, vals)
        self._invalidate(rows, name)

    def field_csr(self, name: str
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """All rows of a ragged field as ``(counts, ids, vals)`` CSR arrays.

        Zero-copy when the column is contiguous; this is the kernel's
        entry point into the state plane.
        """
        return self._column(name).csr()

    def extract(self, rows: np.ndarray, fields: Sequence[str]) -> StateSlice:
        """A :class:`StateSlice` of ``fields`` for ``rows`` (sorted copy)."""
        rows = np.sort(np.asarray(rows, dtype=np.int64))
        out = StateSlice(num_vertices=self._num_vertices, rows=rows)
        for name in fields:
            column = self._column(name)
            if isinstance(column, _ScalarColumn):
                out.scalars[name] = (column.values[rows],
                                     column.present[rows])
            else:
                out.ragged[name] = column.gather(rows)
        return out

    def snapshot(self) -> StateSlice:
        """A :class:`StateSlice` of every field for every vertex.

        This is the unit the checkpoint subsystem persists: restoring into a
        fresh store via :meth:`merge` reproduces the live state exactly
        (present masks included), which is what makes a resumed run
        bit-identical to an uninterrupted one.
        """
        rows = np.arange(self._num_vertices, dtype=np.int64)
        return self.extract(rows, self._schema.names())

    def merge(self, state_slice: StateSlice) -> None:
        """Write a slice's fields back into the store (bulk, per field)."""
        rows = state_slice.rows
        for name, (counts, ids, vals, present) in state_slice.ragged.items():
            column = self._column(name)
            if bool(present.all()):
                column.set_rows(rows, counts, ids, vals)
            else:
                kept = present
                positions = gather_slices(
                    indptr_from_counts(counts)[:-1][kept], counts[kept]
                )
                column.set_rows(
                    rows[kept], counts[kept], ids[positions],
                    vals[positions] if vals is not None else None,
                )
            self._invalidate(rows, name)
        for name, (values, present) in state_slice.scalars.items():
            column = self._column(name)
            set_rows = rows[present]
            column.values[set_rows] = values[present]
            newly = present & ~column.present[rows]
            column.present[rows[newly]] = True
            column._num_present += int(newly.sum())
            self._invalidate(rows, name)

    def _invalidate(self, rows: np.ndarray, name: str) -> None:
        views = self._row_views
        for u in np.asarray(rows).tolist():
            view = views[u]
            if view is not None:
                view._cache.pop(name, None)

    # -- accounting ----------------------------------------------------
    def nbytes(self) -> int:
        """Live payload bytes in dict-accounting units (see module doc)."""
        return sum(column.nbytes() for column in self._columns.values())

    def field_nbytes(self) -> dict[str, int]:
        """Per-field live payload bytes."""
        return {name: column.nbytes()
                for name, column in self._columns.items()}

    def array_nbytes(self) -> int:
        """Actual allocated bytes of the backing arrays."""
        return sum(column.array_nbytes() for column in self._columns.values())


class VertexRow(Mapping):
    """Dict-compatible per-vertex view over a :class:`StateStore`.

    Reads decode the vertex's column slice into the historical Python value
    (list / dict / scalar) and cache it; writes encode into the columns and
    refresh the cache, so repeated reads return the very same object the
    program stored — the property the scalar engines' set caches and float
    fold orders rely on.  In-place mutation of a decoded container is *not*
    written back; assign to the field instead (every in-tree program does).
    """

    __slots__ = ("_store", "_vertex", "_cache")

    def __init__(self, store: StateStore, vertex: int) -> None:
        self._store = store
        self._vertex = vertex
        self._cache: dict[str, Any] = {}

    # -- mapping protocol ----------------------------------------------
    def __getitem__(self, name: str) -> Any:
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        column = self._store._columns.get(name)
        if column is None:
            raise KeyError(name)
        u = self._vertex
        if isinstance(column, _ScalarColumn):
            if not column.present[u]:
                raise KeyError(name)
            return column.get(u)
        if not column.present(u):
            raise KeyError(name)
        if column._vals is None:
            value: Any = column.row_ids(u).tolist()
        else:
            value = dict(zip(column.row_ids(u).tolist(),
                             column.row_vals(u).tolist()))
        self._cache[name] = value
        return value

    def __setitem__(self, name: str, value: Any) -> None:
        column = self._store._columns.get(name)
        if column is None:
            raise KeyError(
                f"field {name!r} is not declared in the state schema of "
                f"{type(self).__name__}"
            )
        u = self._vertex
        if isinstance(column, _ScalarColumn):
            column.set(u, value)
            self._cache.pop(name, None)
            return
        if column._vals is None:
            column.set_row(u, np.asarray(value, dtype=np.int64))
        else:
            keys = np.fromiter(value.keys(), dtype=np.int64, count=len(value))
            vals = np.fromiter(value.values(), dtype=np.float64,
                               count=len(value))
            column.set_row(u, keys, vals)
        self._cache[name] = value

    def get(self, name: str, default: Any = None) -> Any:
        try:
            return self[name]
        except KeyError:
            return default

    def __contains__(self, name: object) -> bool:
        column = self._store._columns.get(name)  # type: ignore[arg-type]
        if column is None:
            return False
        if isinstance(column, _ScalarColumn):
            return bool(column.present[self._vertex])
        return column.present(self._vertex)

    def __iter__(self) -> Iterator[str]:
        for name in self._store._columns:
            if name in self:
                yield name

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Mapping):
            return dict(self.items()) == dict(other.items())
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:
        return f"VertexRow({self._vertex}, {dict(self.items())!r})"

    # -- accounting ----------------------------------------------------
    def nbytes(self) -> int:
        """Exactly what ``payload_size_bytes`` charges for the dict twin."""
        total = 0
        u = self._vertex
        for name, column in self._store._columns.items():
            if isinstance(column, _ScalarColumn):
                if column.present[u]:
                    total += len(name) + 8
            elif column.present(u):
                per_element = 8 if column._vals is None else 16
                total += len(name) + per_element * int(column.lengths[u])
        return total

    def as_dict(self) -> dict[str, Any]:
        return dict(self.items())


class StateRows(Sequence):
    """List-like access to every vertex's :class:`VertexRow` view."""

    __slots__ = ("_store",)

    def __init__(self, store: StateStore) -> None:
        self._store = store

    def __len__(self) -> int:
        return self._store.num_vertices

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._store.row(u)
                    for u in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        return self._store.row(index)

    @property
    def store(self) -> StateStore:
        return self._store


class _RowsMapping(Mapping):
    """Lazy ``{vertex: VertexRow}`` view used for result objects."""

    __slots__ = ("_store",)

    def __init__(self, store: StateStore) -> None:
        self._store = store

    def __getitem__(self, u: int) -> VertexRow:
        if not 0 <= u < self._store.num_vertices:
            raise KeyError(u)
        return self._store.row(u)

    def __iter__(self):
        return iter(range(self._store.num_vertices))

    def __len__(self) -> int:
        return self._store.num_vertices


# ----------------------------------------------------------------------
# Message blocks
# ----------------------------------------------------------------------
@dataclass
class MessageBlock:
    """A batch of vertex-to-vertex messages as parallel arrays.

    Every message has a sender, a receiver, a *kind* (an index into the
    block's ``kinds`` tuple — the program's wire format, e.g. SNAPLE's
    ``register`` / ``gamma`` / ``sims``), a ragged ``int64`` id payload and
    a ragged ``float64`` value payload.  Blocks replace the per-message
    tuples the executor used to pickle: concatenation, sender sorting and
    per-partition splitting are all O(n) array operations.
    """

    kinds: tuple[str, ...]
    sender: np.ndarray
    receiver: np.ndarray
    kind: np.ndarray
    ids_indptr: np.ndarray
    ids: np.ndarray
    vals_indptr: np.ndarray
    vals: np.ndarray

    # -- constructors --------------------------------------------------
    @classmethod
    def empty(cls, kinds: tuple[str, ...] = ()) -> "MessageBlock":
        return cls(
            kinds=tuple(kinds),
            sender=np.empty(0, dtype=np.int64),
            receiver=np.empty(0, dtype=np.int64),
            kind=np.empty(0, dtype=np.int16),
            ids_indptr=np.zeros(1, dtype=np.int64),
            ids=np.empty(0, dtype=np.int64),
            vals_indptr=np.zeros(1, dtype=np.int64),
            vals=np.empty(0, dtype=np.float64),
        )

    @classmethod
    def concat(cls, blocks: Sequence["MessageBlock"]) -> "MessageBlock":
        blocks = [b for b in blocks if b.num_messages]
        if not blocks:
            return cls.empty()
        kinds = blocks[0].kinds
        for block in blocks:
            if block.kinds != kinds:
                raise EngineError("cannot concatenate blocks of different kinds")
        ids_counts = np.concatenate([np.diff(b.ids_indptr) for b in blocks])
        vals_counts = np.concatenate([np.diff(b.vals_indptr) for b in blocks])
        return cls(
            kinds=kinds,
            sender=np.concatenate([b.sender for b in blocks]),
            receiver=np.concatenate([b.receiver for b in blocks]),
            kind=np.concatenate([b.kind for b in blocks]),
            ids_indptr=_indptr_from_counts(ids_counts),
            ids=np.concatenate([b.ids for b in blocks]),
            vals_indptr=_indptr_from_counts(vals_counts),
            vals=np.concatenate([b.vals for b in blocks]),
        )

    # -- basics --------------------------------------------------------
    @property
    def num_messages(self) -> int:
        return int(self.sender.size)

    def ids_counts(self) -> np.ndarray:
        return np.diff(self.ids_indptr)

    def vals_counts(self) -> np.ndarray:
        return np.diff(self.vals_indptr)

    def payload_bytes(self, base_bytes: Sequence[int]) -> np.ndarray:
        """Per-message payload sizes: ``base_bytes[kind] + 8·(ids + vals)``.

        ``base_bytes`` carries each kind's fixed overhead so the accounting
        reproduces exactly what ``payload_size_bytes`` charged for the
        historical tuples.
        """
        base = np.asarray(base_bytes, dtype=np.int64)
        return base[self.kind] + 8 * (self.ids_counts() + self.vals_counts())

    def message_ids(self, index: int) -> np.ndarray:
        return self.ids[self.ids_indptr[index]:self.ids_indptr[index + 1]]

    def message_vals(self, index: int) -> np.ndarray:
        return self.vals[self.vals_indptr[index]:self.vals_indptr[index + 1]]

    # -- reordering / routing ------------------------------------------
    def take(self, indices: np.ndarray) -> "MessageBlock":
        """A new block holding the selected messages, in ``indices`` order."""
        indices = np.asarray(indices, dtype=np.int64)
        ids_counts = self.ids_counts()[indices]
        vals_counts = self.vals_counts()[indices]
        return MessageBlock(
            kinds=self.kinds,
            sender=self.sender[indices],
            receiver=self.receiver[indices],
            kind=self.kind[indices],
            ids_indptr=_indptr_from_counts(ids_counts),
            ids=self.ids[gather_slices(self.ids_indptr[:-1][indices],
                                       ids_counts)],
            vals_indptr=_indptr_from_counts(vals_counts),
            vals=self.vals[gather_slices(self.vals_indptr[:-1][indices],
                                         vals_counts)],
        )

    def sorted_by_sender(self) -> "MessageBlock":
        """Stable sender sort — each sender's emission order is preserved."""
        if self.num_messages == 0:
            return self
        return self.take(np.argsort(self.sender, kind="stable"))

    def split_by(self, keys: np.ndarray, num_parts: int) -> list["MessageBlock"]:
        """Split into ``num_parts`` sub-blocks by a per-message key.

        A stable key sort followed by one :func:`np.searchsorted` per
        boundary; the relative message order inside each part is preserved,
        so splitting a sender-sorted block yields sender-sorted parts.
        """
        if self.num_messages == 0:
            return [self for _ in range(num_parts)]
        keys = np.asarray(keys, dtype=np.int64)
        order = np.argsort(keys, kind="stable")
        ordered = self.take(order)
        boundaries = np.searchsorted(keys[order],
                                     np.arange(num_parts + 1, dtype=np.int64))
        return [ordered.take(np.arange(boundaries[p], boundaries[p + 1],
                                       dtype=np.int64))
                for p in range(num_parts)]

    def nbytes(self) -> int:
        """Allocated bytes of the backing arrays."""
        return sum(int(array.nbytes) for array in (
            self.sender, self.receiver, self.kind, self.ids_indptr, self.ids,
            self.vals_indptr, self.vals,
        ))


class MessageBlockBuilder:
    """Accumulates messages and finalizes them into a :class:`MessageBlock`."""

    __slots__ = ("_kinds", "_kind_index", "_sender", "_receiver", "_kind",
                 "_ids", "_ids_counts", "_vals", "_vals_counts")

    def __init__(self, kinds: Sequence[str]) -> None:
        self._kinds = tuple(kinds)
        self._kind_index = {name: i for i, name in enumerate(self._kinds)}
        self._sender: list[int] = []
        self._receiver: list[int] = []
        self._kind: list[int] = []
        self._ids: list[int] = []
        self._ids_counts: list[int] = []
        self._vals: list[float] = []
        self._vals_counts: list[int] = []

    def append(self, sender: int, receiver: int, kind: str,
               ids: Iterable[int] = (), vals: Iterable[float] = ()) -> None:
        self._sender.append(sender)
        self._receiver.append(receiver)
        self._kind.append(self._kind_index[kind])
        before = len(self._ids)
        self._ids.extend(ids)
        self._ids_counts.append(len(self._ids) - before)
        before = len(self._vals)
        self._vals.extend(vals)
        self._vals_counts.append(len(self._vals) - before)

    def __len__(self) -> int:
        return len(self._sender)

    def build(self) -> MessageBlock:
        n = len(self._sender)
        return MessageBlock(
            kinds=self._kinds,
            sender=np.asarray(self._sender, dtype=np.int64),
            receiver=np.asarray(self._receiver, dtype=np.int64),
            kind=np.asarray(self._kind, dtype=np.int16),
            ids_indptr=_indptr_from_counts(
                np.asarray(self._ids_counts, dtype=np.int64)
                if n else np.empty(0, dtype=np.int64)),
            ids=np.asarray(self._ids, dtype=np.int64),
            vals_indptr=_indptr_from_counts(
                np.asarray(self._vals_counts, dtype=np.int64)
                if n else np.empty(0, dtype=np.int64)),
            vals=np.asarray(self._vals, dtype=np.float64),
        )
