"""Content-aware SNAPLE scoring (the extension sketched in Section 3.1).

The paper's raw similarity (equation (6)) is a set similarity over the two
endpoint neighborhoods; the text notes it "can be extended to content-based
metrics by simply including data attached to vertices in f".  This module
implements that extension on top of the vertex profiles of
:mod:`repro.graph.attributes`:

* a **hybrid raw similarity** blending the topological similarity of the
  truncated neighborhoods with a profile similarity of the two endpoints,
  weighted by ``content_weight``;
* a :class:`ContentAwareLinkPredictor` running the same
  truncate → select-``klocal`` → combine → aggregate pipeline as Algorithm 2
  with the hybrid similarity (``content_weight = 0`` reproduces the purely
  topological predictor exactly, which the test suite asserts).

Because the hybrid similarity only ever reads the profiles of the two
endpoints of an *existing* edge, the extension keeps SNAPLE's locality: no
profile is ever shipped along 2-hop paths, so the GAS/BSP data-flow analysis
of the topological scores carries over unchanged.
"""

from __future__ import annotations

import math
import random
import time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.graph.attributes import VertexProfiles, profile_cosine, profile_jaccard, profile_overlap
from repro.graph.digraph import DiGraph
from repro.graph.sampling import truncate_neighborhood
from repro.snaple.config import SnapleConfig
from repro.snaple.program import top_k_predictions

__all__ = [
    "ProfileSimilarityFn",
    "PROFILE_SIMILARITIES",
    "get_profile_similarity",
    "ContentConfig",
    "ContentPredictionResult",
    "ContentAwareLinkPredictor",
]

#: A profile similarity compares the tag sets of two vertices.
ProfileSimilarityFn = Callable[[frozenset[int], frozenset[int]], float]

#: Registry of named profile similarities.
PROFILE_SIMILARITIES: dict[str, ProfileSimilarityFn] = {
    "jaccard": profile_jaccard,
    "cosine": profile_cosine,
    "overlap": profile_overlap,
}


def get_profile_similarity(name: str) -> ProfileSimilarityFn:
    """Look up a profile similarity by name."""
    try:
        return PROFILE_SIMILARITIES[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown profile similarity {name!r}; available: "
            f"{', '.join(sorted(PROFILE_SIMILARITIES))}"
        ) from exc


@dataclass(frozen=True)
class ContentConfig:
    """Configuration of the content-aware extension.

    Parameters
    ----------
    snaple:
        The underlying :class:`~repro.snaple.config.SnapleConfig`
        (score, ``thrΓ``, ``klocal``, sampler, ``k``).
    content_weight:
        Weight ``w ∈ [0, 1]`` of the profile similarity in the hybrid raw
        similarity ``(1 - w)·sim_topo + w·sim_profile``.  ``0`` is the purely
        topological paper configuration; ``1`` ignores topology in the raw
        similarity (paths are still topological).
    profile_similarity_name:
        Which profile similarity blends with the topological one.
    """

    snaple: SnapleConfig = field(default_factory=SnapleConfig)
    content_weight: float = 0.5
    profile_similarity_name: str = "jaccard"

    def __post_init__(self) -> None:
        if not 0.0 <= self.content_weight <= 1.0:
            raise ConfigurationError("content_weight must be in [0, 1]")
        get_profile_similarity(self.profile_similarity_name)

    def describe(self) -> str:
        """One-line description used in experiment reports."""
        return (
            f"{self.snaple.describe()} + content "
            f"(w={self.content_weight:.2f}, {self.profile_similarity_name})"
        )


@dataclass
class ContentPredictionResult:
    """Predictions of the content-aware predictor plus timing."""

    predictions: dict[int, list[int]]
    scores: dict[int, dict[int, float]]
    config: ContentConfig
    wall_clock_seconds: float

    def predicted_edges(self) -> set[tuple[int, int]]:
        """All predicted edges as ``(source, predicted target)`` pairs."""
        return {
            (u, z) for u, targets in self.predictions.items() for z in targets
        }


class ContentAwareLinkPredictor:
    """SNAPLE scoring with a hybrid topology + content raw similarity.

    The pipeline is identical to Algorithm 2 executed locally: truncate
    neighborhoods, compute raw similarities of adjacent vertices, keep the
    ``klocal`` best, combine along 2-hop paths and aggregate per candidate.
    Only the raw similarity changes — it blends the configured topological
    similarity with the profile similarity of the edge's two endpoints.
    """

    def __init__(self, config: ContentConfig | None = None) -> None:
        self._config = config if config is not None else ContentConfig()

    @property
    def config(self) -> ContentConfig:
        return self._config

    def predict(
        self,
        graph: DiGraph,
        profiles: VertexProfiles,
        *,
        vertices: list[int] | None = None,
    ) -> ContentPredictionResult:
        """Run content-aware SNAPLE scoring on ``graph`` with ``profiles``."""
        if profiles.num_vertices < graph.num_vertices:
            raise ConfigurationError(
                f"profiles cover {profiles.num_vertices} vertices but the "
                f"graph has {graph.num_vertices}"
            )
        config = self._config
        snaple = config.snaple
        start = time.perf_counter()
        rng_truncate = random.Random(snaple.seed)
        rng_sample = random.Random(snaple.seed + 1)
        target_vertices = list(graph.vertices()) if vertices is None else list(vertices)

        gamma = self._truncated_neighborhoods(graph, rng_truncate)
        profile_similarity = get_profile_similarity(config.profile_similarity_name)
        weight = config.content_weight
        topological = snaple.score.similarity
        selection_similarity = snaple.score.selection_similarity

        def hybrid(u: int, v: int) -> float:
            topo = topological(gamma[u], gamma[v])
            if weight == 0.0:
                return topo
            content = profile_similarity(profiles.of(u), profiles.of(v))
            return (1.0 - weight) * topo + weight * content

        # Step 2: raw (hybrid) similarities and klocal selection.  Selection
        # uses the same hybrid value when the score's own similarity drives
        # selection (the Jaccard rows); otherwise the selection similarity of
        # equation (11) is blended with content in the same way.
        sampler = snaple.sampler
        sims: list[dict[int, float]] = []
        for u in graph.vertices():
            neighbors = graph.out_neighbors(u).tolist()
            path_values = {v: hybrid(u, v) for v in neighbors}
            if selection_similarity is topological:
                selection = path_values
            else:
                selection = {}
                for v in neighbors:
                    topo = selection_similarity(gamma[u], gamma[v])
                    if weight == 0.0:
                        selection[v] = topo
                    else:
                        content = profile_similarity(profiles.of(u), profiles.of(v))
                        selection[v] = (1.0 - weight) * topo + weight * content
            kept = sampler.select(selection, snaple.k_local, rng=rng_sample)
            sims.append({v: path_values[v] for v in kept})

        # Step 3: path combination + aggregation + top-k (unchanged).
        combinator = snaple.score.combinator
        aggregator = snaple.score.aggregator
        predictions: dict[int, list[int]] = {}
        scores: dict[int, dict[int, float]] = {}
        for u in target_vertices:
            gamma_u = set(gamma[u])
            accumulated: dict[int, tuple[float, int]] = {}
            for v, sim_uv in sims[u].items():
                for z, sim_vz in sims[v].items():
                    if z == u or z in gamma_u:
                        continue
                    value = combinator.combine(sim_uv, sim_vz)
                    if z in accumulated:
                        current, count = accumulated[z]
                        accumulated[z] = (aggregator.pre(current, value), count + 1)
                    else:
                        accumulated[z] = (value, 1)
            final = {
                z: aggregator.post(value, count)
                for z, (value, count) in accumulated.items()
            }
            scores[u] = final
            predictions[u] = top_k_predictions(final, snaple.k)

        wall = time.perf_counter() - start
        return ContentPredictionResult(
            predictions=predictions,
            scores=scores,
            config=config,
            wall_clock_seconds=wall,
        )

    # ------------------------------------------------------------------
    def _truncated_neighborhoods(self, graph: DiGraph,
                                 rng: random.Random) -> list[list[int]]:
        snaple = self._config.snaple
        gamma: list[list[int]] = []
        for u in graph.vertices():
            neighbors = graph.out_neighbors(u).tolist()
            if (
                not math.isinf(snaple.truncation_threshold)
                and len(neighbors) > snaple.truncation_threshold
            ):
                neighbors = truncate_neighborhood(
                    neighbors,
                    snaple.truncation_threshold,
                    rng=rng,
                    exact=snaple.exact_truncation,
                )
            gamma.append(sorted(neighbors))
        return gamma
