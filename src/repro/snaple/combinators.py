"""Path combinators (``⊗``, Table 1 of the paper).

A combinator merges the two raw similarities along a 2-hop path
``u → v → z`` into a single *path-similarity*:

``sim*_v(u, z) = sim(u, v) ⊗ sim(v, z)``

The paper requires ``⊗`` to be monotonically increasing in both arguments and
evaluates five instances: a linear combination (weight ``α``), the Euclidean
norm, the geometric mean, a plain sum, and a degenerate counter that maps
every path to 1.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "Combinator",
    "LinearCombinator",
    "EuclideanCombinator",
    "GeometricCombinator",
    "SumCombinator",
    "CountCombinator",
    "COMBINATORS",
    "get_combinator",
]


class Combinator(ABC):
    """Binary operator combining the raw similarities along a 2-hop path."""

    #: Registry name.
    name: str = "combinator"

    @abstractmethod
    def combine(self, sim_uv: float, sim_vz: float) -> float:
        """Return the path-similarity ``sim(u,v) ⊗ sim(v,z)``."""

    def __call__(self, sim_uv: float, sim_vz: float) -> float:
        return self.combine(sim_uv, sim_vz)

    def fold(self, similarities: list[float]) -> float:
        """Combine raw similarities along a path of arbitrary length.

        The paper restricts itself to 2-hop paths but notes the combinator
        can be folded along longer paths; this helper implements that fold.
        """
        if not similarities:
            return 0.0
        result = similarities[0]
        for value in similarities[1:]:
            result = self.combine(result, value)
        return result

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


@dataclass(frozen=True, repr=False)
class LinearCombinator(Combinator):
    """``α·a + (1-α)·b`` — the *linear* row of Table 1.

    The paper uses ``α = 0.9`` (Section 5.2), weighting the first hop
    ``sim(u, v)`` much more than the second.
    """

    alpha: float = 0.9
    name: str = "linear"

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ConfigurationError("alpha must be in [0, 1]")

    def combine(self, sim_uv: float, sim_vz: float) -> float:
        return self.alpha * sim_uv + (1.0 - self.alpha) * sim_vz

    def __repr__(self) -> str:
        return f"LinearCombinator(alpha={self.alpha})"


class EuclideanCombinator(Combinator):
    """``sqrt(a² + b²)`` — the *eucl* row of Table 1."""

    name = "eucl"

    def combine(self, sim_uv: float, sim_vz: float) -> float:
        return math.sqrt(sim_uv * sim_uv + sim_vz * sim_vz)


class GeometricCombinator(Combinator):
    """``sqrt(a·b)`` — the *geom* row of Table 1.

    Returns 0 whenever either hop has zero similarity, which is what makes
    the geomGeom score so sensitive to dissimilar intermediate vertices.
    """

    name = "geom"

    def combine(self, sim_uv: float, sim_vz: float) -> float:
        product = sim_uv * sim_vz
        if product <= 0.0:
            return 0.0
        return math.sqrt(product)


class SumCombinator(Combinator):
    """``a + b`` — the *sum* row of Table 1 (used by the PPR score)."""

    name = "sum"

    def combine(self, sim_uv: float, sim_vz: float) -> float:
        return sim_uv + sim_vz


class CountCombinator(Combinator):
    """Degenerate combinator mapping every path to 1 (the *counter* score)."""

    name = "count"

    def combine(self, sim_uv: float, sim_vz: float) -> float:
        return 1.0


#: Registry of default-constructed combinators by name.
COMBINATORS: dict[str, Combinator] = {
    "linear": LinearCombinator(),
    "eucl": EuclideanCombinator(),
    "geom": GeometricCombinator(),
    "sum": SumCombinator(),
    "count": CountCombinator(),
}


def linear_combinator(alpha: float | None = None) -> LinearCombinator:
    """Factory for the ``linear`` combinator (the plugin-registry entry).

    Without ``alpha`` it hands out the shared default-``α`` singleton so
    identity-based sharing keeps working; with ``alpha`` it constructs a
    customized instance (fingerprint-cached by the registry).
    """
    if alpha is None:
        return COMBINATORS["linear"]  # type: ignore[return-value]
    return LinearCombinator(alpha=alpha)


def get_combinator(name: str, *, alpha: float | None = None) -> Combinator:
    """Look up a combinator by name through the plugin registry.

    ``alpha`` customizes the linear combinator's weight; it is rejected for
    other combinators to catch configuration mistakes early.
    """
    from repro.runtime.registry import get_component

    combinator = get_component("combinator", name)
    if alpha is None:
        return combinator
    if combinator.name != "linear":
        raise ConfigurationError("alpha is only valid for the linear combinator")
    return get_component("combinator", name, alpha=alpha)
