"""Neighbor-sampling policies (the ``klocal`` mechanism, Section 5.6).

Step 2 of Algorithm 2 keeps, for each vertex, only ``klocal`` of its
neighbors; only 2-hop paths passing through those kept neighbors are explored
in step 3.  The paper compares three selection policies:

* ``Γmax`` — keep the ``klocal`` *most similar* neighbors (the default),
* ``Γmin`` — keep the *least similar* neighbors (a pessimal control),
* ``Γrnd`` — keep a uniform random subset.

The selection policy is the single biggest lever on execution time (it bounds
the candidate space by ``klocal²``) while ``Γmax`` keeps recall close to the
unsampled run.
"""

from __future__ import annotations

import heapq
import math
import random
from abc import ABC, abstractmethod
from collections.abc import Mapping

from repro.errors import ConfigurationError

__all__ = [
    "NeighborSampler",
    "TopSimilaritySampler",
    "BottomSimilaritySampler",
    "RandomSampler",
    "get_sampler",
    "SAMPLERS",
]


class NeighborSampler(ABC):
    """Selects which scored neighbors survive into the path-exploration step."""

    #: Registry name (``max`` / ``min`` / ``rnd`` in the paper's notation).
    name: str = "sampler"

    @abstractmethod
    def select(self, similarities: Mapping[int, float], k_local: int | float,
               *, rng: random.Random) -> dict[int, float]:
        """Return the subset of ``similarities`` kept for path exploration."""

    @staticmethod
    def _validate(k_local: int | float) -> None:
        if not math.isinf(k_local) and k_local < 0:
            raise ConfigurationError("k_local must be non-negative or infinity")


class TopSimilaritySampler(NeighborSampler):
    """``Γmax``: keep the ``klocal`` neighbors with the highest similarity."""

    name = "max"

    def select(self, similarities: Mapping[int, float], k_local: int | float,
               *, rng: random.Random) -> dict[int, float]:
        self._validate(k_local)
        if math.isinf(k_local) or len(similarities) <= k_local:
            return dict(similarities)
        top = heapq.nlargest(
            int(k_local), similarities.items(), key=lambda item: (item[1], -item[0])
        )
        return dict(top)


class BottomSimilaritySampler(NeighborSampler):
    """``Γmin``: keep the ``klocal`` neighbors with the lowest similarity."""

    name = "min"

    def select(self, similarities: Mapping[int, float], k_local: int | float,
               *, rng: random.Random) -> dict[int, float]:
        self._validate(k_local)
        if math.isinf(k_local) or len(similarities) <= k_local:
            return dict(similarities)
        bottom = heapq.nsmallest(
            int(k_local), similarities.items(), key=lambda item: (item[1], item[0])
        )
        return dict(bottom)


class RandomSampler(NeighborSampler):
    """``Γrnd``: keep a uniform random subset of ``klocal`` neighbors."""

    name = "rnd"

    def select(self, similarities: Mapping[int, float], k_local: int | float,
               *, rng: random.Random) -> dict[int, float]:
        self._validate(k_local)
        if math.isinf(k_local) or len(similarities) <= k_local:
            return dict(similarities)
        chosen = rng.sample(sorted(similarities), int(k_local))
        return {vertex: similarities[vertex] for vertex in chosen}


#: Registry of sampling policies by the paper's short names.
SAMPLERS: dict[str, NeighborSampler] = {
    "max": TopSimilaritySampler(),
    "min": BottomSimilaritySampler(),
    "rnd": RandomSampler(),
}


def get_sampler(name: str) -> NeighborSampler:
    """Look up a sampling policy through the plugin registry."""
    from repro.runtime.registry import get_component

    return get_component("sampler", name)
