"""Supervised extension of SNAPLE (the paper's future-work direction).

Section 7 of the paper identifies the extension of SNAPLE to *supervised*
link prediction as a research path: instead of ranking candidates with a
single hand-picked scoring configuration, learn how to weigh several
configurations from examples.

This module implements that extension in the simplest faithful way:

* **features** — for every (source, candidate) pair, the scores assigned by
  a chosen set of SNAPLE scoring configurations (by default one per
  aggregator family plus the path counter), each computed with the same
  klocal-sampled machinery as the unsupervised predictor;
* **labels** — a self-supervised split of the training graph: a fraction of
  edges is hidden, pairs corresponding to hidden edges are positives, other
  candidates are negatives;
* **model** — L2-regularized logistic regression trained by batch gradient
  descent (numpy only, no external ML dependency);
* **prediction** — candidates of each vertex are re-ranked by the learned
  model's probability and the top-``k`` are returned, exactly like the
  unsupervised predictor.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.eval.protocol import remove_random_edges
from repro.graph.digraph import DiGraph
from repro.snaple.config import SnapleConfig
from repro.runtime.report import RunReport
from repro.snaple.predictor import SnapleLinkPredictor
from repro.snaple.program import top_k_predictions

__all__ = ["LogisticRegressionModel", "SupervisedConfig", "SupervisedSnaplePredictor"]

#: Default feature set: one representative score per aggregator family plus
#: the structural path counter.
DEFAULT_FEATURE_SCORES: tuple[str, ...] = (
    "linearSum", "linearMean", "linearGeom", "counter", "PPR",
)


@dataclass
class LogisticRegressionModel:
    """Minimal L2-regularized logistic regression trained by gradient descent."""

    learning_rate: float = 0.5
    iterations: int = 300
    l2: float = 1e-3
    weights: np.ndarray | None = None
    bias: float = 0.0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegressionModel":
        """Fit the model on a dense feature matrix and 0/1 labels."""
        if features.ndim != 2:
            raise ConfigurationError("features must be a 2-D array")
        if features.shape[0] != labels.shape[0]:
            raise ConfigurationError("features and labels must have the same length")
        if features.shape[0] == 0:
            raise ConfigurationError("cannot fit on an empty training set")
        num_samples, num_features = features.shape
        self.weights = np.zeros(num_features)
        self.bias = 0.0
        targets = labels.astype(float)
        for _ in range(self.iterations):
            logits = features @ self.weights + self.bias
            probabilities = _sigmoid(logits)
            error = probabilities - targets
            gradient_w = features.T @ error / num_samples + self.l2 * self.weights
            gradient_b = float(error.mean())
            self.weights -= self.learning_rate * gradient_w
            self.bias -= self.learning_rate * gradient_b
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Probability of the positive class for each row."""
        if self.weights is None:
            raise ConfigurationError("model has not been fitted")
        return _sigmoid(features @ self.weights + self.bias)

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy at the 0.5 threshold."""
        predictions = (self.predict_proba(features) >= 0.5).astype(int)
        if labels.size == 0:
            return 0.0
        return float((predictions == labels).mean())


def _sigmoid(values: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(values, -30.0, 30.0)))


@dataclass(frozen=True)
class SupervisedConfig:
    """Configuration of the supervised SNAPLE predictor."""

    feature_scores: tuple[str, ...] = DEFAULT_FEATURE_SCORES
    k: int = 5
    k_local: float = 40
    truncation_threshold: float = 200
    #: Fraction of eligible vertices used to build the self-supervised
    #: training split (the rest of the machinery follows the paper's
    #: protocol: one hidden edge per selected vertex).
    negative_ratio: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.feature_scores:
            raise ConfigurationError("at least one feature score is required")
        if self.k < 1:
            raise ConfigurationError("k must be >= 1")
        if self.negative_ratio < 1:
            raise ConfigurationError("negative_ratio must be >= 1")


@dataclass
class SupervisedPredictionResult:
    """Predictions of the supervised predictor plus training diagnostics."""

    predictions: dict[int, list[int]]
    probabilities: dict[int, dict[int, float]]
    feature_names: tuple[str, ...]
    model: LogisticRegressionModel
    training_accuracy: float
    training_samples: int
    wall_clock_seconds: float

    def predicted_edges(self) -> set[tuple[int, int]]:
        """All predicted edges as ``(source, predicted target)`` pairs."""
        return {
            (u, z) for u, targets in self.predictions.items() for z in targets
        }


class SupervisedSnaplePredictor:
    """Learned combination of SNAPLE scoring configurations.

    The predictor keeps the GAS-friendly structure of the unsupervised
    version: features are SNAPLE scores computed per candidate, so a
    distributed deployment only adds one extra pass per feature score.
    """

    def __init__(self, config: SupervisedConfig | None = None) -> None:
        self._config = config if config is not None else SupervisedConfig()

    @property
    def config(self) -> SupervisedConfig:
        return self._config

    # ------------------------------------------------------------------
    def _score_candidates(self, graph: DiGraph) -> dict[str, RunReport]:
        """Run every feature scoring configuration once over the graph."""
        results: dict[str, RunReport] = {}
        for score_name in self._config.feature_scores:
            snaple_config = SnapleConfig.paper_default(
                score_name,
                k=self._config.k,
                k_local=self._config.k_local,
                truncation_threshold=self._config.truncation_threshold,
                seed=self._config.seed,
            )
            results[score_name] = SnapleLinkPredictor(snaple_config).predict(
                graph, backend="local"
            )
        return results

    def _feature_vector(self, results: dict[str, RunReport],
                        source: int, candidate: int) -> list[float]:
        return [
            results[name].scores.get(source, {}).get(candidate, 0.0)
            for name in self._config.feature_scores
        ]

    def fit_predict(self, graph: DiGraph) -> SupervisedPredictionResult:
        """Train on a self-supervised split of ``graph`` and predict for it.

        The training split hides one edge per eligible vertex of the input
        graph (the paper's protocol); hidden edges become positive examples
        and other scored candidates become negatives.  The model is then
        used to re-rank the candidates of the *full* graph.
        """
        start = time.perf_counter()
        config = self._config
        rng = random.Random(config.seed)

        # Self-supervised labels: hide edges inside the training graph.
        inner_split = remove_random_edges(graph, seed=config.seed)
        inner_results = self._score_candidates(inner_split.train_graph)

        features: list[list[float]] = []
        labels: list[int] = []
        for source, target in inner_split.removed_edges:
            candidates = set()
            for result in inner_results.values():
                candidates.update(result.scores.get(source, {}))
            if target not in candidates:
                continue
            features.append(self._feature_vector(inner_results, source, target))
            labels.append(1)
            negatives = [c for c in candidates if c != target]
            rng.shuffle(negatives)
            for negative in negatives[: config.negative_ratio]:
                features.append(self._feature_vector(inner_results, source, negative))
                labels.append(0)

        model = LogisticRegressionModel()
        if features:
            feature_matrix = np.asarray(features, dtype=float)
            label_array = np.asarray(labels, dtype=int)
            model.fit(feature_matrix, label_array)
            training_accuracy = model.accuracy(feature_matrix, label_array)
        else:
            # Degenerate graphs (no candidate ever matches a hidden edge)
            # fall back to a uniform model.
            model.weights = np.ones(len(config.feature_scores))
            training_accuracy = 0.0

        # Re-rank the full graph's candidates with the learned model.
        full_results = self._score_candidates(graph)
        predictions: dict[int, list[int]] = {}
        probabilities: dict[int, dict[int, float]] = {}
        for vertex in graph.vertices():
            candidates = set()
            for result in full_results.values():
                candidates.update(result.scores.get(vertex, {}))
            if not candidates:
                predictions[vertex] = []
                probabilities[vertex] = {}
                continue
            ordered = sorted(candidates)
            matrix = np.asarray(
                [self._feature_vector(full_results, vertex, c) for c in ordered],
                dtype=float,
            )
            scores = model.predict_proba(matrix)
            candidate_scores = dict(zip(ordered, scores.tolist()))
            probabilities[vertex] = candidate_scores
            predictions[vertex] = top_k_predictions(candidate_scores, config.k)

        return SupervisedPredictionResult(
            predictions=predictions,
            probabilities=probabilities,
            feature_names=config.feature_scores,
            model=model,
            training_accuracy=training_accuracy,
            training_samples=len(labels),
            wall_clock_seconds=time.perf_counter() - start,
        )
