"""SNAPLE core: the paper's scoring framework and GAS link-prediction program."""

from repro.snaple.aggregators import (
    AGGREGATORS,
    Aggregator,
    GeometricMeanAggregator,
    MaxAggregator,
    MeanAggregator,
    SumAggregator,
    get_aggregator,
)
from repro.snaple.combinators import (
    COMBINATORS,
    Combinator,
    CountCombinator,
    EuclideanCombinator,
    GeometricCombinator,
    LinearCombinator,
    SumCombinator,
    get_combinator,
)
from repro.snaple.bsp_program import (
    BspPredictionResult,
    SnapleBspPredictor,
    SnapleBspProgram,
)
from repro.snaple.config import SnapleConfig
from repro.snaple.content import (
    ContentAwareLinkPredictor,
    ContentConfig,
    ContentPredictionResult,
)
from repro.snaple.kernel import (
    LazyScores,
    VectorizedKernel,
    kernel_supports,
)
from repro.snaple.khop import KHopLinkPredictor, KHopPredictionResult
from repro.snaple.predictor import PredictionResult, SnapleLinkPredictor
from repro.snaple.program import (
    NeighborhoodSampleStep,
    RecommendationStep,
    SimilarityStep,
    build_snaple_steps,
    top_k_predictions,
)
from repro.snaple.sampler import (
    SAMPLERS,
    BottomSimilaritySampler,
    NeighborSampler,
    RandomSampler,
    TopSimilaritySampler,
    get_sampler,
)
from repro.snaple.scoring import (
    GEOM_FAMILY,
    MEAN_FAMILY,
    PAPER_SCORES,
    SUM_FAMILY,
    ScoreConfig,
    paper_score_names,
    score_config,
)
from repro.snaple.similarity import (
    SIMILARITIES,
    NeighborhoodSetCache,
    get_similarity,
    jaccard,
)

__all__ = [
    "SnapleConfig",
    "SnapleLinkPredictor",
    "PredictionResult",
    "SnapleBspPredictor",
    "SnapleBspProgram",
    "BspPredictionResult",
    "KHopLinkPredictor",
    "KHopPredictionResult",
    "ContentAwareLinkPredictor",
    "ContentConfig",
    "ContentPredictionResult",
    "ScoreConfig",
    "score_config",
    "paper_score_names",
    "PAPER_SCORES",
    "SUM_FAMILY",
    "MEAN_FAMILY",
    "GEOM_FAMILY",
    "Combinator",
    "LinearCombinator",
    "EuclideanCombinator",
    "GeometricCombinator",
    "SumCombinator",
    "CountCombinator",
    "COMBINATORS",
    "get_combinator",
    "Aggregator",
    "SumAggregator",
    "MeanAggregator",
    "GeometricMeanAggregator",
    "MaxAggregator",
    "AGGREGATORS",
    "get_aggregator",
    "NeighborSampler",
    "TopSimilaritySampler",
    "BottomSimilaritySampler",
    "RandomSampler",
    "SAMPLERS",
    "get_sampler",
    "SIMILARITIES",
    "get_similarity",
    "jaccard",
    "NeighborhoodSetCache",
    "VectorizedKernel",
    "LazyScores",
    "kernel_supports",
    "build_snaple_steps",
    "top_k_predictions",
    "NeighborhoodSampleStep",
    "SimilarityStep",
    "RecommendationStep",
]
