"""Predictor configuration (the knobs of Algorithm 2)."""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.snaple.sampler import NeighborSampler, get_sampler
from repro.snaple.scoring import ScoreConfig, score_config

__all__ = ["SnapleConfig"]


@dataclass(frozen=True)
class SnapleConfig:
    """Full configuration for a SNAPLE link-prediction run.

    Parameters mirror the paper's notation:

    * ``k`` — number of predictions returned per vertex (paper default 5);
    * ``score`` — a scoring configuration from Table 3 (default linearSum);
    * ``truncation_threshold`` — ``thrΓ``, the neighborhood truncation bound
      (paper default 200; ``inf`` disables truncation);
    * ``k_local`` — the per-vertex neighbor sampling budget (``inf`` disables
      sampling);
    * ``sampler`` — the ``Γmax`` / ``Γmin`` / ``Γrnd`` selection policy;
    * ``exact_truncation`` — use exact reservoir sampling for ``Γ̂`` instead
      of the paper's Bernoulli approximation;
    * ``seed`` — randomness seed for truncation and the ``Γrnd`` policy.
    """

    k: int = 5
    score: ScoreConfig = field(default_factory=lambda: score_config("linearSum"))
    truncation_threshold: float = 200.0
    k_local: float = math.inf
    sampler: NeighborSampler = field(default_factory=lambda: get_sampler("max"))
    exact_truncation: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError("k must be >= 1")
        if not math.isinf(self.truncation_threshold) and self.truncation_threshold < 1:
            raise ConfigurationError("truncation_threshold must be >= 1 or infinity")
        if not math.isinf(self.k_local) and self.k_local < 1:
            raise ConfigurationError("k_local must be >= 1 or infinity")

    # Convenience constructors -----------------------------------------
    @classmethod
    def paper_default(cls, score_name: str = "linearSum", *,
                      k: int = 5, k_local: float = 80,
                      truncation_threshold: float = 200,
                      sampler_name: str = "max",
                      alpha: float = 0.9,
                      seed: int = 0) -> "SnapleConfig":
        """Configuration matching the defaults used throughout Section 5."""
        return cls(
            k=k,
            score=score_config(score_name,
                               alpha=alpha if score_name.startswith("linear") else None),
            truncation_threshold=truncation_threshold,
            k_local=k_local,
            sampler=get_sampler(sampler_name),
            seed=seed,
        )

    def with_score(self, score_name: str, *, alpha: float | None = None) -> "SnapleConfig":
        """Copy with a different scoring configuration."""
        return replace(self, score=score_config(score_name, alpha=alpha))

    def with_k_local(self, k_local: float) -> "SnapleConfig":
        """Copy with a different sampling budget."""
        return replace(self, k_local=k_local)

    def with_truncation(self, truncation_threshold: float) -> "SnapleConfig":
        """Copy with a different truncation threshold ``thrΓ``."""
        return replace(self, truncation_threshold=truncation_threshold)

    def with_sampler(self, sampler_name: str) -> "SnapleConfig":
        """Copy with a different neighbor-selection policy."""
        return replace(self, sampler=get_sampler(sampler_name))

    def with_k(self, k: int) -> "SnapleConfig":
        """Copy with a different number of returned predictions."""
        return replace(self, k=k)

    def describe(self) -> str:
        """One-line description used in experiment reports."""
        thr = "inf" if math.isinf(self.truncation_threshold) else int(self.truncation_threshold)
        klo = "inf" if math.isinf(self.k_local) else int(self.k_local)
        return (
            f"{self.score.name} (k={self.k}, thrΓ={thr}, klocal={klo}, "
            f"Γ{self.sampler.name})"
        )
