"""High-level SNAPLE link-prediction API.

Two execution modes are offered:

* :meth:`SnapleLinkPredictor.predict_gas` — runs Algorithm 2 through the
  simulated distributed GAS engine, returning predictions plus the engine's
  accounting (simulated cluster time, traffic, memory).  This is the mode the
  paper's performance evaluation is about.
* :meth:`SnapleLinkPredictor.predict_local` — an equivalent single-process
  implementation without GAS book-keeping.  It produces the same predictions
  (given the same seed) and is used for fast recall-focused experiments and
  as a cross-check oracle in the test suite.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.gas.cluster import ClusterConfig, TYPE_II, cluster_of
from repro.gas.engine import GasEngine, GasRunResult
from repro.gas.partition import Partitioner
from repro.graph.digraph import DiGraph
from repro.graph.sampling import truncate_neighborhood
from repro.snaple.config import SnapleConfig
from repro.snaple.program import build_snaple_steps, top_k_predictions

__all__ = ["PredictionResult", "SnapleLinkPredictor"]


@dataclass
class PredictionResult:
    """Predictions for every vertex plus execution accounting."""

    predictions: dict[int, list[int]]
    scores: dict[int, dict[int, float]]
    config: SnapleConfig
    wall_clock_seconds: float
    simulated_seconds: float | None = None
    gas_result: GasRunResult | None = field(default=None, repr=False)

    def predicted_edges(self) -> set[tuple[int, int]]:
        """All predicted edges as ``(source, predicted target)`` pairs."""
        return {
            (u, z) for u, targets in self.predictions.items() for z in targets
        }

    def top_prediction(self, vertex: int) -> int | None:
        """Best-scored prediction for ``vertex`` (``None`` when empty)."""
        targets = self.predictions.get(vertex, [])
        return targets[0] if targets else None


class SnapleLinkPredictor:
    """Link prediction with the SNAPLE scoring framework.

    Parameters
    ----------
    config:
        The :class:`~repro.snaple.config.SnapleConfig` controlling the scoring
        configuration, ``thrΓ``, ``klocal``, the sampling policy, and ``k``.
    """

    def __init__(self, config: SnapleConfig | None = None) -> None:
        self._config = config if config is not None else SnapleConfig()

    @property
    def config(self) -> SnapleConfig:
        return self._config

    # ------------------------------------------------------------------
    # GAS (distributed simulation) execution
    # ------------------------------------------------------------------
    def predict_gas(
        self,
        graph: DiGraph,
        *,
        cluster: ClusterConfig | None = None,
        partitioner: Partitioner | None = None,
        enforce_memory: bool = True,
        vertices: list[int] | None = None,
    ) -> PredictionResult:
        """Run Algorithm 2 on the simulated GAS engine.

        Raises :class:`~repro.errors.ResourceExhaustedError` when the chosen
        cluster cannot hold the program's vertex data (only relevant for the
        naive baseline or deliberately tiny clusters).
        """
        if cluster is None:
            cluster = cluster_of(TYPE_II, 1)
        engine = GasEngine(
            graph=graph,
            cluster=cluster,
            partitioner=partitioner,
            enforce_memory=enforce_memory,
            seed=self._config.seed,
        )
        steps = build_snaple_steps(self._config, graph)
        recommendation_step = steps[-1]
        start = time.perf_counter()
        run = engine.run(steps, vertices=vertices)
        wall = time.perf_counter() - start
        predictions: dict[int, list[int]] = {}
        scores: dict[int, dict[int, float]] = {}
        for u in (vertices if vertices is not None else graph.vertices()):
            data = run.data_of(u)
            predictions[u] = list(data.get("predicted", []))
            scores[u] = dict(recommendation_step.collected_scores.get(u, {}))
        return PredictionResult(
            predictions=predictions,
            scores=scores,
            config=self._config,
            wall_clock_seconds=wall,
            simulated_seconds=run.simulated_seconds,
            gas_result=run,
        )

    # ------------------------------------------------------------------
    # Local (single-process) execution
    # ------------------------------------------------------------------
    def predict_local(
        self,
        graph: DiGraph,
        *,
        vertices: list[int] | None = None,
    ) -> PredictionResult:
        """Run SNAPLE scoring without the GAS engine book-keeping.

        Semantically equivalent to :meth:`predict_gas`; used for recall
        experiments where only prediction quality matters.
        """
        config = self._config
        start = time.perf_counter()
        rng_truncate = random.Random(config.seed)
        rng_sample = random.Random(config.seed + 1)
        target_vertices = list(graph.vertices()) if vertices is None else list(vertices)

        # Step 1: truncated neighborhoods for every vertex (targets need the
        # neighborhoods of their neighbors too, so compute them globally).
        gamma: list[list[int]] = []
        for u in graph.vertices():
            neighbors = graph.out_neighbors(u).tolist()
            if (
                not math.isinf(config.truncation_threshold)
                and len(neighbors) > config.truncation_threshold
            ):
                neighbors = truncate_neighborhood(
                    neighbors,
                    config.truncation_threshold,
                    rng=rng_truncate,
                    exact=config.exact_truncation,
                )
            gamma.append(sorted(neighbors))

        # Step 2: raw similarities and klocal selection for every vertex.
        # The selection ranks neighbors by the set similarity of equation
        # (11) (Jaccard by default), while the kept values are the score's
        # own raw similarity, which step 3 combines along paths.
        similarity = config.score.similarity
        selection_similarity = config.score.selection_similarity
        sampler = config.sampler
        sims: list[dict[int, float]] = []
        for u in graph.vertices():
            neighbors = graph.out_neighbors(u).tolist()
            selection = {
                v: selection_similarity(gamma[u], gamma[v]) for v in neighbors
            }
            kept = sampler.select(selection, config.k_local, rng=rng_sample)
            if selection_similarity is similarity:
                sims.append(kept)
            else:
                sims.append({v: similarity(gamma[u], gamma[v]) for v in kept})

        # Step 3: path combination + aggregation + top-k.
        combinator = config.score.combinator
        aggregator = config.score.aggregator
        predictions: dict[int, list[int]] = {}
        scores: dict[int, dict[int, float]] = {}
        for u in target_vertices:
            gamma_u = set(gamma[u])
            accumulated: dict[int, tuple[float, int]] = {}
            for v, sim_uv in sims[u].items():
                for z, sim_vz in sims[v].items():
                    if z == u or z in gamma_u:
                        continue
                    path_similarity = combinator.combine(sim_uv, sim_vz)
                    if z in accumulated:
                        value, count = accumulated[z]
                        accumulated[z] = (aggregator.pre(value, path_similarity),
                                          count + 1)
                    else:
                        accumulated[z] = (path_similarity, 1)
            final = {
                z: aggregator.post(value, count)
                for z, (value, count) in accumulated.items()
            }
            scores[u] = final
            predictions[u] = top_k_predictions(final, config.k)
        wall = time.perf_counter() - start
        return PredictionResult(
            predictions=predictions,
            scores=scores,
            config=config,
            wall_clock_seconds=wall,
            simulated_seconds=None,
            gas_result=None,
        )

    # ------------------------------------------------------------------
    def predict(self, graph: DiGraph, *, mode: str = "local",
                **kwargs) -> PredictionResult:
        """Dispatch to :meth:`predict_local` or :meth:`predict_gas` by name."""
        if mode == "local":
            return self.predict_local(graph, **kwargs)
        if mode == "gas":
            return self.predict_gas(graph, **kwargs)
        raise ConfigurationError(f"unknown prediction mode {mode!r}")
