"""High-level SNAPLE link-prediction API.

:meth:`SnapleLinkPredictor.predict` is the single entry point: it dispatches
to any engine registered in the :mod:`repro.runtime` backend registry
(``local``, ``gas``, ``bsp``, the baselines, and any third-party backend) and
returns a normalized :class:`~repro.runtime.report.RunReport`::

    report = SnapleLinkPredictor(config).predict(graph, backend="gas",
                                                 cluster=cluster_of(TYPE_I, 8))

:meth:`SnapleLinkPredictor.predict_iter` streams per-vertex results for large
vertex sets.  The historical :meth:`predict_local` / :meth:`predict_gas`
methods remain as thin deprecation shims returning the legacy
:class:`PredictionResult`.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.gas.cluster import ClusterConfig
from repro.gas.engine import GasRunResult
from repro.gas.partition import Partitioner
from repro.graph.digraph import DiGraph
from repro.snaple.config import SnapleConfig

__all__ = ["PredictionResult", "SnapleLinkPredictor"]


@dataclass
class PredictionResult:
    """Predictions for every vertex plus execution accounting.

    Legacy result type kept for the :meth:`SnapleLinkPredictor.predict_local`
    and :meth:`SnapleLinkPredictor.predict_gas` shims; new code should use
    :class:`~repro.runtime.report.RunReport` via
    :meth:`SnapleLinkPredictor.predict`.
    """

    predictions: dict[int, list[int]]
    scores: dict[int, dict[int, float]]
    config: SnapleConfig
    wall_clock_seconds: float
    simulated_seconds: float | None = None
    gas_result: GasRunResult | None = field(default=None, repr=False)

    def predicted_edges(self) -> set[tuple[int, int]]:
        """All predicted edges as ``(source, predicted target)`` pairs."""
        return {
            (u, z) for u, targets in self.predictions.items() for z in targets
        }

    def top_prediction(self, vertex: int) -> int | None:
        """Best-scored prediction for ``vertex`` (``None`` when empty)."""
        targets = self.predictions.get(vertex, [])
        return targets[0] if targets else None


class SnapleLinkPredictor:
    """Link prediction with the SNAPLE scoring framework.

    Parameters
    ----------
    config:
        The :class:`~repro.snaple.config.SnapleConfig` controlling the scoring
        configuration, ``thrΓ``, ``klocal``, the sampling policy, and ``k``.

    Notes
    -----
    ``workers=N`` runs hold a reusable worker-pool lease on the predictor:
    repeated :meth:`predict` calls with the same graph, configuration and
    environment reuse the spawned pool and its graph transport instead of
    paying the spawn cost per call (``pool_spawns`` counts the actual
    spawns).  The lease owns processes and shared segments/spool files —
    call :meth:`close` when done, or use the predictor as a context
    manager::

        with SnapleLinkPredictor(config) as predictor:
            first = predictor.predict(graph, backend="gas", workers=4)
            second = predictor.predict(graph, backend="gas", workers=4)
    """

    def __init__(self, config: SnapleConfig | None = None) -> None:
        self._config = config if config is not None else SnapleConfig()
        self._pool = None  # lazily created WorkerPoolLease

    @property
    def config(self) -> SnapleConfig:
        return self._config

    @property
    def pool_spawns(self) -> int:
        """How many worker pools this predictor actually spawned."""
        return 0 if self._pool is None else self._pool.spawns

    def close(self) -> None:
        """Release the worker-pool lease (processes, segments, spool files).

        Idempotent; a predictor that never ran with ``workers=N`` holds
        nothing.  Garbage collection is the backstop, but explicit closing
        keeps resource lifetime deterministic.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()

    def __enter__(self) -> "SnapleLinkPredictor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _worker_pool(self):
        from repro.runtime.parallel import WorkerPoolLease

        if self._pool is None:
            self._pool = WorkerPoolLease()
        return self._pool

    # ------------------------------------------------------------------
    # Unified backend dispatch
    # ------------------------------------------------------------------
    def predict(self, graph: DiGraph, *, backend: str | None = None,
                mode: str | None = None, vertices: list[int] | None = None,
                workers: int | None = None,
                checkpoint_dir=None, checkpoint_every: int | None = None,
                resume_from=None, **options):
        """Run SNAPLE scoring on the named execution backend.

        Parameters
        ----------
        backend:
            Name of a backend registered in :mod:`repro.runtime`
            (``"local"`` by default; see
            :func:`repro.runtime.available_backends`).
        mode:
            With ``backend`` given (or defaulted), a backend-specific
            execution mode passed through as the ``mode`` option — the
            ``local`` backend accepts ``"vectorized"`` (default, the CSR
            array kernel of :mod:`repro.snaple.kernel`) and ``"reference"``
            (the scalar implementation kept for cross-checking).

            Calling ``predict(mode=<backend name>)`` *without* ``backend``
            is the deprecated pre-registry alias: it dispatches to that
            backend and returns the legacy :class:`PredictionResult`.
        vertices:
            Restrict prediction to these vertices (all by default).
        workers:
            Execute graph partitions in this many shared-nothing worker
            processes (see :mod:`repro.runtime.parallel`).  Only backends
            advertising :attr:`~repro.runtime.BackendCapabilities.parallel`
            (``gas``, ``bsp``) accept it; other backends raise
            :class:`~repro.errors.ConfigurationError`.  Predictions are
            identical for every worker count.
        checkpoint_dir, checkpoint_every, resume_from:
            Fault tolerance for ``workers=N`` runs (see
            :mod:`repro.runtime.checkpoint`): persist the loop state to
            ``checkpoint_dir`` every ``checkpoint_every`` supersteps
            (default 1), and/or restore from ``resume_from`` (a checkpoint
            step directory or a checkpoint root, which resolves to its
            newest snapshot) before executing.  A resumed run's predictions
            are bit-identical to an uninterrupted one; corrupt checkpoints
            raise :class:`~repro.errors.CheckpointError`.
        **options:
            Backend-specific options (e.g. ``cluster=`` / ``partitioner=`` /
            ``enforce_memory=`` for the simulated engines).  Unknown backends
            and unsupported options raise
            :class:`~repro.errors.ConfigurationError` up front.

        Returns
        -------
        repro.runtime.report.RunReport
            Predictions, candidate scores, and normalized accounting.
        """
        from repro.runtime import available_backends, get_backend

        if workers is not None:
            options["workers"] = workers
            # Reuse this predictor's worker pool across predict() calls;
            # the executor bypasses the lease for fault-injected runs and
            # invalidates it after worker crashes.
            options.setdefault("pool", self._worker_pool())
        if checkpoint_dir is not None:
            options["checkpoint_dir"] = checkpoint_dir
        if checkpoint_every is not None:
            options["checkpoint_every"] = checkpoint_every
        if resume_from is not None:
            options["resume_from"] = resume_from
        if mode is not None and backend is None and mode in available_backends():
            warnings.warn(
                "predict(mode=<backend name>) is deprecated; use "
                "predict(backend=...), which returns a RunReport instead of "
                "a PredictionResult",
                DeprecationWarning,
                stacklevel=2,
            )
            report = self.predict(graph, backend=mode, vertices=vertices,
                                  **options)
            return PredictionResult(
                predictions=report.predictions,
                scores=report.scores,
                config=self._config,
                wall_clock_seconds=report.wall_clock_seconds,
                simulated_seconds=report.simulated_seconds,
                gas_result=report.native if mode == "gas" else None,
            )
        if mode is not None:
            # An execution mode for the (possibly defaulted) backend, e.g.
            # mode="vectorized" / mode="reference" on the local backend.
            options["mode"] = mode
        if backend is None:
            backend = "local"
        engine = get_backend(backend, **options)
        engine.prepare(graph, self._config)
        return engine.run(vertices=vertices)

    def predict_iter(self, graph: DiGraph, *, backend: str = "local",
                     vertices: list[int] | None = None, batch_size: int = 256,
                     **options) -> Iterator:
        """Stream per-vertex predictions for large vertex sets.

        Yields :class:`~repro.runtime.report.VertexPrediction` records in
        ``vertices`` order (all vertices by default).  On incremental
        backends (``local``) the graph-global phases run once and the
        per-vertex phase is executed in batches of ``batch_size``, bounding
        the score memory held at any time; other backends run once and the
        results are streamed from the finished report.
        """
        from repro.runtime import get_backend

        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        engine = get_backend(backend, **options)
        engine.prepare(graph, self._config)
        capabilities = engine.capabilities()
        targets = list(graph.vertices()) if vertices is None else list(vertices)
        if capabilities.incremental and capabilities.vertex_subset:
            for start in range(0, len(targets), batch_size):
                batch = targets[start:start + batch_size]
                report = engine.run(vertices=batch)
                yield from report.vertex_predictions(batch)
        else:
            report = engine.run(vertices=targets)
            yield from report.vertex_predictions(targets)

    # ------------------------------------------------------------------
    # Deprecation shims for the pre-registry calling conventions
    # ------------------------------------------------------------------
    def predict_gas(
        self,
        graph: DiGraph,
        *,
        cluster: ClusterConfig | None = None,
        partitioner: Partitioner | None = None,
        enforce_memory: bool = True,
        vertices: list[int] | None = None,
    ) -> PredictionResult:
        """Deprecated: use ``predict(graph, backend="gas", ...)``.

        Raises :class:`~repro.errors.ResourceExhaustedError` when the chosen
        cluster cannot hold the program's vertex data (only relevant for the
        naive baseline or deliberately tiny clusters).
        """
        warnings.warn(
            "predict_gas is deprecated; use predict(graph, backend='gas', ...)",
            DeprecationWarning,
            stacklevel=2,
        )
        report = self.predict(
            graph,
            backend="gas",
            vertices=vertices,
            cluster=cluster,
            partitioner=partitioner,
            enforce_memory=enforce_memory,
        )
        return PredictionResult(
            predictions=report.predictions,
            scores=report.scores,
            config=self._config,
            wall_clock_seconds=report.wall_clock_seconds,
            simulated_seconds=report.simulated_seconds,
            gas_result=report.native,
        )

    def predict_local(
        self,
        graph: DiGraph,
        *,
        vertices: list[int] | None = None,
    ) -> PredictionResult:
        """Deprecated: use ``predict(graph, backend="local", ...)``."""
        warnings.warn(
            "predict_local is deprecated; use predict(graph, backend='local', ...)",
            DeprecationWarning,
            stacklevel=2,
        )
        report = self.predict(graph, backend="local", vertices=vertices)
        return PredictionResult(
            predictions=report.predictions,
            scores=report.scores,
            config=self._config,
            wall_clock_seconds=report.wall_clock_seconds,
            simulated_seconds=None,
            gas_result=None,
        )
