"""Vectorized SNAPLE scoring kernel: CSR-native Algorithm 2.

The reference execution paths (the ``local`` backend's scalar loops, the
simulated GAS engine, the shared-nothing parallel tasks) evaluate Algorithm 2
one vertex and one neighbor at a time: every ``sim(u, v)`` call rebuilds two
Python sets, every path combination is a dict operation, and every ranking is
a sort.  This module re-expresses the three phases as array programs over the
graph's CSR adjacency:

1. :func:`build_truncated_neighborhoods` materializes every truncated
   neighborhood ``Γ̂(u)`` once as a CSR ``(indptr, indices)`` pair, consuming
   randomness exactly as the scalar path it mirrors (the sequential stream of
   the ``local`` reference, or the per-vertex streams of the parallel GAS
   steps) so results stay bit-identical;
2. :func:`edge_similarities` computes the raw similarity of *all* edges in
   one pass.  Every similarity in :data:`repro.snaple.similarity.SIMILARITIES`
   is a function of ``(|Γ̂u ∩ Γ̂v|, |Γ̂u|, |Γ̂v|)``, so the kernel reduces the
   whole table to one batched sorted-array intersection (a galloping binary
   search of the smaller neighborhood into the global key array), cached per
   *unordered* vertex pair so ``sim(u, v)`` is never intersected twice;
3. :func:`select_klocal` and :func:`combine_and_rank` fuse the ``klocal``
   selection, 2-hop path combination, aggregation, and top-``k`` ranking into
   array operations, using ``np.argpartition`` (plus an exact tie repair on
   the boundary value) instead of full sorts.

Bit-parity contract
-------------------
The kernel reproduces the scalar paths *bit-exactly*, not just approximately:

* float-fold order is preserved — path contributions are aggregated
  left-to-right in the same arrival order the scalar dict merges use (a
  vectorized "rounds" reduction; ``np.add.reduceat`` is avoided because it
  switches to pairwise summation for long runs);
* ``np.log`` may differ from ``math.log`` in the last bit (NumPy ships SIMD
  transcendentals), so the adamic-adar weight evaluates ``math.log`` over the
  small set of distinct integer union sizes and gathers from that table;
* elementwise ``+ - * /`` and ``np.sqrt`` are IEEE-identical to the scalar
  operations, and the geometric-mean normalization goes through
  ``np.float_power`` (libm ``pow``, like the scalar ``**``) because the
  ``**`` ufunc's SIMD pow differs in the last bit.

Scores can still differ from the reference in the last ulp on exotic
platforms whose ``pow`` is not correctly rounded; the parity suite therefore
asserts predictions exactly and scores within ``REL_TOL``.

Configurations outside the vectorizable design space (a similarity,
combinator, aggregator, or sampler not in the registries below — e.g. a
user-registered callable) are reported by :func:`kernel_supports`; callers
fall back to the scalar reference path for them.
"""

from __future__ import annotations

import itertools
import math
import random
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.graph.digraph import DiGraph
from repro.graph.sampling import bernoulli_truncate, reservoir_sample, truncate_neighborhood
# CSR indexing helpers shared with the columnar state plane.
from repro.runtime.state import gather_slices as _gather_slices
from repro.runtime.state import indptr_from_counts as _indptr_from_counts
from repro.snaple.aggregators import (
    GeometricMeanAggregator,
    MaxAggregator,
    MeanAggregator,
    SumAggregator,
)
from repro.snaple.combinators import (
    CountCombinator,
    EuclideanCombinator,
    GeometricCombinator,
    LinearCombinator,
    SumCombinator,
)
from repro.snaple.config import SnapleConfig
from repro.snaple.sampler import (
    BottomSimilaritySampler,
    RandomSampler,
    TopSimilaritySampler,
)
from repro.snaple.similarity import SIMILARITIES

__all__ = [
    "REL_TOL",
    "kernel_supports",
    "NeighborhoodCSR",
    "EdgeSimilarities",
    "KeptNeighbors",
    "build_truncated_neighborhoods",
    "edge_similarities",
    "select_klocal",
    "combine_and_rank",
    "LazyScores",
    "VectorizedKernel",
    "gas_sample_step",
    "gas_similarity_step",
    "gas_recommendation_step",
    "combine_and_rank_columnar",
    "columns_to_neighborhood_csr",
    "columns_to_kept",
    "gas_sample_step_columnar",
    "gas_similarity_step_columnar",
    "gas_recommendation_step_columnar",
]

#: Relative score tolerance documented for the parity suite.  With the
#: fold-order-preserving aggregation the kernel is bit-identical on the
#: platforms CI runs on; the tolerance only covers non-correctly-rounded
#: ``pow`` implementations (geometric-mean normalization).
REL_TOL = 1e-12


# ----------------------------------------------------------------------
# Vectorized registries mirroring the scalar ones
# ----------------------------------------------------------------------
def _div(num: np.ndarray, den: np.ndarray) -> np.ndarray:
    """``num / den`` with 0 where ``den <= 0`` (all scalar sims guard this)."""
    out = np.zeros(num.shape, dtype=np.float64)
    np.divide(num, den, out=out, where=den > 0)
    return out


def _v_jaccard(inter, size_u, size_v):
    return _div(inter, size_u + size_v - inter)


def _v_common_neighbors(inter, size_u, size_v):
    return inter.astype(np.float64)


def _v_cosine(inter, size_u, size_v):
    return _div(inter, np.sqrt((size_u * size_v).astype(np.float64)))


def _v_dice(inter, size_u, size_v):
    return _div(2 * inter, size_u + size_v)


def _v_overlap(inter, size_u, size_v):
    return _div(inter, np.minimum(size_u, size_v))


def _v_adamic_adar(inter, size_u, size_v):
    union = size_u + size_v - inter
    out = np.zeros(inter.shape, dtype=np.float64)
    mask = (inter > 0) & (union > 1)
    if mask.any():
        # math.log over the distinct integer union sizes: np.log's SIMD
        # implementation can differ from libm in the last bit.
        distinct = np.unique(union[mask])
        table = np.array([math.log(int(value) + 1) for value in distinct])
        out[mask] = inter[mask] / table[np.searchsorted(distinct, union[mask])]
    return out


def _v_one(inter, size_u, size_v):
    return np.ones(inter.shape, dtype=np.float64)


def _v_inverse_degree(inter, size_u, size_v):
    return _div(np.ones(inter.shape, dtype=np.float64), size_v)


#: name -> f(intersection, |Γ̂u|, |Γ̂v|), matching repro.snaple.similarity.
_VECTORIZED_SIMILARITIES = {
    "jaccard": _v_jaccard,
    "common_neighbors": _v_common_neighbors,
    "cosine": _v_cosine,
    "dice": _v_dice,
    "overlap": _v_overlap,
    "adamic_adar": _v_adamic_adar,
    "one": _v_one,
    "inverse_degree": _v_inverse_degree,
}

_COMBINATOR_TYPES = (
    LinearCombinator,
    EuclideanCombinator,
    GeometricCombinator,
    SumCombinator,
    CountCombinator,
)

#: aggregator type -> the ufunc implementing its (commutative) ``pre``.
_AGGREGATOR_UFUNCS = {
    SumAggregator: np.add,
    MeanAggregator: np.add,
    GeometricMeanAggregator: np.multiply,
    MaxAggregator: np.maximum,
}

_SAMPLER_TYPES = (TopSimilaritySampler, BottomSimilaritySampler, RandomSampler)


def _combine_arrays(combinator, sim_uv: np.ndarray, sim_vz: np.ndarray) -> np.ndarray:
    """Vectorized ``⊗`` with the exact float semantics of ``combine``."""
    if type(combinator) is LinearCombinator:
        return combinator.alpha * sim_uv + (1.0 - combinator.alpha) * sim_vz
    if type(combinator) is EuclideanCombinator:
        return np.sqrt(sim_uv * sim_uv + sim_vz * sim_vz)
    if type(combinator) is GeometricCombinator:
        product = sim_uv * sim_vz
        out = np.zeros(product.shape, dtype=np.float64)
        np.sqrt(product, out=out, where=product > 0.0)
        return out
    if type(combinator) is SumCombinator:
        return sim_uv + sim_vz
    if type(combinator) is CountCombinator:
        return np.ones(sim_uv.shape, dtype=np.float64)
    raise TypeError(f"combinator {combinator!r} has no vectorized form")


def _aggregator_post(aggregator, accumulated: np.ndarray,
                     counts: np.ndarray) -> np.ndarray:
    """Vectorized ``⊕post`` (counts are >= 1 by construction)."""
    if type(aggregator) is SumAggregator or type(aggregator) is MaxAggregator:
        return accumulated
    if type(aggregator) is MeanAggregator:
        return accumulated / counts
    if type(aggregator) is GeometricMeanAggregator:
        out = np.zeros(accumulated.shape, dtype=np.float64)
        positive = accumulated > 0.0
        if positive.any():
            # float_power routes through libm's pow like the scalar ``**``;
            # the ``**`` ufunc's SIMD pow differs in the last bit.
            out[positive] = np.float_power(
                accumulated[positive], 1.0 / counts[positive]
            )
        return out
    raise TypeError(f"aggregator {aggregator!r} has no vectorized form")


def kernel_supports(config: SnapleConfig) -> bool:
    """Whether the whole scoring configuration has a vectorized form.

    The check is by *identity*, not name: a custom callable registered under
    a known name (or a subclass overriding ``combine``/``pre``) would compute
    something else, so only the stock registry entries qualify.
    """
    score = config.score
    for fn, name in ((score.similarity, score.similarity_name),
                     (score.selection_similarity, score.selection_similarity_name)):
        if name not in _VECTORIZED_SIMILARITIES or SIMILARITIES.get(name) is not fn:
            return False
    return (
        type(score.combinator) in _COMBINATOR_TYPES
        and type(score.aggregator) in _AGGREGATOR_UFUNCS
        and type(config.sampler) in _SAMPLER_TYPES
    )


def _dedup_sorted_rows(counts: np.ndarray, flat: np.ndarray
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Drop repeated values inside each (sorted) row of a flat CSR payload.

    Returns ``(new_counts, new_flat, row_of_value)``.
    """
    num_rows = counts.size
    if flat.size == 0:
        return counts.copy(), flat, np.empty(0, dtype=np.int64)
    row_id = np.repeat(np.arange(num_rows, dtype=np.int64), counts)
    keep = np.ones(flat.size, dtype=bool)
    keep[1:] = (flat[1:] != flat[:-1]) | (row_id[1:] != row_id[:-1])
    flat = flat[keep]
    row_id = row_id[keep]
    new_counts = np.bincount(row_id, minlength=num_rows).astype(np.int64)
    return new_counts, flat, row_id


#: Largest pair-bitmap a NeighborhoodCSR will allocate (bits), 32 MiB.
_BITMAP_LIMIT_BITS = 1 << 28


@dataclass
class NeighborhoodCSR:
    """All truncated neighborhoods ``Γ̂`` as one CSR structure.

    ``indices`` rows are sorted and duplicate-free, so sizes are set sizes
    and ``keys`` (``u * num_vertices + neighbor``) is globally sorted —
    membership of any ``(u, z)`` pair is one binary search, or one bit probe
    once the dense pair bitmap has been built (small graphs only; the first
    bulk membership query builds it lazily).
    """

    num_vertices: int
    indptr: np.ndarray
    indices: np.ndarray
    keys: np.ndarray
    sizes: np.ndarray
    _bitmap: np.ndarray | None = None
    _bitmap_tried: bool = False

    @classmethod
    def from_rows(cls, num_vertices: int, counts: np.ndarray,
                  flat: np.ndarray) -> "NeighborhoodCSR":
        counts, flat, row_id = _dedup_sorted_rows(counts, flat)
        keys = row_id * np.int64(num_vertices) + flat if flat.size else flat
        return cls(
            num_vertices=num_vertices,
            indptr=_indptr_from_counts(counts),
            indices=flat,
            keys=keys,
            sizes=counts,
        )

    def contains(self, rows: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Vectorized membership test ``values[i] in Γ̂(rows[i])``."""
        return self.contains_keys(rows * np.int64(self.num_vertices) + values)

    def contains_keys(self, probe: np.ndarray) -> np.ndarray:
        """Membership test for precomputed ``row * num_vertices + value`` keys."""
        if self.keys.size == 0:
            return np.zeros(probe.shape, dtype=bool)
        bitmap = self._pair_bitmap()
        if bitmap is not None:
            bits = bitmap[probe >> 3] >> (probe & 7).astype(np.uint8)
            return (bits & 1).astype(bool)
        loc = np.searchsorted(self.keys, probe)
        loc[loc == self.keys.size] = 0  # any valid index; mismatch filters it
        return self.keys[loc] == probe

    def _pair_bitmap(self) -> np.ndarray | None:
        """Dense one-bit-per-(row, value) table, built lazily for small graphs."""
        if not self._bitmap_tried:
            self._bitmap_tried = True
            total_bits = self.num_vertices * self.num_vertices
            if 0 < total_bits <= _BITMAP_LIMIT_BITS:
                bitmap = np.zeros((total_bits + 7) // 8, dtype=np.uint8)
                byte_of = self.keys >> 3
                bit_of = (np.uint8(1) << (self.keys & 7).astype(np.uint8))
                # keys are sorted, so equal bytes are adjacent: OR-reduce each
                # run and store once (no slow ufunc.at scatter).
                first = np.ones(byte_of.size, dtype=bool)
                first[1:] = byte_of[1:] != byte_of[:-1]
                starts = np.flatnonzero(first)
                bitmap[byte_of[starts]] = np.bitwise_or.reduceat(bit_of, starts)
                self._bitmap = bitmap
        return self._bitmap

    def row(self, u: int) -> np.ndarray:
        return self.indices[self.indptr[u]:self.indptr[u + 1]]


def build_truncated_neighborhoods(
    graph: DiGraph,
    config: SnapleConfig,
    *,
    vertices: list[int] | None = None,
) -> NeighborhoodCSR:
    """Phase 1: every ``Γ̂(u)`` in one CSR, with scalar-path RNG parity.

    Randomness comes from one shared stream consumed in ascending vertex
    order, exactly like the ``local`` reference backend, and only vertices
    whose degree exceeds ``thrΓ`` consume draws — matching the scalar path
    draw for draw.  (The parallel GAS tasks use :func:`gas_sample_step`
    instead, which replicates the per-vertex-stream draw pattern of the
    scalar gather and keeps duplicate neighbors in the vertex data.)

    ``vertices`` restricts the computed rows (others stay empty).
    """
    num_vertices = graph.num_vertices
    indptr, indices = graph.csr_out_adjacency()
    degrees = np.diff(indptr)
    threshold = config.truncation_threshold

    active_mask = np.zeros(num_vertices, dtype=bool)
    if vertices is None:
        active_mask[:] = True
    elif len(vertices):
        active_mask[np.asarray(vertices, dtype=np.int64)] = True

    truncates = (
        np.zeros(num_vertices, dtype=bool)
        if math.isinf(threshold)
        else (degrees > threshold) & active_mask
    )
    shared_rng = random.Random(config.seed)

    replaced: dict[int, np.ndarray] = {}
    for u in np.flatnonzero(truncates).tolist():
        neighbors = indices[indptr[u]:indptr[u + 1]].tolist()
        sample = truncate_neighborhood(
            neighbors, threshold, rng=shared_rng,
            exact=config.exact_truncation,
        )
        replaced[u] = np.unique(np.asarray(sample, dtype=np.int64))

    counts = np.where(active_mask, degrees, 0)
    for u, sample in replaced.items():
        counts[u] = sample.size
    counts = counts.astype(np.int64)

    flat = np.empty(int(counts.sum()), dtype=np.int64)
    new_indptr = _indptr_from_counts(counts)
    copied = active_mask & ~truncates
    rows = np.flatnonzero(copied)
    flat[_gather_slices(new_indptr[rows], counts[rows])] = (
        indices[_gather_slices(indptr[rows], degrees[rows])]
    )
    for u, sample in replaced.items():
        flat[new_indptr[u]:new_indptr[u] + sample.size] = sample
    return NeighborhoodCSR.from_rows(num_vertices, counts, flat)


# ----------------------------------------------------------------------
# Phase 2: batched edge similarities
# ----------------------------------------------------------------------
@dataclass
class EdgeSimilarities:
    """Raw similarities for the (deduplicated) out-edges of selected rows.

    One entry per distinct directed edge ``u -> v``; ``indptr`` spans all
    vertices, with empty rows for vertices outside the requested set.
    """

    indptr: np.ndarray
    neighbor: np.ndarray
    path_sim: np.ndarray
    selection_sim: np.ndarray


def _pairwise_intersections(gamma: NeighborhoodCSR, left: np.ndarray,
                            right: np.ndarray) -> np.ndarray:
    """``|Γ̂(left[i]) ∩ Γ̂(right[i])|`` for each vertex pair, batched.

    Probes every element of the smaller neighborhood against the global
    sorted key array (galloping binary search), then counts hits per pair.
    """
    if left.size == 0:
        return np.zeros(0, dtype=np.int64)
    sizes_left = gamma.sizes[left]
    sizes_right = gamma.sizes[right]
    probe_is_left = sizes_left <= sizes_right
    probe = np.where(probe_is_left, left, right)
    table = np.where(probe_is_left, right, left)
    probe_counts = np.minimum(sizes_left, sizes_right)
    positions = _gather_slices(gamma.indptr[probe], probe_counts)
    values = gamma.indices[positions]
    pair_of = np.repeat(np.arange(left.size, dtype=np.int64), probe_counts)
    found = gamma.contains(table[pair_of], values)
    return np.bincount(pair_of[found], minlength=left.size).astype(np.int64)


def edge_similarities(graph: DiGraph, gamma: NeighborhoodCSR,
                      config: SnapleConfig, *,
                      rows: np.ndarray | None = None,
                      pair_cache: Any | None = None) -> EdgeSimilarities:
    """Phase 2: path + selection similarities for every edge in one pass.

    The intersection — the only expensive part, shared by every similarity in
    the table — is computed once per *unordered* vertex pair (the
    edge-symmetric cache) and broadcast back to the directed edges.

    ``pair_cache`` optionally persists those per-pair intersections across
    calls.  It must provide ``lookup(low, high) -> (inter, known)`` — the
    cached ``|Γ̂(low[i]) ∩ Γ̂(high[i])|`` values plus a boolean mask of which
    entries were found — and ``store(low, high, inter)`` for the entries
    computed here.  The serving layer's
    :class:`~repro.serving.index.PairSimilarityCache` implements the
    protocol with per-vertex invalidation; batch callers pass ``None`` and
    keep the one-shot behaviour.
    """
    num_vertices = graph.num_vertices
    indptr, indices = graph.csr_out_adjacency()
    degrees = np.diff(indptr)
    if rows is None:
        rows = np.arange(num_vertices, dtype=np.int64)
    else:
        rows = np.sort(np.asarray(rows, dtype=np.int64))
    counts = np.zeros(num_vertices, dtype=np.int64)
    counts[rows] = degrees[rows]
    flat = indices[_gather_slices(indptr[rows], degrees[rows])]
    counts, flat, row_id = _dedup_sorted_rows(counts, flat)

    inter = np.zeros(flat.size, dtype=np.int64)
    if flat.size:
        low = np.minimum(row_id, flat)
        high = np.maximum(row_id, flat)
        pair_keys = low * np.int64(num_vertices) + high
        distinct, representative, inverse = np.unique(
            pair_keys, return_index=True, return_inverse=True
        )
        rep_low = low[representative]
        rep_high = high[representative]
        if pair_cache is None:
            rep_inter = _pairwise_intersections(gamma, rep_low, rep_high)
        else:
            rep_inter, known = pair_cache.lookup(rep_low, rep_high)
            missing = np.flatnonzero(~known)
            if missing.size:
                computed = _pairwise_intersections(
                    gamma, rep_low[missing], rep_high[missing]
                )
                rep_inter[missing] = computed
                pair_cache.store(rep_low[missing], rep_high[missing],
                                 computed)
        inter = rep_inter[inverse]

    size_u = gamma.sizes[row_id] if flat.size else np.zeros(0, dtype=np.int64)
    size_v = gamma.sizes[flat] if flat.size else np.zeros(0, dtype=np.int64)
    score = config.score
    selection_fn = _VECTORIZED_SIMILARITIES[score.selection_similarity_name]
    selection_sim = selection_fn(inter, size_u, size_v)
    if score.selection_similarity is score.similarity:
        path_sim = selection_sim
    else:
        path_fn = _VECTORIZED_SIMILARITIES[score.similarity_name]
        path_sim = path_fn(inter, size_u, size_v)
    return EdgeSimilarities(
        indptr=_indptr_from_counts(counts),
        neighbor=flat,
        path_sim=path_sim,
        selection_sim=selection_sim,
    )


# ----------------------------------------------------------------------
# Phase 3a: klocal selection
# ----------------------------------------------------------------------
@dataclass
class KeptNeighbors:
    """The ``klocal``-selected neighbors per vertex, in *selection order*.

    The row order matches the insertion order of the scalar ``sims`` dicts
    (``Γmax``: similarity descending, id ascending; ``Γmin``: ascending;
    unsampled rows: neighbor id ascending) because the scalar reference
    iterates those dicts when accumulating paths — preserving it keeps the
    float fold order, and therefore the scores, bit-identical.
    """

    indptr: np.ndarray
    ids: np.ndarray
    sims: np.ndarray

    def sims_dict(self, u: int) -> dict[int, float]:
        start, end = self.indptr[u], self.indptr[u + 1]
        return dict(zip(self.ids[start:end].tolist(),
                        self.sims[start:end].tolist()))


def _smallest_k_by(primary: np.ndarray, ids: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` smallest by ``(primary, id)``, in that order.

    ``np.argpartition`` shrinks the candidate set to the boundary value, ties
    on the boundary are repaired exactly, and only the ``k`` survivors are
    sorted — the full-sort-free ranking the scalar heaps provide.
    """
    n = primary.size
    if n > 2 * k:
        boundary = primary[np.argpartition(primary, k - 1)[k - 1]]
        keep = np.flatnonzero(primary <= boundary)
        order = np.lexsort((ids[keep], primary[keep]))[:k]
        return keep[order]
    return np.lexsort((ids, primary))[:k]


def select_klocal(edges: EdgeSimilarities, config: SnapleConfig, *,
                  rng_mode: str = "sequential",
                  rows: np.ndarray | None = None) -> KeptNeighbors:
    """Phase 3a: keep ``klocal`` neighbors per vertex, scalar-order parity.

    ``Γmax``/``Γmin`` rows larger than ``klocal`` go through the
    ``argpartition`` fast path; ``Γrnd`` rows delegate to the sampler itself
    so the random draws match the scalar engines draw-for-draw (sequential
    stream seeded ``seed + 1``, or the vertex's own stream, matching
    ``rng_mode``).
    """
    from repro.snaple.program import vertex_rng

    k_local = config.k_local
    counts = np.diff(edges.indptr)
    num_vertices = counts.size
    if rows is None:
        rows = np.arange(num_vertices, dtype=np.int64)
    if math.isinf(k_local):
        oversized = np.empty(0, dtype=np.int64)
    else:
        oversized = rows[counts[rows] > k_local]

    kept_counts = counts.copy()
    sampler = config.sampler
    sequential = rng_mode == "sequential"
    if sequential:
        shared_rng = random.Random(config.seed + 1)
    replaced: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    budget = int(k_local) if not math.isinf(k_local) else 0
    for u in oversized.tolist():
        start, end = int(edges.indptr[u]), int(edges.indptr[u + 1])
        ids = edges.neighbor[start:end]
        selection = edges.selection_sim[start:end]
        path = edges.path_sim[start:end]
        if type(sampler) is TopSimilaritySampler:
            chosen = _smallest_k_by(-selection, ids, budget)
        elif type(sampler) is BottomSimilaritySampler:
            chosen = _smallest_k_by(selection, ids, budget)
        else:  # Γrnd: replay the sampler itself for draw-exact parity
            rng = shared_rng if sequential else vertex_rng(config.seed, 1, u)
            kept = sampler.select(
                dict(zip(ids.tolist(), selection.tolist())), k_local, rng=rng
            )
            lookup = {int(v): i for i, v in enumerate(ids.tolist())}
            chosen = np.array([lookup[v] for v in kept], dtype=np.int64)
        replaced[u] = (ids[chosen], path[chosen])
        kept_counts[u] = len(chosen)

    if not replaced:
        return KeptNeighbors(indptr=edges.indptr, ids=edges.neighbor,
                             sims=edges.path_sim)
    new_indptr = _indptr_from_counts(kept_counts)
    ids_out = np.empty(int(kept_counts.sum()), dtype=np.int64)
    sims_out = np.empty(ids_out.size, dtype=np.float64)
    untouched = rows[counts[rows] <= k_local]
    src = _gather_slices(edges.indptr[untouched], counts[untouched])
    dst = _gather_slices(new_indptr[untouched], counts[untouched])
    ids_out[dst] = edges.neighbor[src]
    sims_out[dst] = edges.path_sim[src]
    for u, (ids, sims) in replaced.items():
        start = new_indptr[u]
        ids_out[start:start + ids.size] = ids
        sims_out[start:start + ids.size] = sims
    return KeptNeighbors(indptr=new_indptr, ids=ids_out, sims=sims_out)


# ----------------------------------------------------------------------
# Phase 3b: fused path combination + aggregation + top-k
# ----------------------------------------------------------------------
class LazyScores(Mapping):
    """Per-target candidate score maps, materialized on first access.

    Algorithm 2 treats the full candidate score map as a temporary of the
    apply phase — only the top-``k`` predictions are the program's output.
    The vectorized kernel therefore keeps the scores as flat arrays and
    builds the per-vertex ``{candidate: score}`` dicts only when someone
    actually reads them (evaluation code reads predictions; the score maps
    serve inspection, supervision, and the parity suite).  Content equality
    with the eagerly-built reference dicts is exact — ``==`` against any
    mapping compares the materialized values.
    """

    __slots__ = ("_offsets", "_candidates", "_values", "_cache")

    def __init__(self, targets: list[int], starts: np.ndarray,
                 counts: np.ndarray, candidates: np.ndarray,
                 values: np.ndarray) -> None:
        starts_list = starts.tolist()
        counts_list = counts.tolist()
        #: target -> (start, count); also fixes iteration order (last
        #: occurrence wins for duplicate targets, like dict assignment).
        self._offsets = {
            u: (starts_list[i], counts_list[i]) for i, u in enumerate(targets)
        }
        self._candidates = candidates
        self._values = values
        self._cache: dict[int, dict[int, float]] = {}

    def __getitem__(self, u: int) -> dict[int, float]:
        cached = self._cache.get(u)
        if cached is not None:
            return cached
        start, count = self._offsets[u]  # raises KeyError for unknown targets
        end = start + count
        entry = dict(zip(self._candidates[start:end].tolist(),
                         self._values[start:end].tolist()))
        self._cache[u] = entry
        return entry

    def __iter__(self):
        return iter(self._offsets)

    def __len__(self) -> int:
        return len(self._offsets)

    def __contains__(self, u) -> bool:
        return u in self._offsets

    def materialize(self) -> dict[int, dict[int, float]]:
        """All score maps as one eager ``dict`` (what ``dict(self)`` yields)."""
        return {u: self[u] for u in self._offsets}

    def __eq__(self, other) -> bool:
        if isinstance(other, LazyScores):
            other = other.materialize()
        if not isinstance(other, Mapping):
            return NotImplemented
        if len(other) != len(self._offsets):
            return False
        try:
            return all(self[u] == other[u] for u in self._offsets)
        except KeyError:
            return False

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:
        return f"LazyScores(<{len(self._offsets)} targets>)"



def _fold_groups(ufunc, values: np.ndarray, starts: np.ndarray,
                 sizes: np.ndarray) -> np.ndarray:
    """Left-to-right ``ufunc`` fold of each group — exact scalar fold order.

    ``ufunc.reduceat`` is not usable here: NumPy switches to pairwise
    summation for runs longer than 8 elements, which changes float results.
    This folds all groups simultaneously, one element-rank per round, so the
    number of vectorized rounds is the largest group size.
    """
    accumulated = values[starts].copy()
    offset = 1
    remaining = np.flatnonzero(sizes > 1)
    while remaining.size:
        accumulated[remaining] = ufunc(
            accumulated[remaining], values[starts[remaining] + offset]
        )
        offset += 1
        remaining = remaining[sizes[remaining] > offset]
    return accumulated


def _top_k_rounds(scores: np.ndarray, candidates: np.ndarray,
                  seg_starts: np.ndarray, seg_sizes: np.ndarray,
                  k: int) -> list[list[int]]:
    """Top-``k`` per segment by ``(-score, candidate)``, without full sorts.

    Candidates are id-ascending inside each segment, so the *first* maximum
    of a segment is exactly the scalar tie-break (highest score, smallest
    id).  Each round extracts every segment's current maximum at once.
    """
    num_segments = seg_starts.size
    picks: list[list[int]] = [[] for _ in range(num_segments)]
    if scores.size == 0 or num_segments == 0:
        return picks
    working = scores.copy()
    segment_of = np.repeat(np.arange(num_segments, dtype=np.int64), seg_sizes)
    for round_index in range(k):
        best = np.maximum.reduceat(working, seg_starts)
        is_best = working == best[segment_of]
        if round_index:  # scores are finite, so -inf only marks extractions
            is_best &= working != -np.inf
        hits = np.flatnonzero(is_best)
        if hits.size == 0:
            break
        hit_segments = segment_of[hits]
        first = np.ones(hits.size, dtype=bool)
        first[1:] = hit_segments[1:] != hit_segments[:-1]
        chosen = hits[first]
        for segment, z in zip(hit_segments[first].tolist(),
                              candidates[chosen].tolist()):
            picks[segment].append(z)
        working[chosen] = -np.inf
    return picks


def _path_edges_sampler_order(kept: KeptNeighbors, targets: np.ndarray
                              ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Kept edges of each target in selection order (local reference parity)."""
    num_rows = kept.indptr.size - 1
    if targets.size == num_rows and np.array_equal(
            targets, np.arange(num_rows, dtype=np.int64)):
        # Full-graph run: the kept CSR payload already is the edge list.
        rank = np.repeat(targets, np.diff(kept.indptr))
        return kept.ids, kept.sims, rank
    counts = np.diff(kept.indptr)[targets]
    positions = _gather_slices(kept.indptr[targets], counts)
    rank = np.repeat(np.arange(targets.size, dtype=np.int64), counts)
    return kept.ids[positions], kept.sims[positions], rank


def _path_edges_csr_order(graph: DiGraph, kept: KeptNeighbors,
                          targets: np.ndarray
                          ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Kept out-edges of each target in raw CSR order (GAS gather parity).

    The GAS gather walks the full adjacency (duplicates included) and skips
    neighbors outside ``sims(u)``; the kept value is looked up through a
    sorted view of the kept keys.
    """
    indptr, indices = graph.csr_out_adjacency()
    degrees = np.diff(indptr)[targets]
    neighbor = indices[_gather_slices(indptr[targets], degrees)]
    rank = np.repeat(np.arange(targets.size, dtype=np.int64), degrees)
    num_vertices = graph.num_vertices

    kept_rows = np.repeat(
        np.arange(num_vertices, dtype=np.int64), np.diff(kept.indptr)
    )
    kept_keys = kept_rows * np.int64(num_vertices) + kept.ids
    key_order = np.argsort(kept_keys)
    sorted_keys = kept_keys[key_order]
    probe = targets[rank] * np.int64(num_vertices) + neighbor
    loc = np.searchsorted(sorted_keys, probe)
    if sorted_keys.size:
        loc[loc == sorted_keys.size] = 0
        found = sorted_keys[loc] == probe
    else:
        found = np.zeros(probe.shape, dtype=bool)
    return (neighbor[found], kept.sims[key_order[loc[found]]], rank[found])


def _combine_core(
    graph: DiGraph,
    gamma: NeighborhoodCSR,
    kept: KeptNeighbors,
    config: SnapleConfig,
    target_array: np.ndarray,
    neighbor_order: str,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, list[list[int]]]:
    """The array core of phase 3b, shared by dict and columnar callers.

    Returns ``(seg_counts, seg_indptr, nonempty, group_candidate, final,
    picks)``: per-target candidate counts, their indptr, the indices of
    targets with at least one candidate, the candidate/score arrays laid out
    consecutively per target, and the top-``k`` picks per nonempty target.
    """
    num_targets = target_array.size
    if neighbor_order == "sampler":
        via, sim_uv, rank = _path_edges_sampler_order(kept, target_array)
    else:
        via, sim_uv, rank = _path_edges_csr_order(graph, kept, target_array)

    # Expand each kept edge (u -> v) into the candidate list kept(v).
    kept_counts = np.diff(kept.indptr)
    fanout = kept_counts[via]
    positions = _gather_slices(kept.indptr[via], fanout)
    candidate = kept.ids[positions]
    sim_vz = kept.sims[positions]
    path_rank = np.repeat(rank, fanout)
    combined = _combine_arrays(config.score.combinator,
                               np.repeat(sim_uv, fanout), sim_vz)

    # Drop self-candidates and already-known neighbors (z ∈ Γ̂(u)).  When the
    # targets are 0..T-1 (the common full-graph run) the grouping key doubles
    # as the membership probe, saving two full-length passes.
    num_vertices = np.int64(graph.num_vertices)
    group_key = path_rank * num_vertices + candidate
    if num_targets and np.array_equal(
            target_array, np.arange(num_targets, dtype=np.int64)):
        source = path_rank
        probe = group_key
    else:
        source = target_array[path_rank]
        probe = source * num_vertices + candidate
    keep = candidate != source
    keep &= ~gamma.contains_keys(probe)

    # Group by (target, candidate) preserving arrival order inside groups:
    # encode the arrival position into the sort key (in place, before the
    # filter compresses it) so one unstable O(n log n) value sort both
    # groups and orders, and the surviving positions index straight into the
    # unfiltered value array.  Falls back to a stable argsort when the
    # packed key would overflow 63 bits.
    n_all = candidate.size
    shift = max(int(n_all - 1).bit_length(), 1)
    key_bound = int(num_targets) * int(num_vertices)
    if shift < 62 and key_bound < (1 << (62 - shift)):
        group_key <<= shift
        group_key |= np.arange(n_all, dtype=np.int64)
        packed = group_key[keep]
        packed.sort()
        combined = combined[packed & ((1 << shift) - 1)]
        group_key = packed >> shift
    else:
        group_key = group_key[keep]
        combined = combined[keep]
        order = np.argsort(group_key, kind="stable")
        group_key = group_key[order]
        combined = combined[order]
    n_paths = group_key.size

    boundary = np.ones(n_paths, dtype=bool)
    boundary[1:] = group_key[1:] != group_key[:-1]
    starts = np.flatnonzero(boundary)
    sizes = np.diff(starts, append=n_paths)
    pre_ufunc = _AGGREGATOR_UFUNCS[type(config.score.aggregator)]
    accumulated = _fold_groups(pre_ufunc, combined, starts, sizes)
    final = _aggregator_post(config.score.aggregator, accumulated, sizes)
    group_rank = group_key[starts] // num_vertices
    group_candidate = group_key[starts] % num_vertices

    # Rank per target.
    seg_counts = np.bincount(group_rank, minlength=num_targets)
    seg_indptr = _indptr_from_counts(seg_counts)
    nonempty = np.flatnonzero(seg_counts)
    picks = _top_k_rounds(final, group_candidate,
                          seg_indptr[nonempty], seg_counts[nonempty],
                          config.k)
    return seg_counts, seg_indptr, nonempty, group_candidate, final, picks


def combine_and_rank(
    graph: DiGraph,
    gamma: NeighborhoodCSR,
    kept: KeptNeighbors,
    config: SnapleConfig,
    targets: list[int],
    *,
    neighbor_order: str = "sampler",
    materialize_scores: bool = True,
) -> tuple[dict[int, list[int]], Mapping]:
    """Phase 3b: all 2-hop paths combined, aggregated, and ranked at once.

    ``neighbor_order`` selects whose float fold order to reproduce:
    ``"sampler"`` iterates each target's kept neighbors in selection order
    (the ``local`` reference), ``"csr"`` iterates the raw adjacency and
    filters (the GAS gather).  Aggregation per candidate is a left-to-right
    fold in path arrival order either way, so scores match the scalar dict
    merges bit-for-bit.

    With ``materialize_scores=False`` the returned score maps are a
    :class:`LazyScores` view over the kernel's arrays (identical content,
    built on access) — predictions are always materialized eagerly.
    """
    target_array = np.asarray(targets, dtype=np.int64)
    num_targets = target_array.size
    predictions: dict[int, list[int]] = {}
    if num_targets == 0:
        return predictions, {}

    seg_counts, seg_indptr, nonempty, group_candidate, final, picks = (
        _combine_core(graph, gamma, kept, config, target_array,
                      neighbor_order)
    )
    target_list = target_array.tolist()
    for u in target_list:
        predictions[u] = []
    for segment, u in enumerate(target_array[nonempty].tolist()):
        predictions[u] = picks[segment]
    if not materialize_scores:
        return predictions, LazyScores(target_list, seg_indptr[:-1],
                                       seg_counts, group_candidate, final)
    scores: dict[int, dict[int, float]] = {u: {} for u in target_list}
    # Segments are laid out consecutively, so one global pair iterator sliced
    # per segment materializes every score dict without intermediate copies.
    pairs = zip(group_candidate.tolist(), final.tolist())
    islice = itertools.islice
    for u, count in zip(target_array[nonempty].tolist(),
                        seg_counts[nonempty].tolist()):
        scores[u] = dict(islice(pairs, count))
    return predictions, scores


# ----------------------------------------------------------------------
# The local-backend kernel object
# ----------------------------------------------------------------------
class VectorizedKernel:
    """Prepared state for the ``local`` backend's ``mode="vectorized"``.

    ``prepare`` runs the graph-global phases (1, 2, 3a) once; ``run`` only
    executes the fused per-target phase, so streaming over vertex batches
    costs no repeated global work — the same contract as the reference path.
    """

    def __init__(self, graph: DiGraph, config: SnapleConfig) -> None:
        self._graph = graph
        self._config = config
        self._gamma = build_truncated_neighborhoods(graph, config)
        edges = edge_similarities(graph, self._gamma, config)
        self._kept = select_klocal(edges, config)

    def run(self, targets: list[int]
            ) -> tuple[dict[int, list[int]], Mapping]:
        """Predictions (eager) and score maps (a :class:`LazyScores` view)."""
        return combine_and_rank(
            self._graph, self._gamma, self._kept, self._config, targets,
            neighbor_order="sampler", materialize_scores=False,
        )


# ----------------------------------------------------------------------
# Vectorized per-partition GAS supersteps (shared-nothing executor)
# ----------------------------------------------------------------------
def _csr_from_vertex_data(num_vertices: int, data: dict[int, dict[str, Any]],
                          key: str) -> NeighborhoodCSR:
    """A :class:`NeighborhoodCSR` over the sorted-list values in a snapshot."""
    counts = np.zeros(num_vertices, dtype=np.int64)
    for u, vertex_data in data.items():
        values = vertex_data.get(key)
        if values:
            counts[u] = len(values)
    flat_parts = [data[u][key] for u in sorted(data) if data[u].get(key)]
    flat = (np.asarray([v for part in flat_parts for v in part],
                       dtype=np.int64)
            if flat_parts else np.empty(0, dtype=np.int64))
    return NeighborhoodCSR.from_rows(num_vertices, counts, flat)


def _kept_from_vertex_data(num_vertices: int,
                           data: dict[int, dict[str, Any]]) -> KeptNeighbors:
    """The snapshot ``sims`` dicts as a :class:`KeptNeighbors` (order kept)."""
    counts = np.zeros(num_vertices, dtype=np.int64)
    ids_parts: list[list[int]] = []
    sims_parts: list[list[float]] = []
    for u in sorted(data):
        sims = data[u].get("sims")
        if sims:
            counts[u] = len(sims)
            ids_parts.append(list(sims.keys()))
            sims_parts.append(list(sims.values()))
    if ids_parts:
        ids = np.asarray([v for part in ids_parts for v in part],
                         dtype=np.int64)
        values = np.asarray([s for part in sims_parts for s in part],
                            dtype=np.float64)
    else:
        ids = np.empty(0, dtype=np.int64)
        values = np.empty(0, dtype=np.float64)
    return KeptNeighbors(indptr=_indptr_from_counts(counts), ids=ids,
                         sims=values)


def gas_sample_step(graph: DiGraph, config: SnapleConfig, active: list[int],
                    data: dict[int, dict[str, Any]]) -> tuple[int, int]:
    """Vectorized replacement for the ``sample-neighborhood`` partition task.

    Draw-for-draw identical to :class:`~repro.snaple.program.NeighborhoodSampleStep`
    under per-vertex RNG: Bernoulli draws happen only for vertices over the
    threshold, and exact truncation reservoir-samples the *full* neighborhood
    from the same stream afterwards.  Duplicate neighbors (parallel edges)
    are preserved, as the scalar gather preserves them.
    """
    from repro.snaple.program import vertex_rng

    threshold = config.truncation_threshold
    gathers = 0
    for u in active:
        neighbors = graph.out_neighbors(u).tolist()
        degree = len(neighbors)
        gathers += degree
        rng = None
        if not math.isinf(threshold) and degree > threshold:
            rng = vertex_rng(config.seed, 0, u)
            sample = bernoulli_truncate(neighbors, threshold, rng=rng)
        else:
            sample = neighbors
        if config.exact_truncation:
            if rng is None:
                rng = vertex_rng(config.seed, 0, u)
            sample = reservoir_sample(neighbors, threshold, rng=rng)
        data[u]["gamma"] = sorted(sample)
    return gathers, len(active)


def gas_similarity_step(graph: DiGraph, config: SnapleConfig,
                        active: list[int],
                        data: dict[int, dict[str, Any]]) -> tuple[int, int]:
    """Vectorized replacement for the ``estimate-similarities`` task."""
    gamma = _csr_from_vertex_data(graph.num_vertices, data, "gamma")
    rows = np.asarray(active, dtype=np.int64)
    edges = edge_similarities(graph, gamma, config, rows=rows)
    kept = select_klocal(edges, config, rng_mode="per_vertex", rows=rows)
    gathers = 0
    for u in active:
        data[u]["sims"] = kept.sims_dict(u)
        gathers += graph.out_degree(u)
    return gathers, len(active)


def gas_recommendation_step(
    graph: DiGraph, config: SnapleConfig, active: list[int],
    data: dict[int, dict[str, Any]],
) -> tuple[dict[int, dict[int, float]], int, int]:
    """Vectorized replacement for the ``compute-recommendations`` task.

    Follows the GAS gather's fold order (raw CSR adjacency, kept neighbors
    filtered) so the emitted scores are bit-identical to the scalar step.
    """
    gamma = _csr_from_vertex_data(graph.num_vertices, data, "gamma")
    kept = _kept_from_vertex_data(graph.num_vertices, data)
    predictions, scores = combine_and_rank(
        graph, gamma, kept, config, list(active), neighbor_order="csr",
    )
    gathers = 0
    for u in active:
        data[u]["predicted"] = predictions[u]
        gathers += graph.out_degree(u)
    return scores, gathers, len(active)


# ----------------------------------------------------------------------
# Columnar per-partition GAS supersteps (state-plane executor)
# ----------------------------------------------------------------------
def columns_to_neighborhood_csr(num_vertices: int, rows: np.ndarray,
                                counts: np.ndarray,
                                ids: np.ndarray) -> NeighborhoodCSR:
    """A :class:`NeighborhoodCSR` from a state-plane column slice.

    ``ids`` concatenates the (sorted, possibly duplicate-containing) rows in
    ascending ``rows`` order — exactly the layout
    :meth:`repro.runtime.state.StateStore.extract` produces — so no
    per-vertex marshalling happens here; ``from_rows`` only runs its usual
    dedup pass.
    """
    full_counts = np.zeros(num_vertices, dtype=np.int64)
    full_counts[rows] = counts
    return NeighborhoodCSR.from_rows(num_vertices, full_counts, ids)


def columns_to_kept(num_vertices: int, rows: np.ndarray, counts: np.ndarray,
                    ids: np.ndarray, vals: np.ndarray) -> KeptNeighbors:
    """A :class:`KeptNeighbors` view over a ``sims`` column slice (zero-copy)."""
    full_counts = np.zeros(num_vertices, dtype=np.int64)
    full_counts[rows] = counts
    return KeptNeighbors(indptr=_indptr_from_counts(full_counts), ids=ids,
                         sims=vals)


def combine_and_rank_columnar(
    graph: DiGraph,
    gamma: NeighborhoodCSR,
    kept: KeptNeighbors,
    config: SnapleConfig,
    targets: np.ndarray,
    *,
    neighbor_order: str = "csr",
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Phase 3b with array outputs for the shared-nothing executor.

    Returns ``(pred_counts, pred_flat, score_counts, score_candidates,
    score_values)``, all aligned with ``targets`` (scores laid out
    consecutively per target) — the coordinator merges these straight into
    the state plane and a :class:`LazyScores` view without ever building
    per-vertex dicts.
    """
    target_array = np.asarray(targets, dtype=np.int64)
    empty_ids = np.empty(0, dtype=np.int64)
    if target_array.size == 0:
        return (np.zeros(0, dtype=np.int64), empty_ids,
                np.zeros(0, dtype=np.int64), empty_ids,
                np.empty(0, dtype=np.float64))
    seg_counts, _seg_indptr, nonempty, group_candidate, final, picks = (
        _combine_core(graph, gamma, kept, config, target_array,
                      neighbor_order)
    )
    pred_counts = np.zeros(target_array.size, dtype=np.int64)
    if nonempty.size:
        pred_counts[nonempty] = np.fromiter(
            (len(p) for p in picks), dtype=np.int64, count=len(picks)
        )
    total = int(pred_counts.sum())
    pred_flat = (np.fromiter(itertools.chain.from_iterable(picks),
                             dtype=np.int64, count=total)
                 if total else empty_ids)
    return pred_counts, pred_flat, seg_counts, group_candidate, final


def gas_sample_step_columnar(
    graph: DiGraph, config: SnapleConfig, active: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Columnar ``sample-neighborhood`` partition task: arrays in, arrays out.

    Draw-for-draw identical to :func:`gas_sample_step` (per-vertex RNG
    streams; Bernoulli draws only for vertices over the threshold; exact
    truncation reservoir-samples the full neighborhood from the same
    stream).  Returns ``(counts, flat, gathers)`` aligned with ``active`` —
    under-threshold rows are copied from the CSR adjacency in bulk, only
    truncated rows run Python.
    """
    from repro.snaple.program import vertex_rng

    act = np.asarray(active, dtype=np.int64)
    indptr, indices = graph.csr_out_adjacency()
    degrees = np.diff(indptr)
    deg = degrees[act]
    threshold = config.truncation_threshold
    gathers = int(deg.sum())

    if math.isinf(threshold):
        loop_mask = np.zeros(act.size, dtype=bool)
    else:
        loop_mask = deg > threshold

    counts = deg.copy()
    replaced: list[np.ndarray] = []
    loop_positions = np.flatnonzero(loop_mask)
    for position, u in zip(loop_positions.tolist(),
                           act[loop_mask].tolist()):
        neighbors = indices[indptr[u]:indptr[u + 1]].tolist()
        rng = vertex_rng(config.seed, 0, u)
        sample = bernoulli_truncate(neighbors, threshold, rng=rng)
        if config.exact_truncation:
            # The scalar path draws the Bernoulli stream first and then
            # reservoir-samples the *full* neighborhood from the same
            # stream; replicate both so the draws line up exactly.
            sample = reservoir_sample(neighbors, threshold, rng=rng)
        row = np.asarray(sorted(sample), dtype=np.int64)
        replaced.append(row)
        counts[position] = row.size

    out_indptr = _indptr_from_counts(counts)
    flat = np.empty(int(counts.sum()), dtype=np.int64)
    copy_mask = ~loop_mask
    flat[_gather_slices(out_indptr[:-1][copy_mask], counts[copy_mask])] = (
        indices[_gather_slices(indptr[act[copy_mask]], deg[copy_mask])]
    )
    for position, row in zip(loop_positions.tolist(), replaced):
        start = out_indptr[position]
        flat[start:start + row.size] = row
    return counts, flat, gathers


def gas_similarity_step_columnar(
    graph: DiGraph, config: SnapleConfig, active: np.ndarray,
    gamma: NeighborhoodCSR,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Columnar ``estimate-similarities`` task over a gamma column slice.

    Returns ``(counts, ids, sims, gathers)`` aligned with ``active`` — the
    kept-neighbor column rows in selection order, ready for a bulk write
    into the ``sims`` column.
    """
    act = np.asarray(active, dtype=np.int64)
    edges = edge_similarities(graph, gamma, config, rows=act)
    kept = select_klocal(edges, config, rng_mode="per_vertex", rows=act)
    counts = np.diff(kept.indptr)[act]
    positions = _gather_slices(kept.indptr[act], counts)
    gathers = int(np.diff(graph.csr_out_adjacency()[0])[act].sum())
    return counts, kept.ids[positions], kept.sims[positions], gathers


def gas_recommendation_step_columnar(
    graph: DiGraph, config: SnapleConfig, active: np.ndarray,
    gamma: NeighborhoodCSR, kept: KeptNeighbors,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Columnar ``compute-recommendations`` task (GAS gather fold order).

    Returns ``(pred_counts, pred_flat, score_counts, score_candidates,
    score_values, gathers)`` aligned with ``active``.
    """
    act = np.asarray(active, dtype=np.int64)
    pred_counts, pred_flat, score_counts, candidates, values = (
        combine_and_rank_columnar(graph, gamma, kept, config, act,
                                  neighbor_order="csr")
    )
    gathers = int(np.diff(graph.csr_out_adjacency()[0])[act].sum())
    return pred_counts, pred_flat, score_counts, candidates, values, gathers
