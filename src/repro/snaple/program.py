"""Algorithm 2 of the paper: SNAPLE's link prediction as three GAS steps.

Step 1 (*NeighborhoodSampleStep*) — each vertex gathers the ids of its
out-neighbors, probabilistically truncated to ``thrΓ`` elements, and stores
the sample ``Γ̂(u)`` in its vertex data.

Step 2 (*SimilarityStep*) — each vertex gathers ``(v, sim(u, v))`` pairs for
its out-neighbors, computed from the truncated neighborhoods, and keeps only
the ``klocal`` pairs selected by the sampling policy (``Γmax`` by default) in
a dictionary ``sims``.

Step 3 (*RecommendationStep*) — each vertex gathers, from every kept neighbor
``v``, the candidates ``z ∈ Γmax(v) \\ Γ̂(u)`` together with the path
similarity ``sims[v] ⊗ v.sims[z]`` and a path counter; the gather sum merges
candidates with the aggregator's ``pre`` operator, and apply finishes with
``post`` and keeps the top-``k`` scores as predictions.

The vertex-data keys written by the steps are:

* ``"gamma"`` — the truncated neighborhood sample (list of vertex ids);
* ``"sims"`` — dict mapping kept neighbors to raw similarities;
* ``"predicted"`` — the top-``k`` predicted vertex ids (list).

Randomness comes in two flavours.  By default each step draws from one
sequential stream seeded from the configuration, consumed in vertex order —
the historical behaviour, which ties the outcome to the engine's iteration
order.  With ``per_vertex_rng=True`` every vertex draws from its own stream
derived from ``(seed, step, vertex)`` via :func:`vertex_rng`, making the
outcome independent of the order vertices are processed in — which is what
allows :mod:`repro.runtime.parallel` to execute partitions concurrently and
still produce results identical for any worker or partition count.

The full candidate score maps are *not* stored in the vertex data: in
Algorithm 2 they are a temporary of the apply phase, so they are neither
replicated to mirrors nor counted against machine memory.  The
:class:`RecommendationStep` keeps them on the side (``collected_scores``) so
callers can still inspect them.
"""

from __future__ import annotations

import heapq
import math
import random
from typing import Any

from repro.gas.vertex_program import EdgeDirection, VertexProgram
from repro.graph.digraph import DiGraph
from repro.graph.sampling import truncate_neighborhood
from repro.snaple.config import SnapleConfig
from repro.snaple.similarity import NeighborhoodSetCache

__all__ = [
    "NeighborhoodSampleStep",
    "SimilarityStep",
    "RecommendationStep",
    "build_snaple_steps",
    "snaple_state_schema",
    "top_k_predictions",
    "vertex_rng",
]

_STATE_SCHEMA = None


def snaple_state_schema():
    """The columnar state schema shared by all three SNAPLE GAS steps.

    Declaring it lets the engines keep the vertex data in a
    :class:`~repro.runtime.state.StateStore` (one NumPy column per field)
    and lets the vectorized kernel read the columns without per-vertex
    marshalling.  Built lazily to avoid importing :mod:`repro.runtime`
    at module-import time.
    """
    global _STATE_SCHEMA
    if _STATE_SCHEMA is None:
        from repro.runtime.state import FieldKind, StateField, StateSchema

        _STATE_SCHEMA = StateSchema((
            StateField("gamma", FieldKind.INT_LIST),
            StateField("sims", FieldKind.INT_FLOAT_MAP),
            StateField("predicted", FieldKind.INT_LIST),
        ))
    return _STATE_SCHEMA


def top_k_predictions(scores: dict[int, float], k: int) -> list[int]:
    """Top-``k`` candidates by score, ties broken by ascending vertex id.

    ``heapq.nsmallest`` on ``(-score, vertex)`` is documented to equal
    ``sorted(...)[:k]`` — same ranking and tie-breaking as the historical
    full sort, in O(n log k) instead of O(n log n).
    """
    ranked = heapq.nsmallest(k, scores.items(),
                             key=lambda item: (-item[1], item[0]))
    return [vertex for vertex, _ in ranked]


_MASK64 = 0xFFFFFFFFFFFFFFFF


def vertex_rng(seed: int, salt: int, vertex: int) -> random.Random:
    """A :class:`random.Random` derived deterministically from ``(seed, salt, vertex)``.

    The splitmix64-style finalizer decorrelates nearby ``(seed, vertex)``
    pairs without relying on :func:`hash`, whose value for strings changes
    between processes — per-vertex streams must agree across worker
    processes.
    """
    x = ((seed & _MASK64)
         ^ ((salt * 0x9E3779B97F4A7C15) & _MASK64)
         ^ ((vertex * 0xBF58476D1CE4E5B9) & _MASK64))
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return random.Random(x ^ (x >> 31))


class NeighborhoodSampleStep(VertexProgram):
    """Step 1: build the truncated neighborhood sample ``Γ̂(u)``.

    With ``per_vertex_rng=True`` the truncation draws come from the vertex's
    own stream (derived once when the engine moves to a new vertex; gather
    calls for one vertex are consecutive in every engine), so the sample does
    not depend on the order vertices are processed in.
    """

    name = "sample-neighborhood"
    gather_direction = EdgeDirection.OUT

    def state_schema(self):
        return snaple_state_schema()

    def __init__(self, config: SnapleConfig, graph: DiGraph,
                 *, per_vertex_rng: bool = False) -> None:
        self._config = config
        self._graph = graph
        self._per_vertex_rng = per_vertex_rng
        self._rng = random.Random(config.seed)
        self._rng_vertex = -1

    def _rng_for(self, u: int) -> random.Random:
        if not self._per_vertex_rng:
            return self._rng
        if u != self._rng_vertex:
            self._rng = vertex_rng(self._config.seed, 0, u)
            self._rng_vertex = u
        return self._rng

    def gather(self, u: int, v: int, u_data: dict[str, Any],
               v_data: dict[str, Any]) -> Any:
        threshold = self._config.truncation_threshold
        degree = self._graph.out_degree(u)
        if not math.isinf(threshold) and degree > threshold:
            # Bernoulli truncation: drop this neighbor with probability
            # 1 - thrΓ/|Γ(u)| (Algorithm 2, line 3).
            if self._rng_for(u).random() > threshold / degree:
                return None
        return [v]

    def sum(self, left: Any, right: Any) -> Any:
        return left + right

    def apply(self, u: int, u_data: dict[str, Any], gathered: Any) -> None:
        neighbors = gathered if gathered is not None else []
        if self._config.exact_truncation:
            neighbors = truncate_neighborhood(
                self._graph.out_neighbors(u).tolist(),
                self._config.truncation_threshold,
                rng=self._rng_for(u),
                exact=True,
            )
        u_data["gamma"] = sorted(neighbors)


class SimilarityStep(VertexProgram):
    """Step 2: estimate raw similarities and keep the ``klocal`` best.

    The gather produces, for each neighbor, both the *path* similarity (the
    score configuration's raw ``sim``, which step 3 combines along 2-hop
    paths) and the *selection* similarity (Jaccard on the truncated
    neighborhoods, equation (11)) used to rank neighbors for the ``klocal``
    sampling.  For the Jaccard-based Table 3 rows the two coincide.
    """

    name = "estimate-similarities"
    gather_direction = EdgeDirection.OUT

    def state_schema(self):
        return snaple_state_schema()

    def __init__(self, config: SnapleConfig,
                 *, per_vertex_rng: bool = False) -> None:
        self._config = config
        self._per_vertex_rng = per_vertex_rng
        self._rng = random.Random(config.seed + 1)
        #: Neighborhoods are fixed once step 1 ran, and each one is compared
        #: against every neighbor's — cache the frozensets per vertex instead
        #: of rebuilding them on every gather.
        self._sets = NeighborhoodSetCache()

    def gather(self, u: int, v: int, u_data: dict[str, Any],
               v_data: dict[str, Any]) -> Any:
        gamma_u = self._sets.get(u, u_data.get("gamma", []))
        gamma_v = self._sets.get(v, v_data.get("gamma", []))
        score = self._config.score
        path_similarity = score.similarity(gamma_u, gamma_v)
        if score.selection_similarity is score.similarity:
            selection_similarity = path_similarity
        else:
            selection_similarity = score.selection_similarity(gamma_u, gamma_v)
        return {v: (path_similarity, selection_similarity)}

    def sum(self, left: Any, right: Any) -> Any:
        merged = dict(left)
        merged.update(right)
        return merged

    def apply(self, u: int, u_data: dict[str, Any], gathered: Any) -> None:
        pairs: dict[int, tuple[float, float]] = gathered if gathered is not None else {}
        selection = {v: sel for v, (_path, sel) in pairs.items()}
        rng = (vertex_rng(self._config.seed, 1, u)
               if self._per_vertex_rng else self._rng)
        kept = self._config.sampler.select(
            selection, self._config.k_local, rng=rng
        )
        u_data["sims"] = {v: pairs[v][0] for v in kept}

    def compute_cost(self, value: Any) -> int:
        # A raw similarity touches both truncated neighborhoods; charge work
        # proportional to a small constant so the cost model distinguishes
        # this step from the cheap id-collection of step 1.
        return 4


class RecommendationStep(VertexProgram):
    """Step 3: combine and aggregate path similarities, emit predictions."""

    name = "compute-recommendations"
    gather_direction = EdgeDirection.OUT

    def state_schema(self):
        return snaple_state_schema()

    def __init__(self, config: SnapleConfig) -> None:
        self._config = config
        #: Candidate scores per vertex, kept outside the GAS vertex data so
        #: they are not synchronized to replicas (they are an apply-phase
        #: temporary in Algorithm 2).
        self.collected_scores: dict[int, dict[int, float]] = {}
        self._sets = NeighborhoodSetCache()

    def gather(self, u: int, v: int, u_data: dict[str, Any],
               v_data: dict[str, Any]) -> Any:
        sims_u: dict[int, float] = u_data.get("sims", {})
        if v not in sims_u:
            # Only paths through the klocal kept neighbors are explored
            # (Algorithm 2, line 13).
            return None
        sims_v: dict[int, float] = v_data.get("sims", {})
        gamma_u = self._sets.get(u, u_data.get("gamma", []))
        combinator = self._config.score.combinator
        sim_uv = sims_u[v]
        partial: dict[int, tuple[float, int]] = {}
        for z, sim_vz in sims_v.items():
            if z == u or z in gamma_u:
                continue
            partial[z] = (combinator.combine(sim_uv, sim_vz), 1)
        return partial if partial else None

    def sum(self, left: Any, right: Any) -> Any:
        aggregator = self._config.score.aggregator
        merged: dict[int, tuple[float, int]] = dict(left)
        for z, (value, count) in right.items():
            if z in merged:
                current_value, current_count = merged[z]
                merged[z] = (aggregator.pre(current_value, value),
                             current_count + count)
            else:
                merged[z] = (value, count)
        return merged

    def apply(self, u: int, u_data: dict[str, Any], gathered: Any) -> None:
        aggregator = self._config.score.aggregator
        scores: dict[int, float] = {}
        if gathered:
            for z, (value, count) in gathered.items():
                scores[z] = aggregator.post(value, count)
        self.collected_scores[u] = scores
        u_data["predicted"] = top_k_predictions(scores, self._config.k)

    def compute_cost(self, value: Any) -> int:
        if value is None:
            return 1
        # Work proportional to the number of candidate vertices emitted.
        return 1 + len(value)


def build_snaple_steps(config: SnapleConfig, graph: DiGraph,
                       *, per_vertex_rng: bool = False) -> list[VertexProgram]:
    """The three GAS super-steps of Algorithm 2, in execution order.

    ``per_vertex_rng=True`` derives all randomness per vertex instead of from
    one sequential stream, making the outcome independent of vertex
    processing order (required by the shared-nothing parallel executor).
    """
    return [
        NeighborhoodSampleStep(config, graph, per_vertex_rng=per_vertex_rng),
        SimilarityStep(config, per_vertex_rng=per_vertex_rng),
        RecommendationStep(config),
    ]
