"""Path aggregators (``⊕``, Table 2 of the paper).

Multiple 2-hop paths may connect a source ``u`` to the same candidate ``z``
(through different intermediate vertices).  An aggregator reduces the
path-similarities of all those paths to the final ``score(u, z)``.  Following
the paper, an aggregator decomposes into:

* ``pre(a, b)`` — a commutative, associative binary reduction applied
  incrementally (this is what the GAS ``sum`` can evaluate), and
* ``post(sigma, n)`` — a normalization applied once, given the reduced value
  and the number of paths.

The three aggregators evaluated in the paper are Sum, arithmetic Mean, and
geometric Mean.  Max is provided as an additional option mentioned in the
text ("selecting the largest similarity").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable

__all__ = [
    "Aggregator",
    "SumAggregator",
    "MeanAggregator",
    "GeometricMeanAggregator",
    "MaxAggregator",
    "AGGREGATORS",
    "get_aggregator",
]


class Aggregator(ABC):
    """Reduces the path-similarities reaching one candidate to a final score."""

    #: Registry name (capitalized as in the paper: Sum / Mean / Geom).
    name: str = "aggregator"

    @abstractmethod
    def pre(self, left: float, right: float) -> float:
        """Commutative, associative pairwise reduction (``⊕pre``)."""

    @abstractmethod
    def post(self, accumulated: float, count: int) -> float:
        """Final normalization from the reduced value and path count (``⊕post``)."""

    def identity(self) -> float:
        """Neutral element of :meth:`pre` used to seed incremental reductions."""
        return 0.0

    def aggregate(self, values: Iterable[float]) -> float:
        """Convenience full reduction ``⊕_{x ∈ values} x``."""
        count = 0
        accumulated = self.identity()
        for value in values:
            accumulated = value if count == 0 else self.pre(accumulated, value)
            count += 1
        if count == 0:
            return 0.0
        return self.post(accumulated, count)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SumAggregator(Aggregator):
    """Plain sum: rewards candidates reachable through many paths."""

    name = "Sum"

    def pre(self, left: float, right: float) -> float:
        return left + right

    def post(self, accumulated: float, count: int) -> float:
        return accumulated


class MeanAggregator(Aggregator):
    """Arithmetic mean: averages out path multiplicity."""

    name = "Mean"

    def pre(self, left: float, right: float) -> float:
        return left + right

    def post(self, accumulated: float, count: int) -> float:
        if count == 0:
            return 0.0
        return accumulated / count


class GeometricMeanAggregator(Aggregator):
    """Geometric mean: heavily penalizes any zero-similarity path."""

    name = "Geom"

    def pre(self, left: float, right: float) -> float:
        return left * right

    def post(self, accumulated: float, count: int) -> float:
        if count == 0:
            return 0.0
        if accumulated <= 0.0:
            return 0.0
        return accumulated ** (1.0 / count)

    def identity(self) -> float:
        return 1.0


class MaxAggregator(Aggregator):
    """Keeps only the best path (mentioned but not evaluated in the paper)."""

    name = "Max"

    def pre(self, left: float, right: float) -> float:
        return max(left, right)

    def post(self, accumulated: float, count: int) -> float:
        return accumulated


#: Registry of aggregators by name.
AGGREGATORS: dict[str, Aggregator] = {
    "Sum": SumAggregator(),
    "Mean": MeanAggregator(),
    "Geom": GeometricMeanAggregator(),
    "Max": MaxAggregator(),
}


def get_aggregator(name: str) -> Aggregator:
    """Look up an aggregator through the plugin registry.

    Names are case-sensitive, as in the paper (``Sum`` / ``Mean`` /
    ``Geom``); ``_`` and ``-`` are interchangeable like everywhere else.
    """
    from repro.runtime.registry import get_component

    return get_component("aggregator", name)
