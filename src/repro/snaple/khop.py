"""K-hop generalization of SNAPLE's path scoring.

The paper restricts path-combination to 2-hop paths but notes (footnote 2,
Section 3.1) that the approach extends to longer paths by recursively
applying the combinator ``⊗`` along the path — a fold over the raw
similarities of its edges.  This module implements that extension: candidates
are vertices reachable through simple paths of length 2 up to ``num_hops``
built from each vertex's ``klocal`` kept neighbors, each path contributes the
fold of its edge similarities, and the aggregator ``⊕`` reduces all paths
reaching the same candidate.

With ``num_hops = 2`` the predictor is exactly the paper's Algorithm 2 (the
test suite asserts prediction equality with
:class:`~repro.snaple.predictor.SnapleLinkPredictor`), so the K-hop ablation
isolates the effect of longer paths alone.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.graph.digraph import DiGraph
from repro.graph.sampling import truncate_neighborhood
from repro.snaple.config import SnapleConfig
from repro.snaple.program import top_k_predictions

__all__ = ["KHopPredictionResult", "KHopLinkPredictor"]


@dataclass
class KHopPredictionResult:
    """Predictions for every vertex plus path-exploration statistics."""

    predictions: dict[int, list[int]]
    scores: dict[int, dict[int, float]]
    config: SnapleConfig
    num_hops: int
    wall_clock_seconds: float
    #: Number of simple paths explored, per path length (2 .. num_hops).
    paths_per_length: dict[int, int] = field(default_factory=dict)

    @property
    def total_paths(self) -> int:
        """Total number of simple paths explored across all vertices."""
        return sum(self.paths_per_length.values())

    def predicted_edges(self) -> set[tuple[int, int]]:
        """All predicted edges as ``(source, predicted target)`` pairs."""
        return {
            (u, z) for u, targets in self.predictions.items() for z in targets
        }


class KHopLinkPredictor:
    """SNAPLE scoring over paths of length up to ``num_hops``.

    Parameters
    ----------
    config:
        The standard :class:`~repro.snaple.config.SnapleConfig`; the score's
        combinator is folded along each path and its aggregator reduces the
        per-candidate path values exactly as in the 2-hop case.
    num_hops:
        Maximum path length ``K`` (the paper's default is 2).  The candidate
        space grows as ``klocal ** K``; keep ``klocal`` small for ``K > 2``.
    """

    def __init__(self, config: SnapleConfig | None = None, *, num_hops: int = 2) -> None:
        if num_hops < 2:
            raise ConfigurationError("num_hops must be at least 2")
        self._config = config if config is not None else SnapleConfig()
        self._num_hops = num_hops

    @property
    def config(self) -> SnapleConfig:
        return self._config

    @property
    def num_hops(self) -> int:
        return self._num_hops

    def predict(self, graph: DiGraph, *,
                vertices: list[int] | None = None) -> KHopPredictionResult:
        """Score candidates over simple paths of length 2 .. ``num_hops``."""
        config = self._config
        start = time.perf_counter()
        rng_truncate = random.Random(config.seed)
        rng_sample = random.Random(config.seed + 1)
        target_vertices = list(graph.vertices()) if vertices is None else list(vertices)

        gamma = self._truncated_neighborhoods(graph, rng_truncate)
        sims = self._kept_similarities(graph, gamma, rng_sample)

        combinator = config.score.combinator
        aggregator = config.score.aggregator
        predictions: dict[int, list[int]] = {}
        scores: dict[int, dict[int, float]] = {}
        paths_per_length: dict[int, int] = {
            length: 0 for length in range(2, self._num_hops + 1)
        }

        for u in target_vertices:
            gamma_u = set(gamma[u])
            accumulated: dict[int, tuple[float, int]] = {}

            def visit(vertex: int, on_path: set[int], partial: float,
                      length: int, *, _u: int = u,
                      _gamma_u: set[int] = gamma_u,
                      _accumulated: dict[int, tuple[float, int]] = accumulated) -> None:
                """Extend the current path by one kept edge of ``vertex``."""
                for nxt, sim_edge in sims[vertex].items():
                    if nxt in on_path or nxt == _u:
                        continue
                    value = (
                        combinator.combine(partial, sim_edge)
                        if length >= 1
                        else sim_edge
                    )
                    next_length = length + 1
                    if next_length >= 2 and nxt not in _gamma_u:
                        paths_per_length[next_length] += 1
                        if nxt in _accumulated:
                            current, count = _accumulated[nxt]
                            _accumulated[nxt] = (
                                aggregator.pre(current, value), count + 1
                            )
                        else:
                            _accumulated[nxt] = (value, 1)
                    if next_length < self._num_hops:
                        visit(nxt, on_path | {nxt}, value, next_length)

            visit(u, {u}, 0.0, 0)
            final = {
                z: aggregator.post(value, count)
                for z, (value, count) in accumulated.items()
            }
            scores[u] = final
            predictions[u] = top_k_predictions(final, config.k)

        wall = time.perf_counter() - start
        return KHopPredictionResult(
            predictions=predictions,
            scores=scores,
            config=config,
            num_hops=self._num_hops,
            wall_clock_seconds=wall,
            paths_per_length=paths_per_length,
        )

    # ------------------------------------------------------------------
    # Shared with the 2-hop predictor (steps 1 and 2 of Algorithm 2)
    # ------------------------------------------------------------------
    def _truncated_neighborhoods(self, graph: DiGraph,
                                 rng: random.Random) -> list[list[int]]:
        config = self._config
        gamma: list[list[int]] = []
        for u in graph.vertices():
            neighbors = graph.out_neighbors(u).tolist()
            if (
                not math.isinf(config.truncation_threshold)
                and len(neighbors) > config.truncation_threshold
            ):
                neighbors = truncate_neighborhood(
                    neighbors,
                    config.truncation_threshold,
                    rng=rng,
                    exact=config.exact_truncation,
                )
            gamma.append(sorted(neighbors))
        return gamma

    def _kept_similarities(self, graph: DiGraph, gamma: list[list[int]],
                           rng: random.Random) -> list[dict[int, float]]:
        config = self._config
        similarity = config.score.similarity
        selection_similarity = config.score.selection_similarity
        sampler = config.sampler
        sims: list[dict[int, float]] = []
        for u in graph.vertices():
            neighbors = graph.out_neighbors(u).tolist()
            selection = {
                v: selection_similarity(gamma[u], gamma[v]) for v in neighbors
            }
            kept = sampler.select(selection, config.k_local, rng=rng)
            if selection_similarity is similarity:
                sims.append(kept)
            else:
                sims.append({v: similarity(gamma[u], gamma[v]) for v in kept})
        return sims
