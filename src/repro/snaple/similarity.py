"""Raw vertex-to-vertex similarity metrics (equation (6) of the paper).

SNAPLE builds its scores from a *raw* similarity computed only between
adjacent vertices, from their (truncated) neighborhoods.  The paper uses
Jaccard's coefficient for all of Table 3 except PPR, which replaces the
similarity with ``1/|Γ(v)|``, and the *counter* score, which fixes it to 1.
Several alternative set similarities are provided for experimentation.

Every similarity accepts any collection of vertex ids.  Passing a
``set``/``frozenset`` skips the per-call set construction — the scalar
engines hold their truncated neighborhoods as lists, so the hot loops either
pre-build frozensets once per run (the ``local`` reference backend) or share
a :class:`NeighborhoodSetCache` keyed by vertex (the GAS/BSP vertex
programs, where one neighborhood is compared against many others).

Contract note for *custom* similarity callables plugged into a
:class:`~repro.snaple.scoring.ScoreConfig`: the engines may hand them either
raw neighborhood lists or prebuilt (deduplicated, unordered) frozensets of
the same vertices.  A similarity must therefore be insensitive to element
order and multiplicity — which every set similarity is; the built-ins
normalize through :func:`as_neighbor_set`.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from collections.abc import Callable, Collection, Iterable

from repro.errors import ConfigurationError

__all__ = [
    "SimilarityFn",
    "NeighborhoodSetCache",
    "as_neighbor_set",
    "jaccard",
    "common_neighbors",
    "cosine",
    "dice",
    "adamic_adar_weight",
    "overlap_coefficient",
    "constant_one",
    "inverse_degree",
    "SIMILARITIES",
    "get_similarity",
]

#: A raw similarity takes the (truncated) neighborhoods of the two endpoints
#: and returns a non-negative float.
SimilarityFn = Callable[[Collection[int], Collection[int]], float]


def as_neighbor_set(neighbors: Collection[int]) -> Collection[int]:
    """``neighbors`` as a set, reusing it when it already is one."""
    if isinstance(neighbors, (set, frozenset)):
        return neighbors
    return set(neighbors)


class NeighborhoodSetCache:
    """Bounded LRU cache of neighborhood frozensets, keyed by vertex id.

    The scalar GAS/BSP gathers compare each vertex's truncated neighborhood
    against every neighbor's, rebuilding the same sets over and over.  A
    vertex program holds one cache per run (neighborhoods are fixed once
    step 1 writes them) and calls :meth:`get` instead of ``set(...)``.
    """

    def __init__(self, maxsize: int = 65536) -> None:
        if maxsize < 1:
            raise ConfigurationError("maxsize must be >= 1")
        self._maxsize = maxsize
        self._entries: OrderedDict[int, frozenset] = OrderedDict()

    def get(self, vertex: int, neighbors: Iterable[int]) -> frozenset:
        """The cached frozenset for ``vertex``, built from ``neighbors`` on miss."""
        entry = self._entries.get(vertex)
        if entry is not None:
            self._entries.move_to_end(vertex)
            return entry
        entry = frozenset(neighbors)
        self._entries[vertex] = entry
        if len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)
        return entry

    def __len__(self) -> int:
        return len(self._entries)


def jaccard(neighbors_u: Collection[int], neighbors_v: Collection[int]) -> float:
    """Jaccard coefficient ``|Γ(u) ∩ Γ(v)| / |Γ(u) ∪ Γ(v)|``."""
    set_u = as_neighbor_set(neighbors_u)
    set_v = as_neighbor_set(neighbors_v)
    if not set_u and not set_v:
        return 0.0
    intersection = len(set_u & set_v)
    union = len(set_u | set_v)
    return intersection / union if union else 0.0


def common_neighbors(neighbors_u: Collection[int],
                     neighbors_v: Collection[int]) -> float:
    """Raw count of common neighbors ``|Γ(u) ∩ Γ(v)|``."""
    set_u = as_neighbor_set(neighbors_u)
    set_v = as_neighbor_set(neighbors_v)
    return float(len(set_u & set_v))


def cosine(neighbors_u: Collection[int], neighbors_v: Collection[int]) -> float:
    """Cosine (Salton) similarity between neighborhood indicator vectors."""
    set_u = as_neighbor_set(neighbors_u)
    set_v = as_neighbor_set(neighbors_v)
    if not set_u or not set_v:
        return 0.0
    return len(set_u & set_v) / math.sqrt(len(set_u) * len(set_v))


def dice(neighbors_u: Collection[int], neighbors_v: Collection[int]) -> float:
    """Sørensen–Dice coefficient ``2|Γ(u) ∩ Γ(v)| / (|Γ(u)| + |Γ(v)|)``."""
    set_u = as_neighbor_set(neighbors_u)
    set_v = as_neighbor_set(neighbors_v)
    total = len(set_u) + len(set_v)
    if total == 0:
        return 0.0
    return 2 * len(set_u & set_v) / total


def overlap_coefficient(neighbors_u: Collection[int],
                        neighbors_v: Collection[int]) -> float:
    """Overlap (Szymkiewicz–Simpson) coefficient."""
    set_u = as_neighbor_set(neighbors_u)
    set_v = as_neighbor_set(neighbors_v)
    smaller = min(len(set_u), len(set_v))
    if smaller == 0:
        return 0.0
    return len(set_u & set_v) / smaller


def adamic_adar_weight(neighbors_u: Collection[int],
                       neighbors_v: Collection[int]) -> float:
    """Adamic–Adar-style weight using the common-neighborhood size.

    Classic Adamic–Adar sums ``1/log|Γ(w)|`` over common neighbors ``w``;
    inside SNAPLE only the two endpoint neighborhoods are visible, so this
    variant down-weights the overlap by the log of the union size instead.
    """
    set_u = as_neighbor_set(neighbors_u)
    set_v = as_neighbor_set(neighbors_v)
    intersection = len(set_u & set_v)
    union = len(set_u | set_v)
    if intersection == 0 or union <= 1:
        return 0.0
    return intersection / math.log(union + 1)


def constant_one(neighbors_u: Collection[int],
                 neighbors_v: Collection[int]) -> float:
    """Degenerate similarity that is always 1 (the *counter* score's raw sim)."""
    return 1.0


def inverse_degree(neighbors_u: Collection[int],
                   neighbors_v: Collection[int]) -> float:
    """``1 / |Γ(v)|`` — the raw similarity behind the PPR-like score.

    The personalized-page-rank row of Table 3 replaces the Jaccard raw
    similarity with the probability of a random walk at ``u`` stepping to a
    given neighbor, i.e. the inverse of the *source* neighborhood size.  In
    the gather of Algorithm 2 the first argument is the neighborhood of the
    vertex the walk leaves from.
    """
    degree = len(as_neighbor_set(neighbors_v))
    if degree == 0:
        return 0.0
    return 1.0 / degree


#: Registry of named similarities usable in a :class:`ScoreConfig`.
SIMILARITIES: dict[str, SimilarityFn] = {
    "jaccard": jaccard,
    "common_neighbors": common_neighbors,
    "cosine": cosine,
    "dice": dice,
    "overlap": overlap_coefficient,
    "adamic_adar": adamic_adar_weight,
    "one": constant_one,
    "inverse_degree": inverse_degree,
}


def get_similarity(name: str) -> SimilarityFn:
    """Look up a similarity through the plugin registry.

    Raises :class:`ConfigurationError` for unknown names; third-party
    similarities registered via
    :func:`repro.runtime.registry.register_component` are visible here too.
    """
    from repro.runtime.registry import get_component

    return get_component("similarity", name)
