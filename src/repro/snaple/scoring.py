"""Scoring configurations: the SNAPLE design space (Table 3 of the paper).

A scoring configuration is the triple (raw similarity, combinator ``⊗``,
aggregator ``⊕``).  Table 3 of the paper instantiates eleven of them: the
nine Jaccard × {linear, eucl, geom} × {Sum, Mean, Geom} combinations plus two
special rows — PPR (``1/|Γ(v)|`` similarity with a plain-sum combinator) and
*counter* (count the 2-hop paths).  This module exposes those configurations
by the names used in the paper's tables and figures (``linearSum``,
``euclMean``, ``counter``, ``PPR``, …).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.snaple.aggregators import Aggregator, get_aggregator
from repro.snaple.combinators import Combinator, get_combinator
from repro.snaple.similarity import SimilarityFn, get_similarity

__all__ = [
    "ScoreConfig",
    "score_config",
    "paper_score_names",
    "PAPER_SCORES",
    "SUM_FAMILY",
    "MEAN_FAMILY",
    "GEOM_FAMILY",
]


@dataclass(frozen=True)
class ScoreConfig:
    """One point in SNAPLE's scoring design space.

    Attributes
    ----------
    name:
        The paper's name for the configuration (e.g. ``linearSum``).
    similarity_name:
        Name of the raw similarity in :mod:`repro.snaple.similarity` that is
        combined along 2-hop paths (the ``sim(u, v)`` column of Table 3).
    combinator:
        Path combinator ``⊗``.
    aggregator:
        Path aggregator ``⊕``.
    selection_similarity_name:
        Similarity used by the ``Γmax`` neighbor selection of equation (11).
        The paper defines the selection on the set-similarity of the truncated
        neighborhoods regardless of the score's own raw similarity (which is
        what makes ``Γmax`` meaningful for the *counter* and *PPR* rows), so
        this defaults to Jaccard for every configuration.
    """

    name: str
    similarity_name: str
    combinator: Combinator
    aggregator: Aggregator
    selection_similarity_name: str = "jaccard"
    similarity: SimilarityFn = field(compare=False, repr=False, default=None)  # type: ignore[assignment]
    selection_similarity: SimilarityFn = field(compare=False, repr=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.similarity is None:
            object.__setattr__(self, "similarity", get_similarity(self.similarity_name))
        if self.selection_similarity is None:
            object.__setattr__(
                self,
                "selection_similarity",
                get_similarity(self.selection_similarity_name),
            )

    def with_alpha(self, alpha: float) -> "ScoreConfig":
        """Return a copy with the linear combinator's ``α`` replaced."""
        if self.combinator.name != "linear":
            raise ConfigurationError(
                f"score {self.name!r} does not use the linear combinator"
            )
        return replace(self, combinator=get_combinator("linear", alpha=alpha))

    def describe(self) -> str:
        """One-line description matching the columns of Table 3."""
        return (
            f"{self.name}: sim={self.similarity_name} "
            f"⊗={self.combinator.name} ⊕={self.aggregator.name}"
        )


def _jaccard_config(combinator_name: str, aggregator_name: str) -> ScoreConfig:
    return ScoreConfig(
        name=f"{combinator_name}{aggregator_name}",
        similarity_name="jaccard",
        combinator=get_combinator(combinator_name),
        aggregator=get_aggregator(aggregator_name),
    )


def _build_paper_scores() -> dict[str, ScoreConfig]:
    scores: dict[str, ScoreConfig] = {}
    for combinator_name in ("linear", "eucl", "geom"):
        for aggregator_name in ("Sum", "Mean", "Geom"):
            config = _jaccard_config(combinator_name, aggregator_name)
            scores[config.name] = config
    scores["PPR"] = ScoreConfig(
        name="PPR",
        similarity_name="inverse_degree",
        combinator=get_combinator("sum"),
        aggregator=get_aggregator("Sum"),
    )
    scores["counter"] = ScoreConfig(
        name="counter",
        similarity_name="one",
        combinator=get_combinator("count"),
        aggregator=get_aggregator("Sum"),
    )
    return scores


#: The eleven configurations of Table 3, keyed by the paper's names.
PAPER_SCORES: dict[str, ScoreConfig] = _build_paper_scores()

#: Scores grouped by aggregator as plotted in Figure 8.
SUM_FAMILY: tuple[str, ...] = ("counter", "euclSum", "geomSum", "linearSum", "PPR")
MEAN_FAMILY: tuple[str, ...] = ("euclMean", "geomMean", "linearMean")
GEOM_FAMILY: tuple[str, ...] = ("euclGeom", "geomGeom", "linearGeom")


def paper_score_names() -> list[str]:
    """Names of all Table 3 configurations, Sum family first."""
    return list(SUM_FAMILY) + list(MEAN_FAMILY) + list(GEOM_FAMILY)


def score_config(name: str, *, alpha: float | None = None) -> ScoreConfig:
    """Return the named scoring configuration.

    ``alpha`` overrides the linear combinator weight for the ``linear*``
    configurations (the paper uses 0.9).
    """
    from repro.runtime.registry import match_component_name

    canonical = match_component_name(name, PAPER_SCORES)
    if canonical is None:
        raise ConfigurationError(
            f"unknown score {name!r}; available: {', '.join(paper_score_names())}"
        )
    config = PAPER_SCORES[canonical]
    if alpha is not None:
        config = config.with_alpha(alpha)
    return config
