"""SNAPLE expressed as a Pregel/BSP vertex program.

The paper's Algorithm 2 targets the GAS model; porting it to BSP engines
(Giraph, Bagel) is named as future work in Section 7.  This module provides
that port on the :mod:`repro.bsp` substrate, which makes the data-flow
difference between the two models measurable: on a vertex-cut GAS engine the
truncated neighborhoods are read through mirrors (one pre-aggregated partial
per machine), whereas a message-passing BSP engine must ship each
neighborhood along every edge explicitly.

The program runs four supersteps:

0. every vertex truncates its out-neighborhood to ``Γ̂(u)`` (``thrΓ``) and
   registers itself with each out-neighbor (so vertices learn their
   in-neighbors, which plain Pregel does not expose);
1. every vertex ships ``Γ̂(v)`` to each registered in-neighbor;
2. every vertex computes the raw similarities of its out-edges from the
   received neighborhoods, keeps the ``klocal`` neighbors selected by the
   sampling policy, and ships the kept map to its in-neighbors;
3. every vertex combines (``⊗``) and aggregates (``⊕``) path similarities of
   the kept 2-hop paths and records its top-``k`` predictions.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Any

from repro.bsp.engine import BspEngine, BspRunResult
from repro.bsp.partition import VertexPartitioner
from repro.bsp.vertex import BspVertexProgram, ComputeContext
from repro.gas.cluster import ClusterConfig, TYPE_II, cluster_of
from repro.graph.digraph import DiGraph
from repro.graph.sampling import truncate_neighborhood
from repro.snaple.config import SnapleConfig
from repro.snaple.program import top_k_predictions, vertex_rng
from repro.snaple.similarity import NeighborhoodSetCache

__all__ = [
    "SnapleBspProgram",
    "BspPredictionResult",
    "SnapleBspPredictor",
    "snaple_bsp_state_schema",
    "MESSAGE_KINDS",
    "MESSAGE_BASE_BYTES",
    "encode_snaple_messages",
    "decode_snaple_inboxes",
]

_STATE_SCHEMA = None


def snaple_bsp_state_schema():
    """The columnar state schema of the four-superstep SNAPLE BSP program."""
    global _STATE_SCHEMA
    if _STATE_SCHEMA is None:
        from repro.runtime.state import FieldKind, StateField, StateSchema

        _STATE_SCHEMA = StateSchema((
            StateField("gamma", FieldKind.INT_LIST),
            StateField("in_neighbors", FieldKind.INT_LIST),
            StateField("sims", FieldKind.INT_FLOAT_MAP),
            StateField("predicted", FieldKind.INT_LIST),
        ))
    return _STATE_SCHEMA


#: Wire format of the program's messages (kind index into this tuple).
MESSAGE_KINDS = ("register", "gamma", "sims")

#: Fixed per-kind overhead so array-routed accounting matches what
#: ``payload_size_bytes`` charged for the historical tuples:
#: ``("register", u)`` = 8 + 8, ``("gamma", u, [...])`` = 5 + 8 + 8·len,
#: ``("sims", u, {...})`` = 4 + 8 + 16·len.
MESSAGE_BASE_BYTES = (16, 13, 12)


def encode_snaple_messages(sent: list[tuple[int, int, Any]]):
    """Encode ``(sender, target, payload tuple)`` triples as a MessageBlock.

    The emission order is preserved, which together with the executor's
    stable sender sort keeps the per-receiver delivery order — and therefore
    the float accumulation order — identical to the object path.
    """
    from repro.runtime.state import MessageBlockBuilder

    builder = MessageBlockBuilder(MESSAGE_KINDS)
    for sender, target, value in sent:
        kind = value[0]
        if kind == "register":
            builder.append(sender, target, kind)
        elif kind == "gamma":
            builder.append(sender, target, kind, ids=value[2])
        else:
            sims = value[2]
            builder.append(sender, target, kind,
                           ids=sims.keys(), vals=sims.values())
    return builder.build()


def decode_snaple_inboxes(block) -> dict[int, list[Any]]:
    """Rebuild per-receiver message-tuple lists from a routed block.

    The block's row order is the delivery order (sender-sorted, stable), so
    appending row by row reproduces the historical inbox lists exactly.
    """
    inboxes: dict[int, list[Any]] = {}
    receivers = block.receiver.tolist()
    senders = block.sender.tolist()
    kinds = block.kind.tolist()
    ids_indptr = block.ids_indptr.tolist()
    ids = block.ids.tolist()
    vals = block.vals.tolist()
    vals_indptr = block.vals_indptr.tolist()
    for index, receiver in enumerate(receivers):
        kind = kinds[index]
        sender = senders[index]
        if kind == 0:
            message: Any = ("register", sender)
        elif kind == 1:
            message = ("gamma", sender,
                       ids[ids_indptr[index]:ids_indptr[index + 1]])
        else:
            row_ids = ids[ids_indptr[index]:ids_indptr[index + 1]]
            row_vals = vals[vals_indptr[index]:vals_indptr[index + 1]]
            message = ("sims", sender, dict(zip(row_ids, row_vals)))
        inboxes.setdefault(receiver, []).append(message)
    return inboxes


class SnapleBspProgram(BspVertexProgram):
    """The four-superstep BSP formulation of SNAPLE's Algorithm 2.

    Vertex state keys mirror the GAS program: ``"gamma"`` (the truncated
    neighborhood), ``"sims"`` (the kept raw similarities) and ``"predicted"``
    (the final top-``k``).  The full candidate score maps are kept on the
    program object (:attr:`collected_scores`) rather than in vertex state,
    matching the GAS implementation where they are an apply-phase temporary.
    """

    name = "snaple-bsp"
    max_supersteps = 4

    def state_schema(self):
        return snaple_bsp_state_schema()

    def __init__(self, config: SnapleConfig,
                 *, per_vertex_rng: bool = False) -> None:
        self._config = config
        self._per_vertex_rng = per_vertex_rng
        self._rng_truncate = random.Random(config.seed)
        self._rng_sample = random.Random(config.seed + 1)
        #: Candidate scores per vertex, for inspection by the predictor.
        self.collected_scores: dict[int, dict[int, float]] = {}
        #: Frozenset cache for the shipped neighborhoods: each ``gamma`` is
        #: compared against every in-neighbor's, so build its set once.
        self._sets = NeighborhoodSetCache()

    def _truncate_rng(self, vertex: int) -> random.Random:
        """Per-vertex truncation stream when order independence is required."""
        if self._per_vertex_rng:
            return vertex_rng(self._config.seed, 0, vertex)
        return self._rng_truncate

    def _sample_rng(self, vertex: int) -> random.Random:
        if self._per_vertex_rng:
            return vertex_rng(self._config.seed, 1, vertex)
        return self._rng_sample

    # ------------------------------------------------------------------
    def initial_state(self, vertex: int) -> dict[str, Any]:
        return {}

    def compute(self, state: dict[str, Any], messages: list[Any],
                context: ComputeContext) -> None:
        superstep = context.superstep
        if superstep == 0:
            self._truncate_and_register(state, context)
        elif superstep == 1:
            self._ship_neighborhood(state, messages, context)
        elif superstep == 2:
            self._select_neighbors(state, messages, context)
        else:
            self._score_candidates(state, messages, context)
            context.vote_to_halt()

    def compute_cost(self, state: dict[str, Any], num_messages: int) -> int:
        # Similar weighting to the GAS program: similarity estimation and
        # candidate scoring are charged per processed message, the cheap
        # registration/shipping steps per vertex.
        return 1 + num_messages

    # ------------------------------------------------------------------
    # Supersteps
    # ------------------------------------------------------------------
    def _truncate_and_register(self, state: dict[str, Any],
                               context: ComputeContext) -> None:
        neighbors = list(context.out_neighbors())
        threshold = self._config.truncation_threshold
        if not math.isinf(threshold) and len(neighbors) > threshold:
            neighbors = truncate_neighborhood(
                neighbors,
                threshold,
                rng=self._truncate_rng(context.vertex),
                exact=self._config.exact_truncation,
            )
        state["gamma"] = sorted(neighbors)
        # Registration: tell each out-neighbor who we are so it can ship its
        # neighborhood (and later its kept similarities) back to us.
        context.send_message_to_all_neighbors(("register", context.vertex))

    def _ship_neighborhood(self, state: dict[str, Any], messages: list[Any],
                           context: ComputeContext) -> None:
        in_neighbors = sorted(
            sender for kind, sender in messages if kind == "register"
        )
        state["in_neighbors"] = in_neighbors
        gamma = state.get("gamma", [])
        for requester in in_neighbors:
            context.send_message(requester, ("gamma", context.vertex, gamma))

    def _select_neighbors(self, state: dict[str, Any], messages: list[Any],
                          context: ComputeContext) -> None:
        gamma_u = self._sets.get(context.vertex, state.get("gamma", []))
        score = self._config.score
        neighborhood_of: dict[int, list[int]] = {
            sender: gamma for kind, sender, gamma in messages if kind == "gamma"
        }
        selection: dict[int, float] = {}
        path_similarity: dict[int, float] = {}
        for v, gamma_list in neighborhood_of.items():
            gamma_v = self._sets.get(v, gamma_list)
            path_similarity[v] = score.similarity(gamma_u, gamma_v)
            if score.selection_similarity is score.similarity:
                selection[v] = path_similarity[v]
            else:
                selection[v] = score.selection_similarity(gamma_u, gamma_v)
        kept = self._config.sampler.select(
            selection, self._config.k_local, rng=self._sample_rng(context.vertex)
        )
        sims = {v: path_similarity[v] for v in kept}
        state["sims"] = sims
        for requester in state.get("in_neighbors", []):
            context.send_message(requester, ("sims", context.vertex, sims))

    def _score_candidates(self, state: dict[str, Any], messages: list[Any],
                          context: ComputeContext) -> None:
        sims_u: dict[int, float] = state.get("sims", {})
        gamma_u = set(state.get("gamma", []))
        combinator = self._config.score.combinator
        aggregator = self._config.score.aggregator
        u = context.vertex
        accumulated: dict[int, tuple[float, int]] = {}
        for kind, sender, sims_v in messages:
            if kind != "sims" or sender not in sims_u:
                continue
            sim_uv = sims_u[sender]
            for z, sim_vz in sims_v.items():
                if z == u or z in gamma_u:
                    continue
                value = combinator.combine(sim_uv, sim_vz)
                if z in accumulated:
                    current, count = accumulated[z]
                    accumulated[z] = (aggregator.pre(current, value), count + 1)
                else:
                    accumulated[z] = (value, 1)
        scores = {
            z: aggregator.post(value, count)
            for z, (value, count) in accumulated.items()
        }
        self.collected_scores[u] = scores
        state["predicted"] = top_k_predictions(scores, self._config.k)


@dataclass
class BspPredictionResult:
    """Predictions for every vertex plus the BSP engine's accounting."""

    predictions: dict[int, list[int]]
    scores: dict[int, dict[int, float]]
    config: SnapleConfig
    wall_clock_seconds: float
    simulated_seconds: float
    bsp_result: BspRunResult = field(repr=False, default=None)  # type: ignore[assignment]

    def predicted_edges(self) -> set[tuple[int, int]]:
        """All predicted edges as ``(source, predicted target)`` pairs."""
        return {
            (u, z) for u, targets in self.predictions.items() for z in targets
        }


class SnapleBspPredictor:
    """Link prediction with SNAPLE on the simulated BSP/Pregel engine.

    Produces the same predictions as
    :class:`~repro.snaple.predictor.SnapleLinkPredictor` (for identical
    configurations without truncation randomness) while accounting the
    message traffic a Pregel engine would generate, which is what the
    GAS-versus-BSP ablation compares.
    """

    def __init__(self, config: SnapleConfig | None = None) -> None:
        self._config = config if config is not None else SnapleConfig()

    @property
    def config(self) -> SnapleConfig:
        return self._config

    def predict(
        self,
        graph: DiGraph,
        *,
        cluster: ClusterConfig | None = None,
        partitioner: VertexPartitioner | None = None,
        enforce_memory: bool = True,
    ) -> BspPredictionResult:
        """Run the four-superstep SNAPLE program and collect predictions."""
        if cluster is None:
            cluster = cluster_of(TYPE_II, 1)
        engine = BspEngine(
            graph=graph,
            cluster=cluster,
            partitioner=partitioner,
            enforce_memory=enforce_memory,
            seed=self._config.seed,
        )
        program = SnapleBspProgram(self._config)
        start = time.perf_counter()
        run = engine.run(program)
        wall = time.perf_counter() - start
        predictions: dict[int, list[int]] = {}
        scores: dict[int, dict[int, float]] = {}
        for u in graph.vertices():
            predictions[u] = list(run.state_of(u).get("predicted", []))
            scores[u] = dict(program.collected_scores.get(u, {}))
        return BspPredictionResult(
            predictions=predictions,
            scores=scores,
            config=self._config,
            wall_clock_seconds=wall,
            simulated_seconds=run.simulated_seconds,
            bsp_result=run,
        )
