"""Suite-file loading: YAML or TOML in, :class:`SuiteSpec` out.

The format is chosen by file extension (``.yaml``/``.yml`` vs ``.toml``).
TOML always works (:mod:`tomllib` ships with Python); YAML needs PyYAML,
which is an *optional* dependency — when it is missing the loader raises a
:class:`~repro.errors.ConfigurationError` pointing at the TOML format
instead of an ``ImportError`` from deep inside the import machinery.
"""

from __future__ import annotations

import tomllib
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError
from repro.suites.schema import SuiteSpec, parse_suite

__all__ = ["load_suite", "SUITE_EXTENSIONS"]

#: Recognized suite-file extensions.
SUITE_EXTENSIONS: tuple[str, ...] = (".yaml", ".yml", ".toml")


def _parse_yaml(text: str, path: Path) -> Any:
    try:
        import yaml
    except ModuleNotFoundError:
        raise ConfigurationError(
            f"cannot load {path}: PyYAML is not installed; write the suite "
            "in TOML (.toml) instead, or install pyyaml"
        ) from None
    try:
        return yaml.safe_load(text)
    except yaml.YAMLError as error:
        raise ConfigurationError(
            f"invalid YAML in {path}: {error}"
        ) from error


def _parse_toml(text: str, path: Path) -> Any:
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as error:
        raise ConfigurationError(
            f"invalid TOML in {path}: {error}"
        ) from error


def load_suite(path: str | Path) -> SuiteSpec:
    """Load and validate the suite file at ``path``.

    Raises
    ------
    ConfigurationError
        For a missing file, an unrecognized extension, a parse error, or
        any schema violation (the message names the offending key path).
    """
    path = Path(path)
    if path.suffix.lower() not in SUITE_EXTENSIONS:
        raise ConfigurationError(
            f"unrecognized suite-file extension {path.suffix!r} for {path}; "
            f"expected one of: {', '.join(SUITE_EXTENSIONS)}"
        )
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise ConfigurationError(
            f"cannot read suite file {path}: {error}"
        ) from error
    if path.suffix.lower() == ".toml":
        data = _parse_toml(text, path)
    else:
        data = _parse_yaml(text, path)
    try:
        return parse_suite(data, default_name=path.stem, source=str(path))
    except ConfigurationError as error:
        raise ConfigurationError(f"{path}: {error}") from None
