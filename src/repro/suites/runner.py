"""Workload drivers: turn a :class:`ResolvedExperiment` into a run report.

A *workload* is a registered component (family ``workload``) that knows how
to execute one resolved suite experiment and return a JSON-serializable
payload.  Two drivers ship built in:

``batch``
    The classic evaluation protocol — split, predict, measure — through
    :class:`~repro.eval.runner.ExperimentRunner`.  Named dataset analogs
    take the exact same code path as the bespoke experiments (same
    ``load_dataset`` cache, same split seed), so a suite-driven run is
    bit-identical to e.g. :func:`~repro.eval.experiments.figure6.run_figure6`
    with the same parameters.  Component graph sources (generators,
    user-registered sources) are resolved through the ``dataset`` family
    and injected into the runner.

``temporal_replay``
    Streams a graph's edges through the online serving plane
    (:class:`~repro.serving.service.PredictorService`): a deterministic
    shuffle splits the edge set into a base graph plus N snapshots; before
    each snapshot is ingested, the service is queried for the vertices
    about to gain edges, counting how many future edges the predictor
    anticipated.

Workload options (the experiment's ``options`` mapping) are the driver
factory's keyword parameters, so the registry validates them up front like
any other component options.

Every payload carries the standard :class:`~repro.runtime.report.RunReport`
dictionary under ``"report"`` — suites emit the same accounting currency as
the rest of the repository, whatever the workload.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError
from repro.graph.digraph import DiGraph
from repro.suites.schema import DatasetRef, ResolvedExperiment, SuiteSpec

__all__ = [
    "BatchWorkload",
    "TemporalReplayWorkload",
    "SuiteResult",
    "register_builtin_workloads",
    "resolve_graph",
    "build_snaple_config",
    "run_suite",
]


def resolve_graph(dataset: DatasetRef, *, scale: float, seed: int) -> DiGraph:
    """Build the graph for a dataset reference via the ``dataset`` family.

    The experiment's ``seed`` (and, for the named analogs, ``scale``) is
    passed down whenever the source accepts it and the reference does not
    pin it explicitly, so suite experiments stay deterministic per seed
    without repeating it in every dataset block.
    """
    from repro.runtime.registry import component_options, get_component

    options = dict(dataset.options)
    accepted = component_options("dataset", dataset.source)
    if accepted is None or "seed" in accepted:
        options.setdefault("seed", seed)
    if accepted is not None and "scale" in accepted:
        options.setdefault("scale", scale)
    return get_component("dataset", dataset.source, **options)


def build_snaple_config(config: dict[str, Any], *, default_seed: int):
    """A :class:`~repro.snaple.config.SnapleConfig` from a suite ``config``.

    Mirrors :meth:`SnapleConfig.paper_default` exactly — same defaults,
    same α-only-for-linear rule — except that the config seed defaults to
    the *experiment* seed (as the bespoke experiments do) rather than 0.
    """
    from repro.snaple.config import SnapleConfig

    return SnapleConfig.paper_default(
        config.get("score", "linearSum"),
        k=config.get("k", 5),
        k_local=config.get("k_local", 80),
        truncation_threshold=config.get("truncation_threshold", 200),
        sampler_name=config.get("sampler", "max"),
        alpha=config.get("alpha", 0.9),
        seed=config.get("seed", default_seed),
    )


def _experiment_header(experiment: ResolvedExperiment) -> dict[str, Any]:
    return {
        "suite": experiment.suite,
        "pack": experiment.pack,
        "experiment": experiment.name,
        "workload": experiment.workload,
        "dataset": {
            "source": experiment.dataset.source,
            "options": dict(experiment.dataset.options),
        },
        "backend": experiment.backend,
        "scale": experiment.scale,
        "seed": experiment.seed,
    }


class BatchWorkload:
    """Split → predict → measure, through :class:`ExperimentRunner`."""

    name = "batch"

    def run(self, experiment: ResolvedExperiment) -> dict[str, Any]:
        from repro.eval.runner import ExperimentRunner
        from repro.graph.datasets import DATASETS
        from repro.runtime.registry import match_component_name

        protocol = experiment.protocol
        runner_kwargs: dict[str, Any] = {
            "scale": experiment.scale,
            "seed": experiment.seed,
        }
        if "removed_edges_per_vertex" in protocol:
            runner_kwargs["removed_edges_per_vertex"] = (
                protocol["removed_edges_per_vertex"]
            )
        if "min_degree" in protocol:
            runner_kwargs["min_degree"] = protocol["min_degree"]
        runner = ExperimentRunner(**runner_kwargs)

        # Named analogs without option overrides run through the runner's
        # own dataset path — the exact code path of the bespoke experiments
        # (parity guarantee).  Everything else resolves via the component
        # family and is injected.
        analog = match_component_name(experiment.dataset.source, DATASETS)
        if analog is not None and not experiment.dataset.options:
            dataset_name = analog
        else:
            dataset_name = experiment.dataset.source
            runner.add_dataset(
                dataset_name,
                resolve_graph(experiment.dataset, scale=experiment.scale,
                              seed=experiment.seed),
            )

        config = build_snaple_config(experiment.config,
                                     default_seed=experiment.seed)
        run = runner.run_backend(
            dataset_name,
            backend=experiment.backend,
            config=config,
            **experiment.backend_options,
        )
        payload = _experiment_header(experiment)
        payload["run"] = {
            "predictor": run.predictor,
            "wall_clock_seconds": run.wall_clock_seconds,
            "simulated_seconds": run.simulated_seconds,
            "failed": run.failed,
            "failure_reason": run.failure_reason,
            "extra": dict(run.extra),
        }
        payload["quality"] = (asdict(run.quality)
                              if run.quality is not None else None)
        report = runner.last_report
        payload["report"] = (report.to_dict() if report is not None else None)
        payload["summary"] = (
            f"recall={run.recall:.3f}" if not run.failed
            else f"failed: {run.failure_reason}"
        )
        return payload


class TemporalReplayWorkload:
    """Replay a graph's edge stream through the online serving plane.

    Parameters (suite ``options``)
    ------------------------------
    snapshots:
        Number of edge batches the stream is split into.
    base_fraction:
        Fraction of the (shuffled) edge set forming the initial graph.
    queries_per_snapshot:
        Cap on distinct source vertices queried before each ingest.
    workers, queue_bound, compact_every:
        The service's :class:`~repro.serving.service.ServingConfig` shape.
    """

    name = "temporal_replay"

    def __init__(self, *, snapshots: int = 4, base_fraction: float = 0.7,
                 queries_per_snapshot: int = 32, workers: int = 2,
                 queue_bound: int = 64, compact_every: int = 1024) -> None:
        if snapshots < 1:
            raise ConfigurationError(
                f"temporal_replay needs snapshots >= 1, got {snapshots}"
            )
        if not 0.0 < base_fraction < 1.0:
            raise ConfigurationError(
                f"temporal_replay needs 0 < base_fraction < 1, got "
                f"{base_fraction}"
            )
        if queries_per_snapshot < 1:
            raise ConfigurationError(
                f"temporal_replay needs queries_per_snapshot >= 1, got "
                f"{queries_per_snapshot}"
            )
        self._snapshots = snapshots
        self._base_fraction = base_fraction
        self._queries_per_snapshot = queries_per_snapshot
        self._workers = workers
        self._queue_bound = queue_bound
        self._compact_every = compact_every

    def run(self, experiment: ResolvedExperiment) -> dict[str, Any]:
        from repro.serving import PredictorService, ServingConfig

        graph = resolve_graph(experiment.dataset, scale=experiment.scale,
                              seed=experiment.seed)
        sources, targets = graph.edge_arrays()
        edges = list(dict.fromkeys(
            (int(u), int(v)) for u, v in zip(sources, targets)
        ))
        if len(edges) < self._snapshots + 1:
            raise ConfigurationError(
                f"temporal_replay: dataset "
                f"{experiment.dataset.describe()} has only {len(edges)} "
                f"distinct edges, too few for {self._snapshots} snapshots"
            )
        random.Random(experiment.seed).shuffle(edges)
        base_count = max(1, int(len(edges) * self._base_fraction))
        base_count = min(base_count, len(edges) - self._snapshots)
        base_edges = edges[:base_count]
        stream = edges[base_count:]
        base_graph = DiGraph(
            graph.num_vertices,
            [u for u, _ in base_edges],
            [v for _, v in base_edges],
        )

        config = build_snaple_config(experiment.config,
                                     default_seed=experiment.seed)
        serving = ServingConfig(workers=self._workers,
                                queue_bound=self._queue_bound,
                                compact_every=self._compact_every)
        chunk_size = -(-len(stream) // self._snapshots)  # ceil division
        snapshots_payload: list[dict[str, Any]] = []
        anticipated_total = 0
        queried_total = 0
        with PredictorService(base_graph, config, serving=serving) as service:
            for index in range(self._snapshots):
                chunk = stream[index * chunk_size:(index + 1) * chunk_size]
                future: dict[int, set[int]] = {}
                for u, v in chunk:
                    future.setdefault(u, set()).add(v)
                queried = sorted(future)[:self._queries_per_snapshot]
                anticipated = 0
                for vertex in queried:
                    answer = service.top_k(vertex)
                    anticipated += len(set(answer.predicted) & future[vertex])
                outcome = service.ingest(chunk)
                anticipated_total += anticipated
                queried_total += len(queried)
                snapshots_payload.append({
                    "snapshot": index,
                    "edges": len(chunk),
                    "queried_vertices": len(queried),
                    "anticipated_edges": anticipated,
                    "ingested_edges": len(outcome.added),
                    "rescored_vertices": outcome.rescored,
                    "compacted": outcome.compacted,
                })
            stats = service.stats()
            report = service.report()

        payload = _experiment_header(experiment)
        payload["graph"] = {
            "num_vertices": graph.num_vertices,
            "num_edges": len(edges),
            "base_edges": len(base_edges),
            "streamed_edges": len(stream),
        }
        payload["snapshots"] = snapshots_payload
        payload["stats"] = asdict(stats)
        payload["report"] = report.to_dict()
        payload["summary"] = (
            f"anticipated {anticipated_total} future edges over "
            f"{queried_total} queries across {self._snapshots} snapshots"
        )
        return payload


def register_builtin_workloads() -> None:
    """Seed the ``workload`` family (called by the registry loader)."""
    from repro.runtime.registry import register_component

    register_component("workload", BatchWorkload.name, BatchWorkload,
                       replace=True, builtin=True)
    register_component("workload", TemporalReplayWorkload.name,
                       TemporalReplayWorkload, replace=True, builtin=True)


@dataclass
class SuiteResult:
    """All experiment payloads of one suite run."""

    suite: str
    source: str
    results: list[dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "suite": self.suite,
            "source": self.source,
            "results": list(self.results),
        }

    def render(self) -> str:
        lines = [f"Suite {self.suite!r} — {len(self.results)} experiment(s)"]
        for payload in self.results:
            lines.append(
                f"  {payload['pack']}/{payload['experiment']} "
                f"[{payload['workload']} on {payload['dataset']['source']}]"
                f": {payload['summary']}"
            )
        return "\n".join(lines)


def run_suite(suite: SuiteSpec, *, pack: str | None = None,
              experiment: str | None = None,
              out_dir: str | Path | None = None) -> SuiteResult:
    """Execute (a selection of) a suite's experiments.

    Each experiment's workload driver is resolved through the ``workload``
    component family with the experiment's ``options`` as factory options
    (validated up front).  With ``out_dir``, every payload is additionally
    written to ``<out_dir>/<pack>__<experiment>.json``.
    """
    from repro.runtime.registry import get_component

    selected = suite.select(pack=pack, experiment=experiment)
    result = SuiteResult(suite=suite.name, source=suite.source)
    directory = Path(out_dir) if out_dir is not None else None
    if directory is not None:
        directory.mkdir(parents=True, exist_ok=True)
    for resolved in selected:
        driver = get_component("workload", resolved.workload,
                               **resolved.options)
        payload = driver.run(resolved)
        if directory is not None:
            target = directory / f"{resolved.pack}__{resolved.name}.json"
            target.write_text(json.dumps(payload, indent=2, sort_keys=True),
                              encoding="utf-8")
        result.results.append(payload)
    return result
