"""Declarative scenario suites: YAML/TOML files in, standard reports out.

A suite file describes a set of experiments — dataset sources, scoring
configurations, backends, workload drivers — with layered defaults
(*suite → pack → experiment*).  The loader validates eagerly with precise
key-path errors, the runner resolves every component through the plugin
registry (:mod:`repro.runtime.registry`) and executes each experiment via
its workload driver:

* ``batch`` replays the classic split/predict/measure protocol through
  :class:`~repro.eval.runner.ExperimentRunner` (bit-identical to the
  bespoke experiments for the named dataset analogs), and
* ``temporal_replay`` streams edge snapshots through the online serving
  plane (:mod:`repro.serving`).

Checked-in suites live in ``examples/suites/``; the CLI front end is
``snaple suite run|list|describe``.
"""

from repro.suites.loader import SUITE_EXTENSIONS, load_suite
from repro.suites.runner import (
    BatchWorkload,
    SuiteResult,
    TemporalReplayWorkload,
    build_snaple_config,
    register_builtin_workloads,
    resolve_graph,
    run_suite,
)
from repro.suites.schema import (
    DatasetRef,
    ResolvedExperiment,
    SuiteSpec,
    parse_suite,
)

__all__ = [
    "BatchWorkload",
    "DatasetRef",
    "ResolvedExperiment",
    "SUITE_EXTENSIONS",
    "SuiteResult",
    "SuiteSpec",
    "TemporalReplayWorkload",
    "build_snaple_config",
    "load_suite",
    "parse_suite",
    "register_builtin_workloads",
    "resolve_graph",
    "run_suite",
]
