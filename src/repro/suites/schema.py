"""Suite-file schema: sections, allowed keys, layered-default resolution.

A suite file declares *what* to run — datasets, scoring configurations,
backends, workloads — without any experiment code.  Its shape::

    suite:
      name: my-suite            # optional; defaults to the file stem
      description: ...
    defaults:                   # suite-level defaults (optional)
      scale: 0.2
      config: {score: linearSum, k_local: 80}
    packs:
      - name: replay
        defaults:               # pack-level defaults (optional)
          workload: temporal_replay
        experiments:
          - name: powerlaw-small
            dataset: {source: powerlaw_cluster,
                      options: {num_vertices: 400, edges_per_vertex: 4,
                                triangle_probability: 0.4}}
            options: {snapshots: 4}

Defaults merge *suite → pack → experiment* with a recursive dictionary
merge: nested mappings (``config``, ``protocol``, ``options``, …) combine
key-by-key, scalars override wholesale.  Validation is eager and precise —
an unknown or mistyped key raises a
:class:`~repro.errors.ConfigurationError` naming the exact path
(``packs[0].experiments[1].config.k_local``) rather than failing later
inside a component.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigurationError

__all__ = [
    "DatasetRef",
    "ResolvedExperiment",
    "SuiteSpec",
    "parse_suite",
    "deep_merge",
    "EXPERIMENT_KEYS",
    "CONFIG_KEYS",
    "PROTOCOL_KEYS",
]


#: Keys an experiment (or a defaults block) may set.
EXPERIMENT_KEYS: frozenset[str] = frozenset({
    "workload", "dataset", "scale", "seed", "backend", "backend_options",
    "config", "protocol", "options",
})

#: Keys of the ``config`` section (mirrors ``SnapleConfig.paper_default``).
CONFIG_KEYS: frozenset[str] = frozenset({
    "score", "alpha", "k", "k_local", "truncation_threshold", "sampler",
    "seed",
})

#: Keys of the ``protocol`` section (the edge-removal protocol knobs).
PROTOCOL_KEYS: frozenset[str] = frozenset({
    "removed_edges_per_vertex", "min_degree",
})

_SUITE_SECTION_KEYS: frozenset[str] = frozenset({"name", "description"})
_TOP_LEVEL_KEYS: frozenset[str] = frozenset({"suite", "defaults", "packs"})
_PACK_KEYS: frozenset[str] = frozenset(
    {"name", "description", "defaults", "experiments"}
)


@dataclass(frozen=True)
class DatasetRef:
    """A graph source reference: component-family name plus its options."""

    source: str
    options: dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        if not self.options:
            return self.source
        rendered = ", ".join(
            f"{key}={value!r}" for key, value in sorted(self.options.items())
        )
        return f"{self.source}({rendered})"


@dataclass(frozen=True)
class ResolvedExperiment:
    """One fully-merged, validated experiment ready for a workload driver."""

    suite: str
    pack: str
    name: str
    workload: str
    dataset: DatasetRef
    backend: str
    scale: float
    seed: int
    config: dict[str, Any] = field(default_factory=dict)
    protocol: dict[str, Any] = field(default_factory=dict)
    backend_options: dict[str, Any] = field(default_factory=dict)
    options: dict[str, Any] = field(default_factory=dict)

    @property
    def qualified_name(self) -> str:
        return f"{self.pack}/{self.name}"


@dataclass(frozen=True)
class SuiteSpec:
    """A parsed, validated suite: flat list of resolved experiments."""

    name: str
    description: str
    source: str
    experiments: tuple[ResolvedExperiment, ...]

    def pack_names(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for experiment in self.experiments:
            seen.setdefault(experiment.pack, None)
        return tuple(seen)

    def select(self, *, pack: str | None = None,
               experiment: str | None = None) -> tuple[ResolvedExperiment, ...]:
        """Experiments filtered by pack and/or experiment name.

        Names go through the registry normalizer (``_``/``-``
        interchangeable); unknown names raise with the available choices.
        """
        from repro.runtime.registry import match_component_name

        selected = self.experiments
        if pack is not None:
            canonical = match_component_name(pack, self.pack_names())
            if canonical is None:
                raise ConfigurationError(
                    f"suite {self.name!r} has no pack {pack!r}; available "
                    f"packs: {', '.join(self.pack_names())}"
                )
            selected = tuple(e for e in selected if e.pack == canonical)
        if experiment is not None:
            names = tuple(e.name for e in selected)
            canonical = match_component_name(experiment, names)
            if canonical is None:
                raise ConfigurationError(
                    f"suite {self.name!r} has no experiment {experiment!r}"
                    + (f" in pack {pack!r}" if pack is not None else "")
                    + f"; available experiments: {', '.join(names)}"
                )
            selected = tuple(e for e in selected if e.name == canonical)
        return selected


def deep_merge(base: Any, override: Any) -> Any:
    """Recursive dictionary merge: mappings combine, scalars override."""
    if isinstance(base, Mapping) and isinstance(override, Mapping):
        merged: dict[str, Any] = dict(base)
        for key, value in override.items():
            if key in base:
                merged[key] = deep_merge(base[key], value)
            else:
                merged[key] = value
        return merged
    return override


# ----------------------------------------------------------------------
# Validation helpers.  Every failure names the exact key path.
# ----------------------------------------------------------------------

def _fail(path: str, message: str) -> ConfigurationError:
    return ConfigurationError(f"{path}: {message}")


def _require_mapping(value: Any, path: str) -> dict[str, Any]:
    if not isinstance(value, Mapping):
        raise _fail(path, f"expected a mapping, got {type(value).__name__}")
    for key in value:
        if not isinstance(key, str):
            raise _fail(path, f"keys must be strings, got {key!r}")
    return dict(value)


def _check_keys(mapping: Mapping[str, Any], allowed: frozenset[str],
                path: str) -> None:
    for key in mapping:
        if key not in allowed:
            raise _fail(f"{path}.{key}",
                        f"unknown key; allowed keys: "
                        f"{', '.join(sorted(allowed))}")


def _require_str(value: Any, path: str) -> str:
    if not isinstance(value, str) or not value:
        raise _fail(path, f"expected a non-empty string, got {value!r}")
    return value


def _require_int(value: Any, path: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise _fail(path, f"expected an integer, got {value!r}")
    return value


def _require_number(value: Any, path: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _fail(path, f"expected a number, got {value!r}")
    return float(value)


def _validate_config(config: Mapping[str, Any], path: str) -> dict[str, Any]:
    config = _require_mapping(config, path)
    _check_keys(config, CONFIG_KEYS, path)
    if "score" in config:
        _require_str(config["score"], f"{path}.score")
    if "sampler" in config:
        _require_str(config["sampler"], f"{path}.sampler")
    for key in ("alpha", "k_local", "truncation_threshold"):
        if key in config:
            _require_number(config[key], f"{path}.{key}")
    for key in ("k", "seed"):
        if key in config:
            _require_int(config[key], f"{path}.{key}")
    return config


def _validate_protocol(protocol: Mapping[str, Any], path: str) -> dict[str, Any]:
    protocol = _require_mapping(protocol, path)
    _check_keys(protocol, PROTOCOL_KEYS, path)
    for key in protocol:
        _require_int(protocol[key], f"{path}.{key}")
    return protocol


def _validate_dataset(dataset: Any, path: str) -> Any:
    if isinstance(dataset, str):
        _require_str(dataset, path)
        return dataset
    dataset = _require_mapping(dataset, path)
    _check_keys(dataset, frozenset({"source", "options"}), path)
    if "source" not in dataset:
        raise _fail(f"{path}.source", "required key is missing")
    _require_str(dataset["source"], f"{path}.source")
    if "options" in dataset:
        _require_mapping(dataset["options"], f"{path}.options")
    return dataset


def _validate_experiment_block(block: Mapping[str, Any], path: str) -> None:
    """Validate one defaults/experiment block at its own path (pre-merge)."""
    _check_keys(block, EXPERIMENT_KEYS, path)
    if "workload" in block:
        _require_str(block["workload"], f"{path}.workload")
    if "backend" in block:
        _require_str(block["backend"], f"{path}.backend")
    if "scale" in block:
        scale = _require_number(block["scale"], f"{path}.scale")
        if scale <= 0:
            raise _fail(f"{path}.scale", f"must be positive, got {scale}")
    if "seed" in block:
        _require_int(block["seed"], f"{path}.seed")
    if "dataset" in block:
        _validate_dataset(block["dataset"], f"{path}.dataset")
    if "config" in block:
        _validate_config(block["config"], f"{path}.config")
    if "protocol" in block:
        _validate_protocol(block["protocol"], f"{path}.protocol")
    if "backend_options" in block:
        _require_mapping(block["backend_options"], f"{path}.backend_options")
    if "options" in block:
        _require_mapping(block["options"], f"{path}.options")


def _resolve_dataset(dataset: Any, path: str) -> DatasetRef:
    if isinstance(dataset, str):
        return DatasetRef(source=dataset)
    return DatasetRef(
        source=dataset["source"],
        options=dict(dataset.get("options", {})),
    )


def _resolve_experiment(merged: Mapping[str, Any], *, suite: str, pack: str,
                        name: str, path: str) -> ResolvedExperiment:
    _validate_experiment_block(merged, path)
    if "dataset" not in merged:
        raise _fail(f"{path}.dataset",
                    "required key is missing (set it on the experiment or "
                    "in a defaults block)")
    return ResolvedExperiment(
        suite=suite,
        pack=pack,
        name=name,
        workload=merged.get("workload", "batch"),
        dataset=_resolve_dataset(merged["dataset"], f"{path}.dataset"),
        backend=merged.get("backend", "local"),
        scale=float(merged.get("scale", 1.0)),
        seed=int(merged.get("seed", 42)),
        config=dict(merged.get("config", {})),
        protocol=dict(merged.get("protocol", {})),
        backend_options=dict(merged.get("backend_options", {})),
        options=dict(merged.get("options", {})),
    )


def parse_suite(data: Any, *, default_name: str,
                source: str = "<memory>") -> SuiteSpec:
    """Validate raw suite data (parsed YAML/TOML) into a :class:`SuiteSpec`."""
    data = _require_mapping(data, "suite file")
    _check_keys(data, _TOP_LEVEL_KEYS, "suite file")

    header = _require_mapping(data.get("suite", {}), "suite")
    _check_keys(header, _SUITE_SECTION_KEYS, "suite")
    name = header.get("name", default_name)
    _require_str(name, "suite.name")
    description = header.get("description", "")
    if not isinstance(description, str):
        raise _fail("suite.description",
                    f"expected a string, got {description!r}")

    suite_defaults = _require_mapping(data.get("defaults", {}), "defaults")
    _validate_experiment_block(suite_defaults, "defaults")

    packs = data.get("packs")
    if not isinstance(packs, list) or not packs:
        raise _fail("packs", "expected a non-empty list of packs")

    experiments: list[ResolvedExperiment] = []
    pack_names: set[str] = set()
    for pack_index, raw_pack in enumerate(packs):
        pack_path = f"packs[{pack_index}]"
        pack = _require_mapping(raw_pack, pack_path)
        _check_keys(pack, _PACK_KEYS, pack_path)
        if "name" not in pack:
            raise _fail(f"{pack_path}.name", "required key is missing")
        pack_name = _require_str(pack["name"], f"{pack_path}.name")
        if pack_name in pack_names:
            raise _fail(f"{pack_path}.name",
                        f"duplicate pack name {pack_name!r}")
        pack_names.add(pack_name)
        pack_defaults = _require_mapping(pack.get("defaults", {}),
                                         f"{pack_path}.defaults")
        _validate_experiment_block(pack_defaults, f"{pack_path}.defaults")
        raw_experiments = pack.get("experiments")
        if not isinstance(raw_experiments, list) or not raw_experiments:
            raise _fail(f"{pack_path}.experiments",
                        "expected a non-empty list of experiments")
        seen_names: set[str] = set()
        for exp_index, raw_experiment in enumerate(raw_experiments):
            exp_path = f"{pack_path}.experiments[{exp_index}]"
            experiment = _require_mapping(raw_experiment, exp_path)
            if "name" not in experiment:
                raise _fail(f"{exp_path}.name", "required key is missing")
            exp_name = _require_str(experiment["name"], f"{exp_path}.name")
            if exp_name in seen_names:
                raise _fail(f"{exp_path}.name",
                            f"duplicate experiment name {exp_name!r} in "
                            f"pack {pack_name!r}")
            seen_names.add(exp_name)
            body = {key: value for key, value in experiment.items()
                    if key != "name"}
            _validate_experiment_block(body, exp_path)
            merged = deep_merge(deep_merge(suite_defaults, pack_defaults),
                                body)
            experiments.append(_resolve_experiment(
                merged, suite=name, pack=pack_name, name=exp_name,
                path=exp_path,
            ))
    return SuiteSpec(
        name=name,
        description=description,
        source=source,
        experiments=tuple(experiments),
    )
