"""Command-line interface: regenerate any table or figure from the terminal.

Examples
--------
Run the Table 5 comparison on the default laptop-scale datasets::

    snaple table5

Run the klocal sensitivity figure at a smaller scale with a custom seed::

    snaple figure8 --scale 0.5 --seed 7

List the available experiments and dataset analogs::

    snaple list
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.eval.experiments import EXPERIMENTS
from repro.graph.datasets import dataset_names, dataset_spec

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``snaple`` command."""
    parser = argparse.ArgumentParser(
        prog="snaple",
        description="Regenerate the SNAPLE paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["list"],
        help="experiment to run (table/figure id) or 'list' to enumerate them",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="dataset scale multiplier (default 1.0, laptop-sized analogs)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=42,
        help="random seed shared by dataset generation and the protocol",
    )
    return parser


def _render_listing() -> str:
    lines = ["Available experiments:"]
    for name in sorted(EXPERIMENTS):
        doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        lines.append(f"  {name:10s} {summary}")
    lines.append("")
    lines.append("Dataset analogs:")
    for name in dataset_names():
        spec = dataset_spec(name)
        lines.append(
            f"  {name:12s} {spec.domain:16s} "
            f"paper |E|={spec.paper_edges:,} ({spec.description})"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for the ``snaple`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.experiment == "list":
        print(_render_listing())
        return 0
    experiment = EXPERIMENTS[args.experiment]
    result = experiment(scale=args.scale, seed=args.seed)
    print(result.render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
