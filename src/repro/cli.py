"""Command-line interface: regenerate any table or figure from the terminal.

Examples
--------
Run the Table 5 comparison on the default laptop-scale datasets::

    snaple table5

Run the klocal sensitivity figure at a smaller scale with a custom seed::

    snaple figure8 --scale 0.5 --seed 7

Run only the GAS leg of the engine ablation and emit machine-readable JSON::

    snaple ablation-engines --engine gas --json

Run the engine ablation in 4 worker processes with superstep checkpoints,
then resume from the newest checkpoint after an interruption::

    snaple ablation-engines --engine gas --workers 4 --checkpoint-dir ckpt
    snaple ablation-engines --engine gas --workers 4 --checkpoint-dir ckpt --resume

List the available experiments, dataset analogs and execution backends::

    snaple list
"""

from __future__ import annotations

import argparse
import dataclasses
import inspect
import json
import sys
from collections.abc import Sequence
from typing import Any

from repro.errors import ConfigurationError
from repro.eval.experiments import EXPERIMENTS
from repro.eval.experiments.ablation_engines import ENGINE_SPECS
from repro.graph.datasets import dataset_names, dataset_spec
from repro.runtime import available_backends, backend_capabilities
from repro.runtime.engines import LOCAL_MODES
from repro.runtime.parallel import validate_workers

__all__ = ["main", "build_parser"]


def _experiment_argument(value: str) -> str:
    """Normalize an experiment name (``_`` and ``-`` are interchangeable)."""
    key = value.replace("_", "-")
    if key == "list" or key in EXPERIMENTS:
        return key
    known = ", ".join(sorted(EXPERIMENTS) + ["list"])
    raise argparse.ArgumentTypeError(
        f"unknown experiment {value!r} (choose from: {known})"
    )


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``snaple`` command."""
    parser = argparse.ArgumentParser(
        prog="snaple",
        description="Regenerate the SNAPLE paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        type=_experiment_argument,
        metavar="experiment",
        help=(
            "experiment to run (table/figure id, e.g. "
            f"{', '.join(sorted(EXPERIMENTS))}) or 'list' to enumerate them"
        ),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="dataset scale multiplier (default 1.0, laptop-sized analogs)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=42,
        help="random seed shared by dataset generation and the protocol",
    )
    parser.add_argument(
        "--engine",
        choices=sorted(ENGINE_SPECS),
        default=None,
        help=(
            "restrict an engine-comparison experiment to one execution "
            "engine (only experiments taking an 'engines' parameter)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "execute graph partitions in N shared-nothing worker processes "
            "instead of the simulated cluster (only experiments taking a "
            "'workers' parameter, e.g. ablation-engines)"
        ),
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help=(
            "persist superstep-boundary checkpoints of parallel (--workers) "
            "runs under this directory, enabling crash recovery and --resume "
            "(only experiments taking a 'checkpoint_dir' parameter, e.g. "
            "ablation-engines)"
        ),
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help=(
            "checkpoint cadence in supersteps (default 1; requires "
            "--checkpoint-dir)"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume each run from the newest checkpoint in its "
            "--checkpoint-dir subdirectory, e.g. after an interrupted "
            "invocation; results are bit-identical to an uninterrupted run"
        ),
    )
    parser.add_argument(
        "--mode",
        choices=LOCAL_MODES,
        default=None,
        help=(
            "execution mode for local-backend scoring: 'vectorized' runs "
            "the CSR array kernel (default), 'reference' the scalar "
            "implementation (only experiments taking a 'mode' parameter, "
            "e.g. figure6-figure10, ablation-alpha)"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the result as machine-readable JSON instead of a table",
    )
    return parser


def _experiment_summary(name: str) -> str:
    """First docstring line of an experiment's entry point."""
    doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()
    return doc[0] if doc else ""


def _render_listing() -> str:
    lines = ["Available experiments:"]
    for name in sorted(EXPERIMENTS):
        lines.append(f"  {name:10s} {_experiment_summary(name)}")
    lines.append("")
    lines.append("Dataset analogs:")
    for name in dataset_names():
        spec = dataset_spec(name)
        lines.append(
            f"  {name:12s} {spec.domain:16s} "
            f"paper |E|={spec.paper_edges:,} ({spec.description})"
        )
    lines.append("")
    lines.append("Execution backends:")
    for name in available_backends():
        capabilities = backend_capabilities(name)
        lines.append(f"  {name:16s} {capabilities.description}")
    return "\n".join(lines)


def _listing_payload() -> dict[str, Any]:
    """JSON payload for ``snaple list --json``."""
    return {
        "experiments": {
            name: _experiment_summary(name) for name in sorted(EXPERIMENTS)
        },
        "datasets": {
            name: {
                "domain": spec.domain,
                "paper_edges": spec.paper_edges,
                "description": spec.description,
            }
            for name in dataset_names()
            for spec in (dataset_spec(name),)
        },
        "backends": {
            name: dataclasses.asdict(backend_capabilities(name))
            for name in available_backends()
        },
    }


def _json_default(value: Any) -> Any:
    """Last-resort JSON conversion for result payloads."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if hasattr(value, "item"):  # numpy scalars
        return value.item()
    return str(value)


def _result_payload(result: Any) -> Any:
    """Machine-readable view of an experiment result."""
    if hasattr(result, "to_dict"):
        return result.to_dict()
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        return dataclasses.asdict(result)
    return {"rendered": result.render()}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for the ``snaple`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.experiment == "list":
        if args.json:
            print(json.dumps(_listing_payload(), indent=2))
        else:
            print(_render_listing())
        return 0
    experiment = EXPERIMENTS[args.experiment]
    kwargs: dict[str, Any] = {"scale": args.scale, "seed": args.seed}
    parameters = inspect.signature(experiment).parameters
    if args.engine is not None:
        if "engines" not in parameters:
            parser.error(
                f"--engine is not supported by experiment {args.experiment!r}"
            )
        kwargs["engines"] = (args.engine,)
    if args.workers is not None:
        if "workers" not in parameters:
            parser.error(
                f"--workers is not supported by experiment {args.experiment!r}"
            )
        try:
            kwargs["workers"] = validate_workers(args.workers)
        except ConfigurationError as error:
            parser.error(f"--workers: {error}")
    if args.checkpoint_dir is not None:
        if "checkpoint_dir" not in parameters:
            parser.error(
                f"--checkpoint-dir is not supported by experiment "
                f"{args.experiment!r}"
            )
        if args.workers is None:
            parser.error("--checkpoint-dir requires --workers")
        kwargs["checkpoint_dir"] = args.checkpoint_dir
    if args.checkpoint_every is not None:
        if args.checkpoint_dir is None:
            parser.error("--checkpoint-every requires --checkpoint-dir")
        if args.checkpoint_every < 1:
            parser.error("--checkpoint-every must be a positive integer")
        kwargs["checkpoint_every"] = args.checkpoint_every
    if args.resume:
        if args.checkpoint_dir is None:
            parser.error("--resume requires --checkpoint-dir")
        kwargs["resume"] = True
    if args.mode is not None:
        if "mode" not in parameters:
            parser.error(
                f"--mode is not supported by experiment {args.experiment!r}"
            )
        kwargs["mode"] = args.mode
    result = experiment(**kwargs)
    if args.json:
        payload = {
            "experiment": args.experiment,
            "scale": args.scale,
            "seed": args.seed,
            "result": _result_payload(result),
        }
        print(json.dumps(payload, indent=2, default=_json_default))
    else:
        print(result.render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
