"""Command-line interface: regenerate any table or figure from the terminal.

Examples
--------
Run the Table 5 comparison on the default laptop-scale datasets::

    snaple table5

Run the klocal sensitivity figure at a smaller scale with a custom seed::

    snaple figure8 --scale 0.5 --seed 7

Run only the GAS leg of the engine ablation and emit machine-readable JSON::

    snaple ablation-engines --engine gas --json

Run the engine ablation in 4 worker processes with superstep checkpoints,
then resume from the newest checkpoint after an interruption::

    snaple ablation-engines --engine gas --workers 4 --checkpoint-dir ckpt
    snaple ablation-engines --engine gas --workers 4 --checkpoint-dir ckpt --resume

Serve predictions from a long-lived process, ingest an edge, and watch the
answer change (the online-serving demo loop)::

    snaple serve --demo
    snaple serve --vertex 5 --ingest 5:42 --workers 4 --json

Run a declarative scenario suite (YAML/TOML) and write one report per
experiment::

    snaple suite run examples/suites/temporal_replay.yaml --out reports/
    snaple suite list examples/suites/figure6.yaml

List the available experiments, dataset analogs and execution backends::

    snaple list
"""

from __future__ import annotations

import argparse
import dataclasses
import inspect
import json
import os
import sys
from collections.abc import Sequence
from typing import Any

from repro.errors import ConfigurationError
from repro.eval.experiments import EXPERIMENTS
from repro.eval.experiments.ablation_engines import ENGINE_SPECS
from repro.graph.datasets import dataset_names, dataset_spec
from repro.runtime import available_backends, backend_capabilities
from repro.runtime.engines import LOCAL_MODES
from repro.runtime.parallel import validate_workers

__all__ = ["main", "build_parser"]


def _experiment_argument(value: str) -> str:
    """Normalize an experiment name (``_`` and ``-`` are interchangeable).

    Uses the registry-level normalizer, the same one behind every
    component-name lookup.
    """
    from repro.runtime.registry import match_component_name

    key = match_component_name(
        value, list(EXPERIMENTS) + ["list", "serve"]
    )
    if key is not None:
        return key
    known = ", ".join(sorted(EXPERIMENTS) + ["list", "serve", "suite"])
    raise argparse.ArgumentTypeError(
        f"unknown experiment {value!r} (choose from: {known})"
    )


def _edge_argument(value: str) -> tuple[int, int]:
    """Parse an ``--ingest U:V`` directed-edge argument."""
    try:
        source, _, target = value.partition(":")
        return int(source), int(target)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer edge 'U:V', got {value!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``snaple`` command."""
    parser = argparse.ArgumentParser(
        prog="snaple",
        description="Regenerate the SNAPLE paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        type=_experiment_argument,
        metavar="experiment",
        help=(
            "experiment to run (table/figure id, e.g. "
            f"{', '.join(sorted(EXPERIMENTS))}) or 'list' to enumerate them"
        ),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="dataset scale multiplier (default 1.0, laptop-sized analogs)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=42,
        help="random seed shared by dataset generation and the protocol",
    )
    parser.add_argument(
        "--engine",
        choices=sorted(ENGINE_SPECS),
        default=None,
        help=(
            "restrict an engine-comparison experiment to one execution "
            "engine (only experiments taking an 'engines' parameter)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "execute graph partitions in N shared-nothing worker processes "
            "instead of the simulated cluster (only experiments taking a "
            "'workers' parameter, e.g. ablation-engines)"
        ),
    )
    parser.add_argument(
        "--graph-format",
        choices=("memory", "memmap"),
        default=None,
        help=(
            "where parallel (--workers) runs host the graph and state "
            "columns: 'memory' (the default; RAM and shared-memory "
            "segments) or 'memmap' (out-of-core: on-disk containers and "
            "spool files, equivalent to SNAPLE_OOC=1, bounding peak RSS "
            "on graphs larger than memory)"
        ),
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help=(
            "persist superstep-boundary checkpoints of parallel (--workers) "
            "runs under this directory, enabling crash recovery and --resume "
            "(only experiments taking a 'checkpoint_dir' parameter, e.g. "
            "ablation-engines)"
        ),
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help=(
            "checkpoint cadence in supersteps (default 1; requires "
            "--checkpoint-dir)"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume each run from the newest checkpoint in its "
            "--checkpoint-dir subdirectory, e.g. after an interrupted "
            "invocation; results are bit-identical to an uninterrupted run"
        ),
    )
    parser.add_argument(
        "--mode",
        choices=LOCAL_MODES,
        default=None,
        help=(
            "execution mode for local-backend scoring: 'vectorized' runs "
            "the CSR array kernel (default), 'reference' the scalar "
            "implementation (only experiments taking a 'mode' parameter, "
            "e.g. figure6-figure10, ablation-alpha)"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the result as machine-readable JSON instead of a table",
    )
    serving = parser.add_argument_group(
        "online serving ('serve' only)",
        "run a long-lived predictor service over a generated graph; "
        "--workers sets the service's worker-thread count and --scale/--seed "
        "size and seed the graph",
    )
    serving.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help=(
            "serve from N shard processes behind a batching dispatcher "
            "(shared-memory graph plane, bit-identical answers) instead of "
            "the single-process worker-thread service"
        ),
    )
    serving.add_argument(
        "--queue-bound",
        type=int,
        default=None,
        metavar="N",
        help="bounded job-queue capacity of the service (default 64)",
    )
    serving.add_argument(
        "--compact-every",
        type=int,
        default=None,
        metavar="N",
        help=(
            "fold the delta overlay back into the CSR base every N ingested "
            "edges (default 1024)"
        ),
    )
    serving.add_argument(
        "--vertex",
        type=int,
        default=None,
        metavar="U",
        help="issue a top-k request for vertex U (re-issued after --ingest)",
    )
    serving.add_argument(
        "--ingest",
        type=_edge_argument,
        action="append",
        default=None,
        metavar="U:V",
        help="stream the directed edge U->V into the service (repeatable)",
    )
    serving.add_argument(
        "--demo",
        action="store_true",
        help=(
            "demo loop: query a vertex, ingest its top prediction as a real "
            "edge, and show the changed answer"
        ),
    )
    serving.add_argument(
        "--load-clients",
        type=int,
        default=None,
        metavar="N",
        help="run the closed-loop load generator with N clients",
    )
    serving.add_argument(
        "--load-windows",
        type=int,
        default=3,
        metavar="N",
        help="instrumentation windows for --load-clients (default 3)",
    )
    serving.add_argument(
        "--load-window-seconds",
        type=float,
        default=1.0,
        metavar="S",
        help="window length in seconds for --load-clients (default 1.0)",
    )
    return parser


def _experiment_summary(name: str) -> str:
    """First docstring line of an experiment's entry point."""
    doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()
    return doc[0] if doc else ""


def _render_listing() -> str:
    lines = ["Available experiments:"]
    for name in sorted(EXPERIMENTS):
        lines.append(f"  {name:10s} {_experiment_summary(name)}")
    lines.append(
        "  serve      online predictor service with streamed edge ingest "
        "(see 'snaple serve --help')"
    )
    lines.append(
        "  suite      declarative scenario suites from YAML/TOML files "
        "(see 'snaple suite --help')"
    )
    lines.append("")
    lines.append("Dataset analogs:")
    for name in dataset_names():
        spec = dataset_spec(name)
        lines.append(
            f"  {name:12s} {spec.domain:16s} "
            f"paper |E|={spec.paper_edges:,} ({spec.description})"
        )
    lines.append("")
    lines.append("Execution backends:")
    for name in available_backends():
        capabilities = backend_capabilities(name)
        lines.append(f"  {name:16s} {capabilities.description}")
    return "\n".join(lines)


def _listing_payload() -> dict[str, Any]:
    """JSON payload for ``snaple list --json``."""
    return {
        "experiments": {
            name: _experiment_summary(name) for name in sorted(EXPERIMENTS)
        },
        "datasets": {
            name: {
                "domain": spec.domain,
                "paper_edges": spec.paper_edges,
                "description": spec.description,
            }
            for name in dataset_names()
            for spec in (dataset_spec(name),)
        },
        "backends": {
            name: dataclasses.asdict(backend_capabilities(name))
            for name in available_backends()
        },
    }


def _json_default(value: Any) -> Any:
    """Last-resort JSON conversion for result payloads."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if hasattr(value, "item"):  # numpy scalars
        return value.item()
    return str(value)


def _result_payload(result: Any) -> Any:
    """Machine-readable view of an experiment result."""
    if hasattr(result, "to_dict"):
        return result.to_dict()
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        return dataclasses.asdict(result)
    return {"rendered": result.render()}


def _run_serve(args: argparse.Namespace,
               parser: argparse.ArgumentParser) -> int:
    """The ``snaple serve`` session: start, request, ingest, shut down."""
    from repro.graph.generators import powerlaw_cluster
    from repro.serving import (
        LoadConfig,
        LoadGenerator,
        PredictorService,
        ServingConfig,
        ShardedPredictorService,
    )
    from repro.snaple.config import SnapleConfig

    for flag, value in (("--engine", args.engine), ("--mode", args.mode),
                        ("--checkpoint-dir", args.checkpoint_dir),
                        ("--checkpoint-every", args.checkpoint_every)):
        if value is not None:
            parser.error(f"{flag} is not supported by 'serve'")
    if args.resume:
        parser.error("--resume is not supported by 'serve'")

    # Up-front validation (ConfigurationError), before any graph work.
    serving_config = ServingConfig(
        workers=args.workers if args.workers is not None else 2,
        queue_bound=(args.queue_bound
                     if args.queue_bound is not None else 64),
        compact_every=(args.compact_every
                       if args.compact_every is not None else 1024),
    )
    if args.shards is not None and args.shards < 1:
        parser.error("--shards must be >= 1")
    num_vertices = max(60, int(round(1000 * args.scale)))
    graph = powerlaw_cluster(num_vertices, 4, 0.4, seed=args.seed)
    config = SnapleConfig.paper_default(seed=args.seed)

    events: list[dict[str, Any]] = []

    def top_k_event(service: PredictorService, vertex: int) -> dict[str, Any]:
        answer = service.top_k(vertex)
        return {
            "op": "top_k",
            "vertex": vertex,
            "predicted": answer.predicted,
            "scores": answer.scores,
            "from_cache": answer.from_cache,
        }

    load_payload: dict[str, Any] | None = None
    if args.shards is not None:
        service_handle: Any = ShardedPredictorService(
            graph, config, shards=args.shards, serving=serving_config
        )
    else:
        service_handle = PredictorService(graph, config,
                                          serving=serving_config)
    with service_handle as service:
        if args.vertex is not None:
            events.append(top_k_event(service, args.vertex))
        for source, target in args.ingest or []:
            outcome = service.ingest([(source, target)])
            events.append({
                "op": "ingest",
                "edge": [source, target],
                "added": len(outcome.added),
                "rescored": outcome.rescored,
                "compacted": outcome.compacted,
            })
        if args.ingest and args.vertex is not None:
            events.append(top_k_event(service, args.vertex))
        if args.demo:
            # Ingest a vertex's top prediction as a real edge: the candidate
            # joins Γ̂(u), is excluded from candidacy, and the answer changes.
            subject = next(
                (u for u in range(service.num_vertices)
                 if service.top_k(u).predicted), None,
            )
            if subject is None:
                parser.error("demo graph produced no predictions; "
                             "raise --scale")
            before = service.top_k(subject)
            ingested = before.predicted[0]
            service.ingest([(subject, ingested)])
            after = service.top_k(subject)
            events.append({
                "op": "demo",
                "vertex": subject,
                "ingested_edge": [subject, ingested],
                "before": before.predicted,
                "after": after.predicted,
                "answer_changed": after.predicted != before.predicted,
            })
        if args.load_clients is not None:
            load_config = LoadConfig(
                clients=args.load_clients,
                windows=args.load_windows,
                window_seconds=args.load_window_seconds,
                warmup_windows=1 if args.load_windows > 1 else 0,
                seed=args.seed,
            )
            load_payload = LoadGenerator(service, load_config).run().to_dict()
        stats = service.stats()
        report = (service.report() if args.shards is None else None)

    if args.json:
        payload = {
            "experiment": "serve",
            "scale": args.scale,
            "seed": args.seed,
            "serving": dataclasses.asdict(serving_config),
            "shards": args.shards,
            "graph": {
                "num_vertices": graph.num_vertices,
                "num_edges": graph.num_edges,
            },
            "events": events,
            "load": load_payload,
            "stats": dataclasses.asdict(stats),
        }
        if report is not None:
            payload["extra"] = report.extra
            payload["uptime_seconds"] = report.wall_clock_seconds
        print(json.dumps(payload, indent=2, default=_json_default))
        return 0
    plane = (f"shards={args.shards}" if args.shards is not None
             else f"workers={serving_config.workers}")
    lines = [
        f"Online serving: |V|={graph.num_vertices:,} "
        f"|E|={graph.num_edges:,}, {plane}, "
        f"queue bound={serving_config.queue_bound}, "
        f"compact every={serving_config.compact_every}",
    ]
    for event in events:
        if event["op"] == "top_k":
            lines.append(
                f"  top-k({event['vertex']}) -> {event['predicted']}"
                + ("  [cached]" if event["from_cache"] else "")
            )
        elif event["op"] == "ingest":
            source, target = event["edge"]
            lines.append(
                f"  ingest {source}->{target}: added={event['added']} "
                f"rescored={event['rescored']} vertices"
                + (" (compacted)" if event["compacted"] else "")
            )
        else:
            lines.append(
                f"  demo: top-k({event['vertex']}) {event['before']} "
                f"-> ingest {event['ingested_edge'][0]}->"
                f"{event['ingested_edge'][1]} -> {event['after']} "
                f"(answer changed: {event['answer_changed']})"
            )
    if load_payload is not None:
        lines.append(
            f"  load: {load_payload['offered_clients']} clients, "
            f"stable {load_payload['stable_throughput_ops']:.0f} ops/s, "
            f"p50 {load_payload['stable_p50_ms']:.3f} ms, "
            f"p99 {load_payload['stable_p99_ms']:.3f} ms"
        )
    if args.shards is not None:
        lines.append(
            f"  stats: served={stats.requests_served} "
            f"ingested={stats.edges_ingested} "
            f"batches={stats.batches_dispatched} "
            f"(mean size {stats.mean_batch_size:.1f}) "
            f"compactions={stats.compactions} shards={stats.shards}"
        )
    else:
        lines.append(
            f"  stats: served={stats.requests_served} "
            f"ingested={stats.edges_ingested} "
            f"rescored={stats.dirty_vertices_rescored} "
            f"cache {stats.cache_hits}/"
            f"{stats.cache_hits + stats.cache_misses} "
            f"compactions={stats.compactions}"
        )
    print("\n".join(lines))
    return 0


def build_suite_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``snaple suite`` command family."""
    parser = argparse.ArgumentParser(
        prog="snaple suite",
        description=(
            "Run declarative scenario suites (YAML/TOML) through the "
            "component registry: batch protocol runs and temporal replays "
            "through the serving plane, no experiment code required."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run", help="execute a suite file's experiments"
    )
    run.add_argument("file", help="path to the suite file (.yaml/.yml/.toml)")
    run.add_argument(
        "--pack", default=None, metavar="NAME",
        help="run only the experiments of this pack",
    )
    run.add_argument(
        "--experiment", default=None, metavar="NAME",
        help="run only the experiment with this name",
    )
    run.add_argument(
        "--out", default=None, metavar="DIR",
        help="also write one <pack>__<experiment>.json report per "
             "experiment under DIR",
    )
    run.add_argument(
        "--json", action="store_true",
        help="emit the full result as machine-readable JSON",
    )

    listing = commands.add_parser(
        "list", help="list a suite file's packs and experiments"
    )
    listing.add_argument("file", help="path to the suite file")
    listing.add_argument("--json", action="store_true",
                         help="emit the listing as JSON")

    describe = commands.add_parser(
        "describe", help="show every resolved experiment (merged defaults)"
    )
    describe.add_argument("file", help="path to the suite file")
    describe.add_argument("--json", action="store_true",
                          help="emit the description as JSON")
    return parser


def _suite_experiment_payload(experiment: Any) -> dict[str, Any]:
    """JSON view of one resolved suite experiment."""
    payload = dataclasses.asdict(experiment)
    payload["qualified_name"] = experiment.qualified_name
    return payload


def _run_suite_command(argv: Sequence[str]) -> int:
    """The ``snaple suite ...`` command family."""
    from repro.suites import load_suite, run_suite

    parser = build_suite_parser()
    args = parser.parse_args(list(argv))
    try:
        suite = load_suite(args.file)
    except ConfigurationError as error:
        parser.error(str(error))
    if args.command == "list":
        if args.json:
            print(json.dumps({
                "suite": suite.name,
                "description": suite.description,
                "source": suite.source,
                "packs": {
                    pack: [e.name for e in suite.experiments
                           if e.pack == pack]
                    for pack in suite.pack_names()
                },
            }, indent=2))
            return 0
        lines = [f"Suite {suite.name!r} ({suite.source})"]
        if suite.description:
            lines.append(f"  {suite.description}")
        for pack in suite.pack_names():
            lines.append(f"  pack {pack}:")
            for experiment in suite.experiments:
                if experiment.pack == pack:
                    lines.append(
                        f"    {experiment.name:24s} "
                        f"{experiment.workload} on "
                        f"{experiment.dataset.describe()}"
                    )
        print("\n".join(lines))
        return 0
    if args.command == "describe":
        payloads = [_suite_experiment_payload(e) for e in suite.experiments]
        if args.json:
            print(json.dumps({
                "suite": suite.name,
                "description": suite.description,
                "experiments": payloads,
            }, indent=2, default=_json_default))
            return 0
        lines = [f"Suite {suite.name!r} — "
                 f"{len(suite.experiments)} experiment(s)"]
        for experiment in suite.experiments:
            lines.append(f"  {experiment.qualified_name}:")
            lines.append(f"    workload: {experiment.workload}"
                         f"  backend: {experiment.backend}")
            lines.append(f"    dataset:  {experiment.dataset.describe()}")
            lines.append(f"    scale={experiment.scale} "
                         f"seed={experiment.seed}")
            for section in ("config", "protocol", "backend_options",
                            "options"):
                content = getattr(experiment, section)
                if content:
                    rendered = ", ".join(
                        f"{key}={value!r}"
                        for key, value in sorted(content.items())
                    )
                    lines.append(f"    {section}: {rendered}")
        print("\n".join(lines))
        return 0
    try:
        result = run_suite(suite, pack=args.pack,
                           experiment=args.experiment, out_dir=args.out)
    except ConfigurationError as error:
        parser.error(str(error))
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, default=_json_default))
    else:
        print(result.render())
    return 0


#: Serve-only flags rejected for batch experiments (dest, rendered flag).
_SERVE_ONLY_FLAGS = (
    ("shards", "--shards"),
    ("queue_bound", "--queue-bound"),
    ("compact_every", "--compact-every"),
    ("vertex", "--vertex"),
    ("ingest", "--ingest"),
    ("load_clients", "--load-clients"),
)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for the ``snaple`` console script."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "suite":
        return _run_suite_command(arguments[1:])
    parser = build_parser()
    args = parser.parse_args(arguments)
    if args.experiment == "list":
        if args.json:
            print(json.dumps(_listing_payload(), indent=2))
        else:
            print(_render_listing())
        return 0
    if args.experiment == "serve":
        return _run_serve(args, parser)
    for dest, flag in _SERVE_ONLY_FLAGS:
        if getattr(args, dest) is not None:
            parser.error(
                f"{flag} is only supported by the 'serve' experiment"
            )
    if args.demo:
        parser.error("--demo is only supported by the 'serve' experiment")
    experiment = EXPERIMENTS[args.experiment]
    kwargs: dict[str, Any] = {"scale": args.scale, "seed": args.seed}
    parameters = inspect.signature(experiment).parameters
    if args.engine is not None:
        if "engines" not in parameters:
            parser.error(
                f"--engine is not supported by experiment {args.experiment!r}"
            )
        kwargs["engines"] = (args.engine,)
    if args.workers is not None:
        if "workers" not in parameters:
            parser.error(
                f"--workers is not supported by experiment {args.experiment!r}"
            )
        try:
            kwargs["workers"] = validate_workers(args.workers)
        except ConfigurationError as error:
            parser.error(f"--workers: {error}")
    if args.graph_format is not None:
        if args.workers is None:
            parser.error("--graph-format requires --workers")
        # The executor reads the flag from the environment (and mirrors it
        # into every worker), so the CLI only has to set it here.
        if args.graph_format == "memmap":
            os.environ["SNAPLE_OOC"] = "1"
        else:
            os.environ.pop("SNAPLE_OOC", None)
    if args.checkpoint_dir is not None:
        if "checkpoint_dir" not in parameters:
            parser.error(
                f"--checkpoint-dir is not supported by experiment "
                f"{args.experiment!r}"
            )
        if args.workers is None:
            parser.error("--checkpoint-dir requires --workers")
        kwargs["checkpoint_dir"] = args.checkpoint_dir
    if args.checkpoint_every is not None:
        if args.checkpoint_dir is None:
            parser.error("--checkpoint-every requires --checkpoint-dir")
        if args.checkpoint_every < 1:
            parser.error("--checkpoint-every must be a positive integer")
        kwargs["checkpoint_every"] = args.checkpoint_every
    if args.resume:
        if args.checkpoint_dir is None:
            parser.error("--resume requires --checkpoint-dir")
        kwargs["resume"] = True
    if args.mode is not None:
        if "mode" not in parameters:
            parser.error(
                f"--mode is not supported by experiment {args.experiment!r}"
            )
        kwargs["mode"] = args.mode
    result = experiment(**kwargs)
    if args.json:
        payload = {
            "experiment": args.experiment,
            "scale": args.scale,
            "seed": args.seed,
            "result": _result_payload(result),
        }
        print(json.dumps(payload, indent=2, default=_json_default))
    else:
        print(result.render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
