"""Classic standalone topological link predictors (Liben-Nowell & Kleinberg).

These predictors implement the single-machine version of Algorithm 1 with the
2-hop restriction of equation (2): candidates are the vertices two hops away
and the score is a closed-form topological metric computed from the full
(untruncated) neighborhoods.  They serve as quality references in tests and
examples — the paper's section 5.9 notes that this direct approach is neither
fast nor accurate enough compared to SNAPLE or walk-based PPR on the large
datasets.
"""

from __future__ import annotations

import math
import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.graph.digraph import DiGraph
from repro.snaple.program import top_k_predictions

__all__ = [
    "TopologicalPredictionResult",
    "TopologicalPredictor",
    "common_neighbors_score",
    "jaccard_score",
    "adamic_adar_score",
    "preferential_attachment_score",
    "resource_allocation_score",
    "TOPOLOGICAL_SCORES",
]

#: A topological score takes (graph, u, z) and returns a float.
ScoreFn = Callable[[DiGraph, int, int], float]


def common_neighbors_score(graph: DiGraph, u: int, z: int) -> float:
    """``|Γ(u) ∩ Γ(z)|``."""
    return float(len(graph.neighbor_set(u) & graph.neighbor_set(z)))


def jaccard_score(graph: DiGraph, u: int, z: int) -> float:
    """``|Γ(u) ∩ Γ(z)| / |Γ(u) ∪ Γ(z)|``."""
    set_u = graph.neighbor_set(u)
    set_z = graph.neighbor_set(z)
    union = len(set_u | set_z)
    if union == 0:
        return 0.0
    return len(set_u & set_z) / union


def adamic_adar_score(graph: DiGraph, u: int, z: int) -> float:
    """Sum of ``1 / log|Γ(w)|`` over common neighbors ``w``."""
    common = graph.neighbor_set(u) & graph.neighbor_set(z)
    score = 0.0
    for w in common:
        degree = graph.out_degree(w)
        if degree > 1:
            score += 1.0 / math.log(degree)
    return score


def preferential_attachment_score(graph: DiGraph, u: int, z: int) -> float:
    """``|Γ(u)| · |Γ(z)|``."""
    return float(graph.out_degree(u) * graph.out_degree(z))


def resource_allocation_score(graph: DiGraph, u: int, z: int) -> float:
    """Sum of ``1 / |Γ(w)|`` over common neighbors ``w``."""
    common = graph.neighbor_set(u) & graph.neighbor_set(z)
    score = 0.0
    for w in common:
        degree = graph.out_degree(w)
        if degree > 0:
            score += 1.0 / degree
    return score


#: Registry of classic topological scores by name.
TOPOLOGICAL_SCORES: dict[str, ScoreFn] = {
    "common_neighbors": common_neighbors_score,
    "jaccard": jaccard_score,
    "adamic_adar": adamic_adar_score,
    "preferential_attachment": preferential_attachment_score,
    "resource_allocation": resource_allocation_score,
}


@dataclass
class TopologicalPredictionResult:
    """Predictions of a standalone topological predictor."""

    predictions: dict[int, list[int]]
    scores: dict[int, dict[int, float]]
    wall_clock_seconds: float

    def predicted_edges(self) -> set[tuple[int, int]]:
        """All predicted edges as ``(source, predicted target)`` pairs."""
        return {
            (u, z) for u, targets in self.predictions.items() for z in targets
        }


class TopologicalPredictor:
    """Single-machine Algorithm 1 with the 2-hop candidate restriction."""

    def __init__(self, score_name: str = "jaccard", *, k: int = 5) -> None:
        if score_name not in TOPOLOGICAL_SCORES:
            raise ConfigurationError(
                f"unknown topological score {score_name!r}; available: "
                f"{', '.join(sorted(TOPOLOGICAL_SCORES))}"
            )
        if k < 1:
            raise ConfigurationError("k must be >= 1")
        self._score_name = score_name
        self._score = TOPOLOGICAL_SCORES[score_name]
        self._k = k

    @property
    def score_name(self) -> str:
        return self._score_name

    @property
    def k(self) -> int:
        return self._k

    def predict(self, graph: DiGraph, *,
                vertices: list[int] | None = None) -> TopologicalPredictionResult:
        """Score every 2-hop candidate of every (selected) vertex."""
        target_vertices = list(graph.vertices()) if vertices is None else list(vertices)
        predictions: dict[int, list[int]] = {}
        all_scores: dict[int, dict[int, float]] = {}
        start = time.perf_counter()
        for u in target_vertices:
            candidates = graph.two_hop_neighbors(u)
            scores = {z: self._score(graph, u, z) for z in candidates}
            all_scores[u] = scores
            predictions[u] = top_k_predictions(scores, self._k)
        wall = time.perf_counter() - start
        return TopologicalPredictionResult(
            predictions=predictions,
            scores=all_scores,
            wall_clock_seconds=wall,
        )
