"""Baselines: naive GAS 2-hop prediction, Cassovary-like walks, classic scores."""

from repro.baselines.bsp_baseline import (
    BspBaselinePredictor,
    BspBaselineProgram,
    BspBaselineResult,
)
from repro.baselines.cassovary import InMemoryGraph, WalkStats
from repro.baselines.gas_baseline import (
    BaselinePredictionResult,
    GasBaselinePredictor,
)
from repro.baselines.random_walk_ppr import (
    RandomWalkConfig,
    RandomWalkPPRPredictor,
    RandomWalkPredictionResult,
)
from repro.baselines.topological import (
    TOPOLOGICAL_SCORES,
    TopologicalPredictionResult,
    TopologicalPredictor,
)

__all__ = [
    "GasBaselinePredictor",
    "BspBaselinePredictor",
    "BspBaselineProgram",
    "BspBaselineResult",
    "BaselinePredictionResult",
    "InMemoryGraph",
    "WalkStats",
    "RandomWalkConfig",
    "RandomWalkPPRPredictor",
    "RandomWalkPredictionResult",
    "TopologicalPredictor",
    "TopologicalPredictionResult",
    "TOPOLOGICAL_SCORES",
]
