"""The naive 2-hop link-prediction BASELINE expressed on the BSP substrate.

The paper's BASELINE (Section 5.3) implements Algorithm 1 directly on
GraphLab: every vertex propagates its full neighborhood so that 2-hop
neighbors can be scored with Jaccard, which is what exhausts memory on the
large graphs.  A Pregel port of the same algorithm has the same pathology in
message form: after learning its in-neighbors, every vertex must forward the
*neighborhoods of all its neighbors* to each in-neighbor, so the message
volume grows with the sum of 2-hop neighborhood sizes rather than with
``klocal²`` as SNAPLE's port does.

This module provides that port.  It exists for the engine comparison: it
shows that the BASELINE's blow-up is a property of the algorithm's data flow,
not of the GAS model, and it gives the BSP substrate a second (adversarial)
workload beyond SNAPLE itself.

The supersteps are:

0. register with out-neighbors (learn in-neighbors) and record ``Γ(u)``;
1. ship ``Γ(v)`` to every registered in-neighbor;
2. forward the received map ``{v: Γ(v)}`` to every registered in-neighbor
   (this is the quadratic step);
3. score every 2-hop candidate with Jaccard and keep the top ``k``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.bsp.engine import BspEngine, BspRunResult
from repro.bsp.partition import VertexPartitioner
from repro.bsp.vertex import BspVertexProgram, ComputeContext
from repro.gas.cluster import ClusterConfig, TYPE_II, cluster_of
from repro.graph.digraph import DiGraph
from repro.snaple.program import top_k_predictions
from repro.snaple.similarity import SimilarityFn, jaccard

__all__ = ["BspBaselineProgram", "BspBaselineResult", "BspBaselinePredictor"]


class BspBaselineProgram(BspVertexProgram):
    """Four-superstep Pregel port of the naive 2-hop Jaccard BASELINE."""

    name = "baseline-bsp"
    max_supersteps = 4

    def __init__(self, k: int, similarity: SimilarityFn) -> None:
        self._k = k
        self._similarity = similarity
        #: Candidate scores per vertex, kept outside the vertex state exactly
        #: as the GAS BASELINE keeps them in its apply-phase temporary.
        self.collected_scores: dict[int, dict[int, float]] = {}

    def initial_state(self, vertex: int) -> dict[str, Any]:
        return {}

    def compute(self, state: dict[str, Any], messages: list[Any],
                context: ComputeContext) -> None:
        superstep = context.superstep
        if superstep == 0:
            state["gamma"] = sorted(context.out_neighbors())
            context.send_message_to_all_neighbors(("register", context.vertex))
        elif superstep == 1:
            state["in_neighbors"] = sorted(
                sender for kind, sender in messages if kind == "register"
            )
            for requester in state["in_neighbors"]:
                context.send_message(
                    requester, ("gamma", context.vertex, state["gamma"])
                )
        elif superstep == 2:
            # The quadratic step: forward every received neighborhood to every
            # in-neighbor so they can score their 2-hop candidates.
            neighborhood_of = {
                sender: gamma for kind, sender, gamma in messages if kind == "gamma"
            }
            state["neighbor_gamma"] = neighborhood_of
            for requester in state.get("in_neighbors", []):
                context.send_message(
                    requester, ("two_hop", context.vertex, neighborhood_of)
                )
        else:
            self._score(state, messages, context)
            context.vote_to_halt()

    def compute_cost(self, state: dict[str, Any], num_messages: int) -> int:
        # Scoring a 2-hop candidate means a Jaccard over two full
        # neighborhoods; weight it like the GAS BASELINE's scoring step.
        if "neighbor_gamma" in state:
            return 1 + 4 * num_messages
        return 1 + num_messages

    def _score(self, state: dict[str, Any], messages: list[Any],
               context: ComputeContext) -> None:
        gamma_u = state.get("gamma", [])
        existing = set(gamma_u)
        u = context.vertex
        scores: dict[int, float] = {}
        for kind, _sender, neighborhoods in messages:
            if kind != "two_hop":
                continue
            for z, gamma_z in neighborhoods.items():
                if z == u or z in existing or z in scores:
                    continue
                scores[z] = self._similarity(gamma_u, gamma_z)
        self.collected_scores[u] = scores
        state["predicted"] = top_k_predictions(scores, self._k)


@dataclass
class BspBaselineResult:
    """Predictions of the BSP BASELINE plus the engine's accounting."""

    predictions: dict[int, list[int]]
    scores: dict[int, dict[int, float]]
    k: int
    wall_clock_seconds: float
    simulated_seconds: float
    bsp_result: BspRunResult = field(repr=False, default=None)  # type: ignore[assignment]

    def predicted_edges(self) -> set[tuple[int, int]]:
        """All predicted edges as ``(source, predicted target)`` pairs."""
        return {
            (u, z) for u, targets in self.predictions.items() for z in targets
        }


class BspBaselinePredictor:
    """Naive 2-hop Jaccard link prediction on the simulated BSP engine.

    Parameters
    ----------
    k:
        Number of predictions returned per vertex.
    similarity:
        Set similarity scoring each 2-hop candidate against the source
        neighborhood (Jaccard by default, as in the paper's BASELINE).
    """

    def __init__(self, k: int = 5, *, similarity: SimilarityFn = jaccard) -> None:
        self._k = k
        self._similarity = similarity

    @property
    def k(self) -> int:
        return self._k

    def predict(
        self,
        graph: DiGraph,
        *,
        cluster: ClusterConfig | None = None,
        partitioner: VertexPartitioner | None = None,
        enforce_memory: bool = True,
    ) -> BspBaselineResult:
        """Run the four-superstep BASELINE program and collect predictions.

        Raises :class:`~repro.errors.ResourceExhaustedError` when the
        forwarded 2-hop neighborhoods exceed the cluster's (scaled) memory,
        reproducing the paper's BASELINE failures in message-passing form.
        """
        if cluster is None:
            cluster = cluster_of(TYPE_II, 1)
        engine = BspEngine(
            graph=graph,
            cluster=cluster,
            partitioner=partitioner,
            enforce_memory=enforce_memory,
        )
        program = BspBaselineProgram(self._k, self._similarity)
        start = time.perf_counter()
        run = engine.run(program)
        wall = time.perf_counter() - start
        predictions: dict[int, list[int]] = {}
        scores: dict[int, dict[int, float]] = {}
        for u in graph.vertices():
            predictions[u] = list(run.state_of(u).get("predicted", []))
            scores[u] = dict(program.collected_scores.get(u, {}))
        return BspBaselineResult(
            predictions=predictions,
            scores=scores,
            k=self._k,
            wall_clock_seconds=wall,
            simulated_seconds=run.simulated_seconds,
            bsp_result=run,
        )
