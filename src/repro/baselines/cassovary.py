"""Cassovary-like single-machine in-memory graph.

Section 5.9 of the paper compares SNAPLE against Cassovary, Twitter's
multithreaded in-memory graph library, running a random-walk approximation of
personalized PageRank.  This module provides the substrate: a compact
adjacency-array graph optimized for random walks, loaded entirely in memory,
mirroring Cassovary's ``ArrayBasedDirectedGraph``.

The walk-based predictor built on top of it lives in
:mod:`repro.baselines.random_walk_ppr`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError, VertexNotFoundError
from repro.graph.digraph import DiGraph

__all__ = ["InMemoryGraph", "WalkStats"]


@dataclass(frozen=True)
class WalkStats:
    """Statistics of a batch of random walks (used by tests and reports)."""

    walks: int
    steps_taken: int
    dead_ends: int

    @property
    def mean_length(self) -> float:
        if self.walks == 0:
            return 0.0
        return self.steps_taken / self.walks


class InMemoryGraph:
    """Flat-array adjacency representation optimized for random walks.

    The neighbor ids of all vertices are packed into a single integer array
    indexed through an offsets array, which is exactly how Cassovary stores
    graphs to traverse billions of edges from RAM.
    """

    __slots__ = ("_offsets", "_neighbors", "_num_vertices")

    def __init__(self, graph: DiGraph) -> None:
        self._num_vertices = graph.num_vertices
        degrees = graph.out_degrees()
        self._offsets = np.zeros(self._num_vertices + 1, dtype=np.int64)
        np.cumsum(degrees, out=self._offsets[1:])
        self._neighbors = np.empty(int(degrees.sum()), dtype=np.int64)
        for u in graph.vertices():
            start, end = self._offsets[u], self._offsets[u + 1]
            self._neighbors[start:end] = graph.out_neighbors(u)

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return int(self._neighbors.size)

    def memory_bytes(self) -> int:
        """Bytes used by the packed adjacency arrays."""
        return int(self._offsets.nbytes + self._neighbors.nbytes)

    def out_degree(self, u: int) -> int:
        """Out-degree of ``u``."""
        self._check(u)
        return int(self._offsets[u + 1] - self._offsets[u])

    def out_neighbors(self, u: int) -> np.ndarray:
        """Out-neighbors of ``u`` as an array view."""
        self._check(u)
        return self._neighbors[self._offsets[u]:self._offsets[u + 1]]

    def random_neighbor(self, u: int, rng: random.Random) -> int | None:
        """Uniformly random out-neighbor of ``u`` (``None`` for sinks)."""
        degree = self.out_degree(u)
        if degree == 0:
            return None
        index = rng.randrange(degree)
        return int(self._neighbors[self._offsets[u] + index])

    def random_walk(self, start: int, depth: int, rng: random.Random) -> list[int]:
        """One random walk of at most ``depth`` steps from ``start``.

        Returns the list of visited vertices excluding ``start``; the walk
        stops early when it reaches a sink vertex.
        """
        if depth < 0:
            raise GraphError("depth must be non-negative")
        visited: list[int] = []
        current = start
        for _ in range(depth):
            nxt = self.random_neighbor(current, rng)
            if nxt is None:
                break
            visited.append(nxt)
            current = nxt
        return visited

    def run_walks(self, start: int, num_walks: int, depth: int,
                  rng: random.Random) -> tuple[dict[int, int], WalkStats]:
        """Run ``num_walks`` walks from ``start`` and count vertex visits."""
        visits: dict[int, int] = {}
        steps = 0
        dead_ends = 0
        for _ in range(num_walks):
            walk = self.random_walk(start, depth, rng)
            steps += len(walk)
            if len(walk) < depth:
                dead_ends += 1
            for vertex in walk:
                visits[vertex] = visits.get(vertex, 0) + 1
        return visits, WalkStats(walks=num_walks, steps_taken=steps,
                                 dead_ends=dead_ends)

    def _check(self, u: int) -> None:
        if not 0 <= u < self._num_vertices:
            raise VertexNotFoundError(u, self._num_vertices)
