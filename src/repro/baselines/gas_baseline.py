"""BASELINE: a direct implementation of 2-hop link prediction on GAS.

Section 5.3 of the paper compares SNAPLE against a "direct" GAS
implementation of Algorithm 1 restricted to 2-hop neighborhoods: every vertex
must know the neighborhoods of its neighbors' neighbors to compute Jaccard
similarities with them, which in the GAS model forces each vertex to
propagate its full neighborhood list to its neighbors and then forward those
lists one hop further.  The redundant data transfer and storage makes this
approach collapse on large graphs ("fails due to resource exhaustion").

The implementation below expresses that naive strategy as two GAS steps:

1. *NeighborhoodPropagationStep* — every vertex gathers, from each neighbor
   ``v``, the pair ``(v, Γ(v))`` and stores the full map
   ``neighborhood = {v: Γ(v)}`` in its vertex data.  This is the expensive
   step: the gathered payload is an entire adjacency list and the stored
   vertex data grows with ``Σ_v |Γ(v)|``.
2. *DirectScoringStep* — every vertex gathers, from each neighbor ``v``, the
   forwarded map of ``v``'s neighbors' neighborhoods, computes
   ``jaccard(Γ(u), Γ(z))`` for every 2-hop candidate ``z`` and keeps the
   top-``k``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from repro.gas.cluster import ClusterConfig, TYPE_II, cluster_of
from repro.gas.engine import GasEngine, GasRunResult
from repro.gas.vertex_program import EdgeDirection, VertexProgram
from repro.graph.digraph import DiGraph
from repro.snaple.program import top_k_predictions
from repro.snaple.similarity import SimilarityFn, jaccard

__all__ = ["BaselinePredictionResult", "GasBaselinePredictor"]


class NeighborhoodPropagationStep(VertexProgram):
    """Step 1 of BASELINE: replicate each neighbor's full adjacency list."""

    name = "propagate-neighborhoods"
    gather_direction = EdgeDirection.OUT

    def __init__(self, graph: DiGraph) -> None:
        self._graph = graph

    def gather(self, u: int, v: int, u_data: dict[str, Any],
               v_data: dict[str, Any]) -> Any:
        return {v: self._graph.out_neighbors(v).tolist()}

    def sum(self, left: Any, right: Any) -> Any:
        merged = dict(left)
        merged.update(right)
        return merged

    def apply(self, u: int, u_data: dict[str, Any], gathered: Any) -> None:
        u_data["neighborhood"] = gathered if gathered is not None else {}
        u_data["gamma"] = self._graph.out_neighbors(u).tolist()

    def compute_cost(self, value: Any) -> int:
        if not value:
            return 1
        return 1 + sum(len(neighbors) for neighbors in value.values())


class DirectScoringStep(VertexProgram):
    """Step 2 of BASELINE: score every 2-hop candidate directly."""

    name = "direct-2hop-scoring"
    gather_direction = EdgeDirection.OUT

    def __init__(self, k: int, similarity: SimilarityFn) -> None:
        self._k = k
        self._similarity = similarity
        #: Candidate scores per vertex, kept outside the vertex data (they
        #: are an apply-phase temporary, as in SNAPLE's step 3).
        self.collected_scores: dict[int, dict[int, float]] = {}

    def gather(self, u: int, v: int, u_data: dict[str, Any],
               v_data: dict[str, Any]) -> Any:
        # v forwards the neighborhoods of *its* neighbors so that u can score
        # candidates two hops away; the whole map crosses the wire.
        return dict(v_data.get("neighborhood", {}))

    def sum(self, left: Any, right: Any) -> Any:
        merged = dict(left)
        merged.update(right)
        return merged

    def apply(self, u: int, u_data: dict[str, Any], gathered: Any) -> None:
        gamma_u = u_data.get("gamma", [])
        direct = set(gamma_u)
        scores: dict[int, float] = {}
        if gathered:
            for z, gamma_z in gathered.items():
                if z == u or z in direct:
                    continue
                scores[z] = self._similarity(gamma_u, gamma_z)
        self.collected_scores[u] = scores
        u_data["predicted"] = top_k_predictions(scores, self._k)

    def compute_cost(self, value: Any) -> int:
        if not value:
            return 1
        return 1 + sum(len(neighbors) for neighbors in value.values())


@dataclass
class BaselinePredictionResult:
    """Predictions plus accounting for the naive BASELINE run."""

    predictions: dict[int, list[int]]
    scores: dict[int, dict[int, float]]
    wall_clock_seconds: float
    simulated_seconds: float
    gas_result: GasRunResult

    def predicted_edges(self) -> set[tuple[int, int]]:
        """All predicted edges as ``(source, predicted target)`` pairs."""
        return {
            (u, z) for u, targets in self.predictions.items() for z in targets
        }


class GasBaselinePredictor:
    """Naive 2-hop Jaccard link prediction expressed directly on GAS.

    Parameters
    ----------
    k:
        Number of predictions per vertex (paper default 5).
    similarity:
        Raw similarity used to score candidates (Jaccard by default).
    """

    def __init__(self, k: int = 5, *, similarity: SimilarityFn = jaccard) -> None:
        self._k = k
        self._similarity = similarity

    @property
    def k(self) -> int:
        return self._k

    def predict_gas(
        self,
        graph: DiGraph,
        *,
        cluster: ClusterConfig | None = None,
        enforce_memory: bool = True,
        vertices: list[int] | None = None,
        seed: int = 0,
    ) -> BaselinePredictionResult:
        """Run BASELINE on the simulated GAS engine.

        On large graphs (or small simulated memory capacities) this raises
        :class:`~repro.errors.ResourceExhaustedError`, reproducing the
        paper's observation that the naive approach cannot handle orkut or
        twitter-rv.
        """
        if cluster is None:
            cluster = cluster_of(TYPE_II, 1)
        engine = GasEngine(
            graph=graph,
            cluster=cluster,
            enforce_memory=enforce_memory,
            seed=seed,
        )
        scoring_step = DirectScoringStep(self._k, self._similarity)
        steps: list[VertexProgram] = [
            NeighborhoodPropagationStep(graph),
            scoring_step,
        ]
        start = time.perf_counter()
        run = engine.run(steps, vertices=vertices)
        wall = time.perf_counter() - start
        predictions: dict[int, list[int]] = {}
        scores: dict[int, dict[int, float]] = {}
        for u in (vertices if vertices is not None else graph.vertices()):
            data = run.data_of(u)
            predictions[u] = list(data.get("predicted", []))
            scores[u] = dict(scoring_step.collected_scores.get(u, {}))
        return BaselinePredictionResult(
            predictions=predictions,
            scores=scores,
            wall_clock_seconds=wall,
            simulated_seconds=run.simulated_seconds,
            gas_result=run,
        )
