"""Random-walk personalized-PageRank link prediction (the Cassovary baseline).

Section 5.9 of the paper evaluates a single-machine competitor: for every
vertex, run ``w`` random walks of depth ``d`` on an in-memory graph and
recommend the ``k`` most-visited vertices that are not already neighbors.
Increasing ``w`` improves recall at a steep cost in time, while increasing
``d`` beyond 3 brings little benefit — the trade-off reproduced by
Figure 11 and Table 6.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.baselines.cassovary import InMemoryGraph
from repro.graph.digraph import DiGraph

__all__ = ["RandomWalkConfig", "RandomWalkPredictionResult", "RandomWalkPPRPredictor"]


@dataclass(frozen=True)
class RandomWalkConfig:
    """Knobs of the random-walk PPR predictor (``w``, ``d``, ``k``)."""

    num_walks: int = 100
    depth: int = 3
    k: int = 5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_walks < 1:
            raise ConfigurationError("num_walks must be >= 1")
        if self.depth < 1:
            raise ConfigurationError("depth must be >= 1")
        if self.k < 1:
            raise ConfigurationError("k must be >= 1")

    def describe(self) -> str:
        """One-line description used by the Figure 11 report."""
        return f"PPR w={self.num_walks} d={self.depth} k={self.k}"


@dataclass
class RandomWalkPredictionResult:
    """Predictions and accounting for a random-walk PPR run."""

    predictions: dict[int, list[int]]
    visit_counts: dict[int, dict[int, int]]
    config: RandomWalkConfig
    wall_clock_seconds: float
    total_walk_steps: int

    def predicted_edges(self) -> set[tuple[int, int]]:
        """All predicted edges as ``(source, predicted target)`` pairs."""
        return {
            (u, z) for u, targets in self.predictions.items() for z in targets
        }


class RandomWalkPPRPredictor:
    """Single-machine link prediction via random-walk PPR approximation."""

    def __init__(self, config: RandomWalkConfig | None = None) -> None:
        self._config = config if config is not None else RandomWalkConfig()

    @property
    def config(self) -> RandomWalkConfig:
        return self._config

    def predict(self, graph: DiGraph, *,
                vertices: list[int] | None = None) -> RandomWalkPredictionResult:
        """Predict ``k`` links per vertex by counting random-walk visits."""
        config = self._config
        memory_graph = InMemoryGraph(graph)
        rng = random.Random(config.seed)
        target_vertices = list(graph.vertices()) if vertices is None else list(vertices)
        predictions: dict[int, list[int]] = {}
        visit_counts: dict[int, dict[int, int]] = {}
        total_steps = 0
        start = time.perf_counter()
        for u in target_vertices:
            visits, stats = memory_graph.run_walks(
                u, config.num_walks, config.depth, rng
            )
            total_steps += stats.steps_taken
            direct = set(memory_graph.out_neighbors(u).tolist())
            candidate_visits = {
                z: count for z, count in visits.items()
                if z != u and z not in direct
            }
            ranked = sorted(candidate_visits.items(),
                            key=lambda item: (-item[1], item[0]))
            predictions[u] = [z for z, _ in ranked[:config.k]]
            visit_counts[u] = candidate_visits
        wall = time.perf_counter() - start
        return RandomWalkPredictionResult(
            predictions=predictions,
            visit_counts=visit_counts,
            config=config,
            wall_clock_seconds=wall,
            total_walk_steps=total_steps,
        )
