"""Memory accounting and out-of-memory simulation.

The paper reports that the naive BASELINE implementation "fails due to
resource exhaustion" on orkut and twitter-rv because it replicates full
neighborhood lists across 2-hop paths.  The simulated engine reproduces that
behaviour: each machine has a (scaled) memory capacity and the engine tracks
the byte footprint of all vertex data hosted on it, raising
:class:`~repro.errors.ResourceExhaustedError` when the footprint exceeds the
capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ResourceExhaustedError
from repro.gas.cluster import ClusterConfig
from repro.gas.vertex_program import payload_size_bytes

__all__ = ["MemoryTracker"]


@dataclass
class MemoryTracker:
    """Tracks per-machine vertex-data footprints against a capacity."""

    cluster: ClusterConfig
    enforce: bool = True
    _per_machine_bytes: list[int] = field(default_factory=list)
    _peak_bytes: list[int] = field(default_factory=list)
    _state_plane_peak_bytes: int = 0

    def __post_init__(self) -> None:
        machines = self.cluster.num_machines
        self._per_machine_bytes = [0] * machines
        self._peak_bytes = [0] * machines
        self._state_plane_peak_bytes = 0

    @property
    def capacity_bytes(self) -> float:
        """Per-machine capacity after the cluster's memory scaling."""
        return self.cluster.per_machine_memory_bytes

    def charge(self, machine: int, num_bytes: int) -> None:
        """Add ``num_bytes`` of vertex data to ``machine``.

        Raises :class:`ResourceExhaustedError` when enforcement is on and the
        machine's footprint exceeds its capacity.
        """
        self._per_machine_bytes[machine] += num_bytes
        current = self._per_machine_bytes[machine]
        if current > self._peak_bytes[machine]:
            self._peak_bytes[machine] = current
        if self.enforce and current > self.capacity_bytes:
            raise ResourceExhaustedError(
                f"machine {machine} exhausted its simulated memory: "
                f"{current / 1024**2:.2f} MiB requested, capacity "
                f"{self.capacity_bytes / 1024**2:.2f} MiB "
                "(the naive neighborhood-propagation approach hits this on "
                "large graphs, as reported in the paper)",
                machine=machine,
                requested_bytes=current,
                capacity_bytes=int(self.capacity_bytes),
            )

    def release(self, machine: int, num_bytes: int) -> None:
        """Remove ``num_bytes`` of vertex data from ``machine``."""
        self._per_machine_bytes[machine] = max(
            0, self._per_machine_bytes[machine] - num_bytes
        )

    def charge_value(self, machine: int, value: object) -> int:
        """Charge the estimated size of ``value``; returns the bytes charged."""
        size = payload_size_bytes(value)
        self.charge(machine, size)
        return size

    def usage_bytes(self, machine: int) -> int:
        """Current footprint of ``machine``."""
        return self._per_machine_bytes[machine]

    def peak_bytes(self, machine: int) -> int:
        """Peak footprint observed on ``machine``."""
        return self._peak_bytes[machine]

    def peak_per_machine(self) -> list[int]:
        """Peak footprint of every machine."""
        return list(self._peak_bytes)

    def total_peak_bytes(self) -> int:
        """Sum of per-machine peaks (upper bound on the cluster footprint)."""
        return sum(self._peak_bytes)

    # -- columnar state plane ------------------------------------------
    def observe_state_plane(self, num_bytes: int) -> None:
        """Record the columnar state plane's current live payload size.

        The state plane is host memory of the real process (one column per
        field), not simulated per-machine vertex data, so it is tracked as
        a separate peak rather than charged against machine capacities.
        """
        if num_bytes > self._state_plane_peak_bytes:
            self._state_plane_peak_bytes = num_bytes

    @property
    def state_plane_peak_bytes(self) -> int:
        """Peak live payload bytes of the columnar state plane (0 = dict path)."""
        return self._state_plane_peak_bytes
