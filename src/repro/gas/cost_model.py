"""Analytical cost model converting GAS accounting into simulated times.

The paper's timing results come from a physical 32-node cluster.  This
reproduction executes the same vertex programs locally and *simulates* the
cluster time of every super-step from first principles:

``step_time = max_over_machines(compute_time) + max_over_machines(network_time)
              + barrier_latency``

* compute time: work units performed by a machine divided by its aggregate
  core throughput (cores × ops/s) — this yields the paper's near-linear
  scaling with edges and with the number of cores;
* network time: bytes a machine must send/receive (remote gathers plus
  replica synchronization after apply) divided by its NIC bandwidth — this is
  the term that penalizes the naive BASELINE which ships whole neighborhoods;
* barrier latency: a fixed per-step cost modelling the synchronous engine's
  barrier, which prevents perfect scaling for tiny graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gas.cluster import ClusterConfig
from repro.gas.metrics import RunMetrics, StepMetrics

__all__ = ["CostBreakdown", "CostModel"]


@dataclass(frozen=True)
class CostBreakdown:
    """Simulated time of one super-step split by resource."""

    step_name: str
    compute_seconds: float
    network_seconds: float
    barrier_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.network_seconds + self.barrier_seconds


class CostModel:
    """Turns :class:`StepMetrics` into simulated execution times."""

    def __init__(self, cluster: ClusterConfig) -> None:
        self._cluster = cluster

    @property
    def cluster(self) -> ClusterConfig:
        return self._cluster

    def step_cost(self, step: StepMetrics) -> CostBreakdown:
        """Simulated time of a single super-step."""
        machine = self._cluster.machine
        per_machine_throughput = machine.cores * machine.core_ops_per_second
        compute_seconds = 0.0
        if step.compute_units_per_machine:
            compute_seconds = max(step.compute_units_per_machine) / per_machine_throughput
        network_seconds = 0.0
        if self._cluster.is_distributed:
            per_machine_bytes = [
                gather + sync
                for gather, sync in zip(step.network_bytes_per_machine,
                                        step.sync_bytes_per_machine)
            ]
            if per_machine_bytes:
                network_seconds = max(per_machine_bytes) / machine.network_bytes_per_second
        return CostBreakdown(
            step_name=step.name,
            compute_seconds=compute_seconds,
            network_seconds=network_seconds,
            barrier_seconds=machine.barrier_latency_seconds,
        )

    def run_cost(self, metrics: RunMetrics) -> float:
        """Total simulated seconds for a full program run."""
        return sum(self.step_cost(step).total_seconds for step in metrics.steps)

    def breakdown(self, metrics: RunMetrics) -> list[CostBreakdown]:
        """Per-step cost breakdown for a full run."""
        return [self.step_cost(step) for step in metrics.steps]

    def speedup_against(self, metrics: RunMetrics, other: "CostModel",
                        other_metrics: RunMetrics) -> float:
        """Speedup of this cluster/run versus another cluster/run."""
        mine = self.run_cost(metrics)
        theirs = other.run_cost(other_metrics)
        if mine <= 0:
            return float("inf")
        return theirs / mine
