"""Vertex-cut graph partitioning (re-export shim).

The implementation moved to :mod:`repro.runtime.partition`, the single home
for both placement flavours (PowerGraph's vertex-cut used by the GAS engine
and Pregel's edge-cut used by the BSP engine), so the strategy interface,
assignment validation and balance metrics are no longer duplicated.  This
module remains so historical imports keep working.
"""

from __future__ import annotations

from repro.runtime.partition import (
    GraphPartition,
    GreedyVertexCut,
    HdrfVertexCut,
    Partitioner,
    RandomVertexCut,
    _SingleMachine,
    partition_graph,
)

__all__ = [
    "GraphPartition",
    "Partitioner",
    "RandomVertexCut",
    "GreedyVertexCut",
    "HdrfVertexCut",
    "partition_graph",
]
