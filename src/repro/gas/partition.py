"""Graph partitioning across simulated machines.

GraphLab/PowerGraph (the engine the paper builds on) distributes a graph with
a *vertex-cut*: edges are assigned to machines and vertices that have edges on
several machines are replicated, with one replica designated the master.  The
replication factor — the average number of machines that hold a copy of a
vertex — determines the synchronization traffic of the apply phase, which is
the dominant network cost of the naive BASELINE implementation.

Two edge-placement strategies are provided:

* :class:`RandomVertexCut` — hash each edge to a machine (PowerGraph's
  default random placement);
* :class:`GreedyVertexCut` — the "oblivious" greedy heuristic that places an
  edge on a machine already holding one of its endpoints, reducing the
  replication factor;
* :class:`HdrfVertexCut` — the High-Degree-Replicated-First heuristic, which
  prefers replicating the endpoint with the higher (partial) degree; on
  power-law graphs this concentrates replication on the few hubs and lowers
  the replication factor further, which the partitioning ablation measures.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import PartitionError
from repro.graph.digraph import DiGraph

__all__ = [
    "GraphPartition",
    "Partitioner",
    "RandomVertexCut",
    "GreedyVertexCut",
    "HdrfVertexCut",
    "partition_graph",
]


@dataclass
class GraphPartition:
    """Placement of a graph's edges and vertex replicas on a cluster.

    Attributes
    ----------
    num_machines:
        Number of machines in the simulated cluster.
    edge_machine:
        Array with one entry per edge giving the machine that owns it.
    vertex_master:
        Array with one entry per vertex giving its master machine.
    vertex_replicas:
        For each vertex, the set of machines holding a replica (always
        includes the master).
    """

    num_machines: int
    edge_machine: np.ndarray
    vertex_master: np.ndarray
    vertex_replicas: list[set[int]]

    @property
    def num_vertices(self) -> int:
        return int(self.vertex_master.size)

    @property
    def num_edges(self) -> int:
        return int(self.edge_machine.size)

    def replication_factor(self) -> float:
        """Average number of replicas per vertex (PowerGraph's key metric)."""
        if not self.vertex_replicas:
            return 0.0
        replicated = [len(reps) for reps in self.vertex_replicas if reps]
        if not replicated:
            return 0.0
        return sum(replicated) / len(replicated)

    def edges_per_machine(self) -> np.ndarray:
        """Number of edges placed on each machine."""
        return np.bincount(self.edge_machine, minlength=self.num_machines)

    def load_imbalance(self) -> float:
        """Max/mean ratio of per-machine edge counts (1.0 is perfectly even)."""
        counts = self.edges_per_machine()
        if counts.size == 0 or counts.mean() == 0:
            return 1.0
        return float(counts.max() / counts.mean())

    def machines_of(self, vertex: int) -> set[int]:
        """Machines holding a replica of ``vertex``."""
        return self.vertex_replicas[vertex]

    def is_local_edge(self, source: int, target: int, edge_index: int) -> bool:
        """True when both endpoint masters live on the edge's machine."""
        machine = self.edge_machine[edge_index]
        return bool(self.vertex_master[source] == machine
                    and self.vertex_master[target] == machine)


class Partitioner(ABC):
    """Strategy interface for assigning edges to machines."""

    @abstractmethod
    def assign_edges(self, graph: DiGraph, num_machines: int,
                     *, seed: int) -> np.ndarray:
        """Return one machine id per edge."""


class RandomVertexCut(Partitioner):
    """Uniform random edge placement (PowerGraph's default)."""

    def assign_edges(self, graph: DiGraph, num_machines: int,
                     *, seed: int) -> np.ndarray:
        rng = np.random.default_rng(seed)
        return rng.integers(0, num_machines, size=graph.num_edges, dtype=np.int64)


class GreedyVertexCut(Partitioner):
    """Oblivious greedy placement minimizing new replicas.

    For each edge, prefer a machine that already hosts both endpoints, then
    one hosting either endpoint (the least loaded among them), then the least
    loaded machine overall.  A balance guard keeps any machine from holding
    more than ``balance_slack`` times its fair share of edges, which is what
    PowerGraph's oblivious heuristic does to avoid collapsing a connected
    graph onto one machine.
    """

    def __init__(self, balance_slack: float = 1.25) -> None:
        if balance_slack < 1.0:
            raise PartitionError("balance_slack must be >= 1.0")
        self._balance_slack = balance_slack

    def assign_edges(self, graph: DiGraph, num_machines: int,
                     *, seed: int) -> np.ndarray:
        rng = random.Random(seed)
        placed: list[set[int]] = [set() for _ in range(graph.num_vertices)]
        load = [0] * num_machines
        assignment = np.zeros(graph.num_edges, dtype=np.int64)
        src, dst = graph.edge_arrays()
        fair_share = graph.num_edges / num_machines if num_machines else 0.0
        load_cap = self._balance_slack * fair_share + 1.0
        for index in range(graph.num_edges):
            u = int(src[index])
            v = int(dst[index])
            both = placed[u] & placed[v]
            either = placed[u] | placed[v]
            if both:
                candidates = both
            elif either:
                candidates = either
            else:
                candidates = set(range(num_machines))
            # Balance guard: drop candidates that already exceed their share.
            balanced = {m for m in candidates if load[m] < load_cap}
            if not balanced:
                balanced = set(range(num_machines))
            min_load = min(load[m] for m in balanced)
            best = [m for m in balanced if load[m] == min_load]
            machine = rng.choice(best)
            assignment[index] = machine
            placed[u].add(machine)
            placed[v].add(machine)
            load[machine] += 1
        return assignment


class HdrfVertexCut(Partitioner):
    """High-Degree-Replicated-First streaming vertex-cut.

    For every edge the candidate machines are scored with two terms:

    * a *replication* term rewarding machines that already hold one of the
      endpoints, weighted so that the endpoint with the **higher** partial
      degree is the one that gets replicated (hubs are replicated, low-degree
      vertices stay on few machines);
    * a *balance* term (weighted by ``balance_weight``) rewarding the least
      loaded machines.

    On power-law graphs this yields lower replication factors than both the
    random and the oblivious-greedy placements while keeping the edge load
    balanced (the default ``balance_weight`` of 2.0 trades a little
    replication for near-perfect balance); the partitioning ablation
    quantifies the effect on SNAPLE's synchronization traffic.
    """

    def __init__(self, balance_weight: float = 2.0) -> None:
        if balance_weight < 0.0:
            raise PartitionError("balance_weight must be non-negative")
        self._balance_weight = balance_weight

    def assign_edges(self, graph: DiGraph, num_machines: int,
                     *, seed: int) -> np.ndarray:
        rng = random.Random(seed)
        placed: list[set[int]] = [set() for _ in range(graph.num_vertices)]
        partial_degree = [0] * graph.num_vertices
        load = [0] * num_machines
        assignment = np.zeros(graph.num_edges, dtype=np.int64)
        src, dst = graph.edge_arrays()
        epsilon = 1.0
        for index in range(graph.num_edges):
            u = int(src[index])
            v = int(dst[index])
            partial_degree[u] += 1
            partial_degree[v] += 1
            degree_u = partial_degree[u]
            degree_v = partial_degree[v]
            # Normalized degrees decide which endpoint the replication term
            # prefers to replicate (the higher-degree one).
            theta_u = degree_u / (degree_u + degree_v)
            theta_v = 1.0 - theta_u
            max_load = max(load)
            min_load = min(load)
            best_score = -math.inf
            best_machines: list[int] = []
            for machine in range(num_machines):
                replication = 0.0
                if machine in placed[u]:
                    replication += 1.0 + (1.0 - theta_u)
                if machine in placed[v]:
                    replication += 1.0 + (1.0 - theta_v)
                balance = (
                    self._balance_weight
                    * (max_load - load[machine])
                    / (epsilon + max_load - min_load)
                )
                score = replication + balance
                if score > best_score + 1e-12:
                    best_score = score
                    best_machines = [machine]
                elif abs(score - best_score) <= 1e-12:
                    best_machines.append(machine)
            machine = rng.choice(best_machines)
            assignment[index] = machine
            placed[u].add(machine)
            placed[v].add(machine)
            load[machine] += 1
        return assignment


def partition_graph(
    graph: DiGraph,
    num_machines: int,
    *,
    partitioner: Partitioner | None = None,
    seed: int = 0,
) -> GraphPartition:
    """Partition ``graph`` onto ``num_machines`` simulated machines.

    Returns a :class:`GraphPartition` with edge placements, vertex masters
    (the machine holding most of a vertex's edges, ties broken by hash) and
    the replica sets implied by the vertex-cut.
    """
    if num_machines <= 0:
        raise PartitionError("num_machines must be positive")
    if partitioner is None:
        partitioner = RandomVertexCut() if num_machines > 1 else _SingleMachine()
    edge_machine = partitioner.assign_edges(graph, num_machines, seed=seed)
    if edge_machine.shape != (graph.num_edges,):
        raise PartitionError(
            "partitioner returned an assignment of the wrong shape"
        )
    if graph.num_edges and (edge_machine.min() < 0 or edge_machine.max() >= num_machines):
        raise PartitionError("partitioner assigned an edge to a non-existent machine")

    replicas: list[set[int]] = [set() for _ in range(graph.num_vertices)]
    per_vertex_counts: list[dict[int, int]] = [dict() for _ in range(graph.num_vertices)]
    src, dst = graph.edge_arrays()
    for index in range(graph.num_edges):
        machine = int(edge_machine[index])
        for vertex in (int(src[index]), int(dst[index])):
            replicas[vertex].add(machine)
            counts = per_vertex_counts[vertex]
            counts[machine] = counts.get(machine, 0) + 1

    vertex_master = np.zeros(graph.num_vertices, dtype=np.int64)
    for vertex in range(graph.num_vertices):
        counts = per_vertex_counts[vertex]
        if counts:
            # Master = machine with the most incident edges (stable tie-break).
            vertex_master[vertex] = min(
                counts, key=lambda m: (-counts[m], m)
            )
            replicas[vertex].add(int(vertex_master[vertex]))
        else:
            vertex_master[vertex] = vertex % num_machines
            replicas[vertex].add(int(vertex_master[vertex]))
    return GraphPartition(
        num_machines=num_machines,
        edge_machine=edge_machine,
        vertex_master=vertex_master,
        vertex_replicas=replicas,
    )


class _SingleMachine(Partitioner):
    """Trivial partitioner placing everything on machine 0."""

    def assign_edges(self, graph: DiGraph, num_machines: int,
                     *, seed: int) -> np.ndarray:
        return np.zeros(graph.num_edges, dtype=np.int64)
