"""Cluster hardware model.

The paper runs on two machine classes (Section 5.1):

* **type-I** — 2× Intel Xeon L5420 (2.5 GHz), 8 cores, 32 GB RAM, 1 GbE,
  deployed up to 32 nodes (256 cores);
* **type-II** — 2× Intel Xeon E5-2660v2 (2.2 GHz), 20 cores, 128 GB RAM,
  10 GbE, deployed up to 8 nodes (160 cores).

The simulated cluster reproduces these shapes: each machine has a core count,
a per-core throughput (scoring operations per second), a memory capacity and
a network bandwidth.  The analytical cost model in
:mod:`repro.gas.cost_model` turns the work and traffic accounted during a GAS
run into simulated execution times, so the scaling experiments of the paper
(Figure 5, Table 5 speedups) can be regenerated without a physical cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = [
    "MachineSpec",
    "ClusterConfig",
    "TYPE_I",
    "TYPE_II",
    "SINGLE_MACHINE",
    "cluster_of",
]


@dataclass(frozen=True)
class MachineSpec:
    """Hardware description of one cluster node."""

    name: str
    cores: int
    core_ops_per_second: float
    memory_bytes: int
    network_bytes_per_second: float
    #: Fixed per-super-step synchronization overhead (seconds); models the
    #: barrier + engine scheduling cost of GraphLab's synchronous engine.
    barrier_latency_seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigurationError("a machine needs at least one core")
        if self.core_ops_per_second <= 0:
            raise ConfigurationError("core_ops_per_second must be positive")
        if self.memory_bytes <= 0:
            raise ConfigurationError("memory_bytes must be positive")
        if self.network_bytes_per_second <= 0:
            raise ConfigurationError("network_bytes_per_second must be positive")


#: Paper's type-I nodes: 8 slower cores, 32 GB, 1 GbE.
#:
#: The per-core throughput and NIC bandwidth are scaled down (by roughly the
#: same factor as the synthetic datasets are scaled down from the paper's
#: graphs) so that compute and network — not the fixed barrier latency —
#: dominate the simulated step times, exactly as they do at the paper's
#: scale.  The *ratios* between type-I and type-II (core speed, core count,
#: 1 GbE vs 10 GbE, 32 GB vs 128 GB) are preserved.
TYPE_I = MachineSpec(
    name="type-I",
    cores=8,
    core_ops_per_second=20_000.0,
    memory_bytes=32 * 1024**3,
    network_bytes_per_second=1.25e6,  # scaled 1 Gb/s
    barrier_latency_seconds=0.01,
)

#: Paper's type-II nodes: 20 faster cores, 128 GB, 10 GbE (same scaling).
TYPE_II = MachineSpec(
    name="type-II",
    cores=20,
    core_ops_per_second=24_000.0,
    memory_bytes=128 * 1024**3,
    network_bytes_per_second=1.25e7,  # scaled 10 Gb/s
    barrier_latency_seconds=0.01,
)

#: A single type-II machine, used for the Cassovary comparison (Table 6).
SINGLE_MACHINE = TYPE_II


@dataclass(frozen=True)
class ClusterConfig:
    """A homogeneous cluster of ``num_machines`` identical machines."""

    machine: MachineSpec
    num_machines: int
    #: Memory scale factor applied to the per-machine capacity.  The synthetic
    #: datasets are orders of magnitude smaller than the paper's graphs, so
    #: the default scales machine memory down proportionally; set to 1.0 to
    #: model the real capacities.
    memory_scale: float = 1.0e-3
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.num_machines <= 0:
            raise ConfigurationError("a cluster needs at least one machine")
        if self.memory_scale <= 0:
            raise ConfigurationError("memory_scale must be positive")
        if not self.name:
            object.__setattr__(
                self,
                "name",
                f"{self.num_machines}x{self.machine.name}",
            )

    @property
    def total_cores(self) -> int:
        """Total number of cores across the cluster."""
        return self.machine.cores * self.num_machines

    @property
    def per_machine_memory_bytes(self) -> float:
        """Scaled memory capacity of each machine."""
        return self.machine.memory_bytes * self.memory_scale

    @property
    def is_distributed(self) -> bool:
        """True when the cluster spans more than one machine."""
        return self.num_machines > 1

    def describe(self) -> str:
        """Human-readable one-line cluster description."""
        return (
            f"{self.num_machines} × {self.machine.name} "
            f"({self.total_cores} cores, "
            f"{self.per_machine_memory_bytes / 1024**2:.1f} MiB/machine simulated)"
        )


def cluster_of(machine: MachineSpec, num_machines: int, *,
               memory_scale: float = 1.0e-4) -> ClusterConfig:
    """Convenience constructor for a homogeneous cluster."""
    return ClusterConfig(machine=machine, num_machines=num_machines,
                         memory_scale=memory_scale)
