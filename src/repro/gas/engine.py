"""Synchronous GAS engine over a simulated cluster.

The engine executes a sequence of :class:`~repro.gas.vertex_program.VertexProgram`
super-steps on a graph that has been partitioned over a simulated cluster with
a vertex-cut (see :mod:`repro.gas.partition`).  For every step it performs the
real computation (so results are exact) while accounting the work, the
network traffic and the memory footprint that the equivalent GraphLab run
would incur:

* gathers execute on the machine that owns the edge (the mirror), and —
  exactly as in PowerGraph — each mirror pre-aggregates its local gathers
  with the program's ``sum`` and ships **one** partial result per (vertex,
  mirror) to the vertex's master, which is what the network is charged for;
* after the apply phase the new vertex data is synchronized to every replica
  of the vertex, charging ``(replicas - 1) × |Du|`` bytes (this replica-sync
  cost is what makes the naive neighborhood-propagating BASELINE collapse);
* every machine's vertex-data footprint is tracked against its (scaled)
  capacity, raising :class:`~repro.errors.ResourceExhaustedError` on overflow.

The numbers feed :class:`~repro.gas.cost_model.CostModel`, which converts
them into simulated cluster times used by the scalability experiments.
"""

from __future__ import annotations

import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.errors import EngineError
from repro.gas.cluster import ClusterConfig, TYPE_II, cluster_of
from repro.gas.cost_model import CostModel
from repro.gas.memory import MemoryTracker
from repro.gas.metrics import RunMetrics, StepMetrics
from repro.gas.partition import GraphPartition, Partitioner, partition_graph
from repro.gas.vertex_program import EdgeDirection, VertexProgram, payload_size_bytes
from repro.graph.digraph import DiGraph

__all__ = ["GasEngine", "GasRunResult"]


def _data_bytes(u_data: Mapping[str, Any]) -> int:
    """Accounting bytes of one vertex's data, dict or columnar row alike.

    :meth:`repro.runtime.state.VertexRow.nbytes` reproduces exactly what
    :func:`payload_size_bytes` charges for the equivalent dict, so the
    simulated-cluster numbers are identical on both state paths.
    """
    nbytes = getattr(u_data, "nbytes", None)
    if callable(nbytes):
        return nbytes()
    return payload_size_bytes(u_data)


@dataclass
class GasRunResult:
    """Outcome of running a GAS program: final vertex data plus metrics.

    ``vertex_data`` is a list of per-vertex mappings: plain dicts on the
    legacy dict-state path, :class:`~repro.runtime.state.VertexRow` column
    views when the program declared a state schema (the default for SNAPLE).
    """

    vertex_data: Sequence[Mapping[str, Any]]
    metrics: RunMetrics
    partition: GraphPartition
    cluster: ClusterConfig

    @property
    def simulated_seconds(self) -> float:
        return self.metrics.simulated_seconds

    @property
    def wall_clock_seconds(self) -> float:
        return self.metrics.wall_clock_seconds

    def data_of(self, vertex: int) -> Mapping[str, Any]:
        """Vertex data mapping of ``vertex`` after the run."""
        return self.vertex_data[vertex]


@dataclass
class GasEngine:
    """Synchronous gather-apply-scatter engine on a simulated cluster.

    Parameters
    ----------
    graph:
        The input graph.
    cluster:
        Simulated cluster; defaults to a single type-II machine.
    partitioner:
        Edge-placement strategy; defaults to a random vertex-cut for
        multi-machine clusters.
    enforce_memory:
        When ``True`` the engine raises
        :class:`~repro.errors.ResourceExhaustedError` if a machine's vertex
        data exceeds its (scaled) capacity, reproducing the paper's BASELINE
        failures.  Set to ``False`` to only record peak usage.
    seed:
        Seed for the partitioner.
    """

    graph: DiGraph
    cluster: ClusterConfig = field(default_factory=lambda: cluster_of(TYPE_II, 1))
    partitioner: Partitioner | None = None
    enforce_memory: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        self._partition = partition_graph(
            self.graph,
            self.cluster.num_machines,
            partitioner=self.partitioner,
            seed=self.seed,
        )
        # Machine owning each edge, aligned with the CSR neighbor order so a
        # vertex's i-th out-/in-neighbor can be matched to its edge placement.
        self._out_edge_machine = self._partition.edge_machine[
            self.graph.csr_out_order()
        ]
        self._in_edge_machine = self._partition.edge_machine[
            self.graph.csr_in_order()
        ]
        self._cost_model = CostModel(self.cluster)
        self._memory = MemoryTracker(self.cluster, enforce=self.enforce_memory)
        self._vertex_data: Sequence[Mapping[str, Any]] = [
            {} for _ in range(self.graph.num_vertices)
        ]
        self._store = None
        self._vertex_data_bytes = [0] * self.graph.num_vertices
        self._edge_data: dict[tuple[int, int], dict[str, Any]] = {}
        self._metrics = RunMetrics()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def partition(self) -> GraphPartition:
        """The vertex-cut placement used by this engine."""
        return self._partition

    @property
    def memory(self) -> MemoryTracker:
        """Memory tracker for the simulated cluster."""
        return self._memory

    @property
    def vertex_data(self) -> Sequence[Mapping[str, Any]]:
        """Mutable vertex data (``Du``) for every vertex."""
        return self._vertex_data

    @property
    def state_store(self):
        """The columnar :class:`~repro.runtime.state.StateStore`, or ``None``.

        Populated by :meth:`run` when every step declares the same state
        schema and ``SNAPLE_DICT_STATE`` is not set.
        """
        return self._store

    def _init_state(self, steps: list[VertexProgram]) -> None:
        """Switch to the columnar state plane when the programs declare it."""
        from repro.runtime.state import (
            StateStore,
            common_state_schema,
            dict_state_forced,
        )

        self._store = None
        schema = common_state_schema(steps)
        if schema is None or dict_state_forced():
            if not isinstance(self._vertex_data, list):
                self._vertex_data = [{} for _ in range(self.graph.num_vertices)]
            return
        self._store = StateStore(self.graph.num_vertices, schema)
        self._vertex_data = self._store.rows()

    def run(self, steps: list[VertexProgram],
            *, vertices: list[int] | None = None) -> GasRunResult:
        """Execute the given super-steps in order and return the result.

        ``vertices`` restricts the set of active vertices (all by default).
        """
        if not steps:
            raise EngineError("at least one GAS step is required")
        self._init_state(steps)
        start = time.perf_counter()
        active = list(self.graph.vertices()) if vertices is None else list(vertices)
        for step in steps:
            self._run_step(step, active)
        self._metrics.wall_clock_seconds = time.perf_counter() - start
        self._metrics.simulated_seconds = self._cost_model.run_cost(self._metrics)
        return GasRunResult(
            vertex_data=self._vertex_data,
            metrics=self._metrics,
            partition=self._partition,
            cluster=self.cluster,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _neighbors_for(self, vertex: int, direction: EdgeDirection) -> list[int]:
        if direction is EdgeDirection.OUT:
            return self.graph.out_neighbors(vertex).tolist()
        if direction is EdgeDirection.IN:
            return self.graph.in_neighbors(vertex).tolist()
        if direction is EdgeDirection.BOTH:
            both = set(self.graph.out_neighbors(vertex).tolist())
            both.update(self.graph.in_neighbors(vertex).tolist())
            return sorted(both)
        return []

    def _edges_for(self, vertex: int,
                   direction: EdgeDirection) -> list[tuple[int, int]]:
        """Incident ``(neighbor, owning machine)`` pairs for the gather phase."""
        if direction is EdgeDirection.OUT:
            start, end = self.graph.out_edge_span(vertex)
            neighbors = self.graph.out_neighbors(vertex).tolist()
            machines = self._out_edge_machine[start:end].tolist()
            return list(zip(neighbors, machines))
        if direction is EdgeDirection.IN:
            start, end = self.graph.in_edge_span(vertex)
            neighbors = self.graph.in_neighbors(vertex).tolist()
            machines = self._in_edge_machine[start:end].tolist()
            return list(zip(neighbors, machines))
        if direction is EdgeDirection.BOTH:
            return self._edges_for(vertex, EdgeDirection.OUT) + self._edges_for(
                vertex, EdgeDirection.IN
            )
        return []

    def _run_step(self, program: VertexProgram, active: list[int]) -> None:
        step_start = time.perf_counter()
        step = StepMetrics(
            name=program.name,
            num_machines=self.cluster.num_machines,
        )
        masters = self._partition.vertex_master
        for u in active:
            u_data = self._vertex_data[u]
            u_machine = int(masters[u])
            # PowerGraph-style gather: each machine owning edges of u
            # pre-aggregates its local gather values (partials) and only the
            # partial results of remote machines cross the network.
            partials: dict[int, Any] = {}
            for v, edge_machine in self._edges_for(u, program.gather_direction):
                value = program.gather(u, v, u_data, self._vertex_data[v])
                step.gather_invocations += 1
                cost = program.compute_cost(value)
                step.compute_units_per_machine[edge_machine] += cost
                if value is None:
                    continue
                if edge_machine in partials:
                    partials[edge_machine] = program.sum(partials[edge_machine], value)
                else:
                    partials[edge_machine] = value
            gathered: Any = None
            has_value = False
            for machine, partial in partials.items():
                if machine != u_machine:
                    # One aggregated message per remote mirror: sent by the
                    # mirror, received by the master.
                    size = program.gather_payload_bytes(partial)
                    step.network_bytes_per_machine[machine] += size
                    step.network_bytes_per_machine[u_machine] += size
                if has_value:
                    gathered = program.sum(gathered, partial)
                else:
                    gathered = partial
                    has_value = True
            previous_bytes = self._vertex_data_bytes[u]
            program.apply(u, u_data, gathered if has_value else None)
            step.apply_invocations += 1
            new_bytes = _data_bytes(u_data)
            self._vertex_data_bytes[u] = new_bytes
            delta = new_bytes - previous_bytes
            replicas = self._partition.vertex_replicas[u]
            for machine in replicas:
                if delta > 0:
                    self._memory.charge(machine, delta)
                elif delta < 0:
                    self._memory.release(machine, -delta)
            # Replica synchronization: the new Du is shipped to every mirror.
            if len(replicas) > 1:
                sync_bytes = new_bytes * (len(replicas) - 1)
                step.sync_bytes_per_machine[u_machine] += sync_bytes
            if program.scatter_direction is not EdgeDirection.NONE:
                for v in self._neighbors_for(u, program.scatter_direction):
                    edge_key = (u, v)
                    edge_data = self._edge_data.setdefault(edge_key, {})
                    program.scatter(u, v, u_data, edge_data)
        for machine in range(self.cluster.num_machines):
            step.vertex_data_bytes_per_machine[machine] = self._memory.usage_bytes(machine)
        if self._store is not None:
            step.state_plane_bytes = self._store.nbytes()
            self._memory.observe_state_plane(step.state_plane_bytes)
        step.wall_clock_seconds = time.perf_counter() - step_start
        self._metrics.add_step(step)
