"""Accounting structures recorded while executing GAS programs.

Every super-step records per-machine work (gather invocations weighted by the
program's ``compute_cost``), network traffic (bytes shipped for remote
gathers and for replica synchronization after apply), and the memory
footprint of vertex data.  These metrics feed the analytical cost model that
turns them into simulated execution times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StepMetrics", "RunMetrics"]


@dataclass
class StepMetrics:
    """Metrics for one GAS super-step."""

    name: str
    num_machines: int
    gather_invocations: int = 0
    compute_units_per_machine: list[int] = field(default_factory=list)
    network_bytes_per_machine: list[int] = field(default_factory=list)
    sync_bytes_per_machine: list[int] = field(default_factory=list)
    apply_invocations: int = 0
    vertex_data_bytes_per_machine: list[int] = field(default_factory=list)
    wall_clock_seconds: float = 0.0
    #: Live payload bytes of the columnar state plane after this step
    #: (0 on the legacy dict-state path, which has no columnar footprint).
    state_plane_bytes: int = 0
    #: Coordinator time spent slicing/merging state and routing message
    #: blocks for this step (only populated by the shared-nothing executor).
    routing_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not self.compute_units_per_machine:
            self.compute_units_per_machine = [0] * self.num_machines
        if not self.network_bytes_per_machine:
            self.network_bytes_per_machine = [0] * self.num_machines
        if not self.sync_bytes_per_machine:
            self.sync_bytes_per_machine = [0] * self.num_machines
        if not self.vertex_data_bytes_per_machine:
            self.vertex_data_bytes_per_machine = [0] * self.num_machines

    @property
    def total_compute_units(self) -> int:
        return sum(self.compute_units_per_machine)

    @property
    def total_network_bytes(self) -> int:
        return sum(self.network_bytes_per_machine) + sum(self.sync_bytes_per_machine)

    @property
    def max_machine_memory_bytes(self) -> int:
        if not self.vertex_data_bytes_per_machine:
            return 0
        return max(self.vertex_data_bytes_per_machine)


@dataclass
class RunMetrics:
    """Metrics accumulated over a full GAS program run (all steps)."""

    steps: list[StepMetrics] = field(default_factory=list)
    simulated_seconds: float = 0.0
    wall_clock_seconds: float = 0.0

    def add_step(self, step: StepMetrics) -> None:
        self.steps.append(step)

    @property
    def total_compute_units(self) -> int:
        return sum(step.total_compute_units for step in self.steps)

    @property
    def total_network_bytes(self) -> int:
        return sum(step.total_network_bytes for step in self.steps)

    @property
    def peak_machine_memory_bytes(self) -> int:
        if not self.steps:
            return 0
        return max(step.max_machine_memory_bytes for step in self.steps)

    @property
    def total_gather_invocations(self) -> int:
        return sum(step.gather_invocations for step in self.steps)

    @property
    def peak_state_plane_bytes(self) -> int:
        """Largest columnar state-plane footprint observed across steps."""
        if not self.steps:
            return 0
        return max(step.state_plane_bytes for step in self.steps)

    @property
    def total_routing_seconds(self) -> float:
        """Total coordinator time spent on state slicing / message routing."""
        return sum(step.routing_seconds for step in self.steps)

    def describe(self) -> str:
        """Human-readable multi-line summary of the run."""
        lines = [
            f"steps={len(self.steps)} "
            f"compute_units={self.total_compute_units:,} "
            f"network={self.total_network_bytes / 1024**2:.2f} MiB "
            f"peak_mem={self.peak_machine_memory_bytes / 1024**2:.2f} MiB "
            f"simulated={self.simulated_seconds:.2f}s "
            f"wall={self.wall_clock_seconds:.2f}s"
        ]
        for step in self.steps:
            lines.append(
                f"  [{step.name}] gathers={step.gather_invocations:,} "
                f"compute={step.total_compute_units:,} "
                f"net={step.total_network_bytes / 1024**2:.2f} MiB"
            )
        return "\n".join(lines)
