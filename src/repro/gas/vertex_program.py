"""Vertex-program API of the gather-apply-scatter (GAS) model.

A GAS program (Section 2.3 of the paper) runs a sequence of super-steps; in
each step every active vertex ``u``:

1. **gather** — maps over the incident edges/neighbor data and reduces the
   mapped values with a commutative/associative ``sum``;
2. **apply** — updates the vertex data ``Du`` from the gathered value;
3. **scatter** — optionally updates the data of outgoing edges.

The engine in :mod:`repro.gas.engine` executes programs that implement the
:class:`VertexProgram` interface.  To keep the accounting faithful, a gather
result must report its (approximate) serialized size via
:func:`payload_size_bytes`, which the cost model uses to charge network
traffic whenever the neighbor lives on a different simulated machine.
"""

from __future__ import annotations

import sys
from abc import ABC, abstractmethod
from enum import Enum
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.runtime.state import StateSchema

__all__ = [
    "EdgeDirection",
    "VertexProgram",
    "GatherResult",
    "payload_size_bytes",
]


class EdgeDirection(Enum):
    """Which incident edges a gather/scatter phase iterates over."""

    IN = "in"
    OUT = "out"
    BOTH = "both"
    NONE = "none"


#: A gather result is an arbitrary Python value; ``None`` means "nothing
#: gathered" and is skipped by the engine's sum.
GatherResult = Any


def payload_size_bytes(value: Any) -> int:
    """Approximate the serialized size of a gather/scatter payload.

    The estimate intentionally mirrors what a C++ GAS engine would ship over
    the wire: 8 bytes per integer or float, container overhead ignored,
    strings at one byte per character.  The absolute numbers only matter
    relative to each other (SNAPLE's small payloads vs. BASELINE's full
    neighborhood payloads), which is what drives the paper's results.
    """
    if value is None:
        return 0
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, str):
        return len(value)
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, dict):
        return sum(payload_size_bytes(k) + payload_size_bytes(v)
                   for k, v in value.items())
    if isinstance(value, (list, tuple, set, frozenset)):
        return sum(payload_size_bytes(item) for item in value)
    if hasattr(value, "nbytes"):  # numpy arrays
        return int(value.nbytes)
    # Fall back to the in-memory size; better to overestimate than ignore.
    return sys.getsizeof(value)


class VertexProgram(ABC):
    """One GAS super-step expressed as gather / sum / apply / scatter.

    Subclasses override the phases they need.  ``gather_direction`` controls
    which incident edges the engine enumerates during the gather phase
    (SNAPLE gathers over out-edges; other programs may gather over in-edges).
    """

    #: Human-readable step name used in engine metrics.
    name: str = "step"

    gather_direction: EdgeDirection = EdgeDirection.OUT
    scatter_direction: EdgeDirection = EdgeDirection.NONE

    def state_schema(self) -> "StateSchema | None":
        """The typed state fields this program reads and writes.

        Programs that declare a :class:`~repro.runtime.state.StateSchema`
        run on the columnar state plane: the engine keeps their vertex data
        in a :class:`~repro.runtime.state.StateStore` (one NumPy column per
        field) and passes :class:`~repro.runtime.state.VertexRow` views —
        dict-compatible, so ``gather``/``apply`` code is unchanged — instead
        of per-vertex dicts.  Returning ``None`` (the default) keeps the
        legacy dict state.
        """
        return None

    @abstractmethod
    def gather(self, u: int, v: int, u_data: dict[str, Any],
               v_data: dict[str, Any]) -> GatherResult:
        """Map one incident edge ``(u, v)`` to a partial gather value.

        ``u`` is the vertex running the program; ``v`` the neighbor on the
        enumerated edge.  ``u_data`` / ``v_data`` are the mutable data
        dictionaries of the two vertices (``Du`` / ``Dv`` in the paper);
        gather must treat them as read-only.
        """

    def sum(self, left: GatherResult, right: GatherResult) -> GatherResult:
        """Combine two gather results; must be commutative and associative."""
        raise NotImplementedError(
            f"{type(self).__name__} gathered more than one value but does "
            "not define sum()"
        )

    @abstractmethod
    def apply(self, u: int, u_data: dict[str, Any],
              gathered: GatherResult) -> None:
        """Update ``Du`` in place from the aggregated gather value."""

    def scatter(self, u: int, v: int, u_data: dict[str, Any],
                edge_data: dict[str, Any]) -> None:
        """Optionally update outgoing edge data after apply (unused by SNAPLE)."""
        return None

    def gather_payload_bytes(self, value: GatherResult) -> int:
        """Size charged to the network when the gathered edge crosses machines."""
        return payload_size_bytes(value)

    def compute_cost(self, value: GatherResult) -> int:
        """Abstract work units charged per gather invocation.

        Defaults to 1 unit per gathered edge; programs whose per-edge work is
        heavier (e.g. a Jaccard over two neighbor lists) override this so the
        simulated times reflect the extra computation.
        """
        return 1
