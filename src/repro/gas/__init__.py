"""Simulated gather-apply-scatter (GAS) engine substrate.

This package models the distributed graph engine the paper builds on
(GraphLab/PowerGraph): a vertex-program API, a synchronous super-step engine,
a vertex-cut partitioner, a cluster hardware model (type-I / type-II nodes),
and an analytical cost model that converts accounted work, traffic, and
memory into simulated execution times.
"""

from repro.gas.cluster import (
    SINGLE_MACHINE,
    TYPE_I,
    TYPE_II,
    ClusterConfig,
    MachineSpec,
    cluster_of,
)
from repro.gas.cost_model import CostBreakdown, CostModel
from repro.gas.engine import GasEngine, GasRunResult
from repro.gas.memory import MemoryTracker
from repro.gas.metrics import RunMetrics, StepMetrics
from repro.gas.partition import (
    GraphPartition,
    GreedyVertexCut,
    HdrfVertexCut,
    Partitioner,
    RandomVertexCut,
    partition_graph,
)
from repro.gas.vertex_program import EdgeDirection, VertexProgram, payload_size_bytes

__all__ = [
    "MachineSpec",
    "ClusterConfig",
    "cluster_of",
    "TYPE_I",
    "TYPE_II",
    "SINGLE_MACHINE",
    "VertexProgram",
    "EdgeDirection",
    "payload_size_bytes",
    "GasEngine",
    "GasRunResult",
    "GraphPartition",
    "Partitioner",
    "RandomVertexCut",
    "GreedyVertexCut",
    "HdrfVertexCut",
    "partition_graph",
    "CostModel",
    "CostBreakdown",
    "MemoryTracker",
    "RunMetrics",
    "StepMetrics",
]
