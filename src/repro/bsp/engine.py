"""Synchronous BSP/Pregel engine over a simulated cluster.

The engine executes a :class:`~repro.bsp.vertex.BspVertexProgram` as a
sequence of supersteps on a graph whose vertices are distributed over a
simulated cluster with an edge-cut (see :mod:`repro.bsp.partition`).  For
every superstep it performs the real computation (results are exact) while
accounting the work, the network traffic and the memory footprint that an
equivalent Giraph/Pregel run would incur:

* ``compute`` runs on the machine owning the vertex;
* messages between vertices on different machines are charged to the sender
  and the receiver machine; if the program defines a
  :class:`~repro.bsp.vertex.MessageCombiner`, messages produced on one
  machine for the same destination vertex are merged before crossing the
  network, exactly as Pregel combiners do;
* every machine's vertex-state and in-flight-message footprint is tracked
  against its (scaled) capacity, raising
  :class:`~repro.errors.ResourceExhaustedError` on overflow.

The accounting reuses the GAS metrics and cost model so that simulated times
of the two programming models are directly comparable (the engine-comparison
ablation relies on this).
"""

from __future__ import annotations

import time
from collections import defaultdict
from collections.abc import Mapping, MutableSequence, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.errors import EngineError
from repro.gas.cluster import ClusterConfig, TYPE_II, cluster_of
from repro.gas.cost_model import CostModel
from repro.gas.memory import MemoryTracker
from repro.gas.metrics import RunMetrics, StepMetrics
from repro.gas.vertex_program import payload_size_bytes
from repro.bsp.partition import VertexPartition, VertexPartitioner, partition_vertices
from repro.bsp.vertex import BspVertexProgram, ComputeContext
from repro.graph.digraph import DiGraph

__all__ = ["BspEngine", "BspRunResult"]


def _state_bytes(state: Mapping[str, Any]) -> int:
    """Accounting bytes of one vertex's state, dict or columnar row alike."""
    nbytes = getattr(state, "nbytes", None)
    if callable(nbytes):
        return nbytes()
    return payload_size_bytes(state)


@dataclass
class BspRunResult:
    """Outcome of running a BSP program: final vertex states plus metrics.

    ``vertex_state`` is a list of per-vertex mappings: plain dicts on the
    legacy dict-state path, :class:`~repro.runtime.state.VertexRow` column
    views when the program declared a state schema.
    """

    vertex_state: Sequence[Mapping[str, Any]]
    metrics: RunMetrics
    partition: VertexPartition
    cluster: ClusterConfig
    supersteps: int
    aggregated_values: dict[str, Any] = field(default_factory=dict)

    @property
    def simulated_seconds(self) -> float:
        return self.metrics.simulated_seconds

    @property
    def wall_clock_seconds(self) -> float:
        return self.metrics.wall_clock_seconds

    def state_of(self, vertex: int) -> Mapping[str, Any]:
        """Vertex state mapping of ``vertex`` after the run."""
        return self.vertex_state[vertex]


@dataclass
class BspEngine:
    """Synchronous Pregel-style engine on a simulated cluster.

    Parameters
    ----------
    graph:
        The input graph; each vertex and its out-edges live on one machine.
    cluster:
        Simulated cluster; defaults to a single type-II machine.
    partitioner:
        Vertex-placement strategy; defaults to hash placement.
    enforce_memory:
        When ``True`` the engine raises
        :class:`~repro.errors.ResourceExhaustedError` if a machine's vertex
        state plus queued messages exceed its (scaled) capacity.
    seed:
        Seed for the partitioner.
    """

    graph: DiGraph
    cluster: ClusterConfig = field(default_factory=lambda: cluster_of(TYPE_II, 1))
    partitioner: VertexPartitioner | None = None
    enforce_memory: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        self._partition = partition_vertices(
            self.graph,
            self.cluster.num_machines,
            partitioner=self.partitioner,
            seed=self.seed,
        )
        self._cost_model = CostModel(self.cluster)
        self._memory = MemoryTracker(self.cluster, enforce=self.enforce_memory)
        self._metrics = RunMetrics()
        self._store = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def partition(self) -> VertexPartition:
        """The edge-cut vertex placement used by this engine."""
        return self._partition

    @property
    def memory(self) -> MemoryTracker:
        """Memory tracker for the simulated cluster."""
        return self._memory

    @property
    def state_store(self):
        """The columnar :class:`~repro.runtime.state.StateStore`, or ``None``.

        Populated by :meth:`run` when the program declares a state schema
        and ``SNAPLE_DICT_STATE`` is not set.
        """
        return self._store

    def _init_state(self, program: BspVertexProgram,
                    num_vertices: int) -> MutableSequence[Any]:
        """Vertex state on the columnar plane when the program declares it."""
        from repro.runtime.state import (
            StateStore,
            common_state_schema,
            dict_state_forced,
        )

        self._store = None
        schema = common_state_schema((program,))
        if schema is None or dict_state_forced():
            return [program.initial_state(u) for u in range(num_vertices)]
        self._store = StateStore(num_vertices, schema)
        state = self._store.rows()
        for u in range(num_vertices):
            initial = program.initial_state(u)
            if initial:
                row = state[u]
                for key, value in initial.items():
                    row[key] = value
        return state

    def run(self, program: BspVertexProgram,
            *, vertices: list[int] | None = None) -> BspRunResult:
        """Execute ``program`` until it halts (or hits ``max_supersteps``).

        ``vertices`` restricts the initially active set (all by default);
        other vertices still participate once a message reaches them.
        """
        if program.max_supersteps < 1:
            raise EngineError("max_supersteps must be at least 1")
        start = time.perf_counter()
        num_vertices = self.graph.num_vertices
        state = self._init_state(program, num_vertices)
        state_bytes = [_state_bytes(s) for s in state]
        machines = self._partition.vertex_machine
        for u in range(num_vertices):
            self._memory.charge(int(machines[u]), state_bytes[u])

        active = [False] * num_vertices
        initial = range(num_vertices) if vertices is None else vertices
        for u in initial:
            active[u] = True
        inbox: list[list[Any]] = [[] for _ in range(num_vertices)]
        aggregator_fns = program.aggregators()
        aggregated: dict[str, Any] = {}
        superstep = 0

        while superstep < program.max_supersteps:
            if not any(active) and not any(inbox):
                break
            outbox, next_aggregated = self._run_superstep(
                program, superstep, state, state_bytes, active, inbox,
                aggregator_fns, aggregated,
            )
            inbox = outbox
            aggregated = next_aggregated
            for u, messages in enumerate(inbox):
                if messages:
                    active[u] = True
            superstep += 1

        self._metrics.wall_clock_seconds = time.perf_counter() - start
        self._metrics.simulated_seconds = self._cost_model.run_cost(self._metrics)
        return BspRunResult(
            vertex_state=state,
            metrics=self._metrics,
            partition=self._partition,
            cluster=self.cluster,
            supersteps=superstep,
            aggregated_values=aggregated,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _run_superstep(
        self,
        program: BspVertexProgram,
        superstep: int,
        state: list[dict[str, Any]],
        state_bytes: list[int],
        active: list[bool],
        inbox: list[list[Any]],
        aggregator_fns: dict[str, Any],
        aggregated: dict[str, Any],
    ) -> tuple[list[list[Any]], dict[str, Any]]:
        step = StepMetrics(
            name=f"{program.name}[{superstep}]",
            num_machines=self.cluster.num_machines,
        )
        step_start = time.perf_counter()
        machines = self._partition.vertex_machine
        num_machines = self.cluster.num_machines
        outbox: list[list[Any]] = [[] for _ in range(len(state))]
        # Pending remote messages grouped by (sender machine, destination
        # vertex) so an optional combiner can merge them before they cross
        # the network, exactly as Pregel combiners do.
        pending_remote: dict[tuple[int, int], list[Any]] = defaultdict(list)
        aggregator_contrib: dict[str, Any] = {}

        def contribute(name: str, value: Any) -> None:
            if name not in aggregator_fns:
                raise EngineError(
                    f"program {program.name!r} aggregated to undeclared "
                    f"aggregator {name!r}"
                )
            if name in aggregator_contrib:
                aggregator_contrib[name] = aggregator_fns[name](
                    aggregator_contrib[name], value
                )
            else:
                aggregator_contrib[name] = value

        for u in range(len(state)):
            messages = inbox[u]
            if not active[u] and not messages:
                continue
            u_machine = int(machines[u])

            def send(source: int, target: int, value: Any,
                     *, _source_machine: int = u_machine) -> None:
                if not 0 <= target < len(state):
                    raise EngineError(
                        f"message sent to non-existent vertex {target}"
                    )
                target_machine = int(machines[target])
                if target_machine == _source_machine:
                    outbox[target].append(value)
                    # Local messages stay on the machine but still occupy its
                    # memory until consumed at the next superstep.
                    self._memory.charge(
                        target_machine, program.message_payload_bytes(value)
                    )
                else:
                    pending_remote[(_source_machine, target)].append(value)

            def halt(vertex: int) -> None:
                active[vertex] = False

            context = ComputeContext(
                superstep=superstep,
                num_vertices=self.graph.num_vertices,
                num_edges=self.graph.num_edges,
                vertex=u,
                out_neighbors=self.graph.out_neighbors(u).tolist(),
                send=send,
                halt=halt,
                aggregate=contribute,
                aggregated_values=aggregated,
            )
            active[u] = True
            program.compute(state[u], messages, context)
            step.apply_invocations += 1
            step.gather_invocations += len(messages)
            step.compute_units_per_machine[u_machine] += program.compute_cost(
                state[u], len(messages)
            )
            new_bytes = _state_bytes(state[u])
            delta = new_bytes - state_bytes[u]
            state_bytes[u] = new_bytes
            if delta > 0:
                self._memory.charge(u_machine, delta)
            elif delta < 0:
                self._memory.release(u_machine, -delta)

        # Deliver remote messages: combine per (machine, destination) when a
        # combiner is available, charge the network, and append to the
        # destination's inbox for the next superstep.
        for (source_machine, target), values in pending_remote.items():
            if program.combiner is not None and len(values) > 1:
                merged = values[0]
                for value in values[1:]:
                    merged = program.combiner.combine(merged, value)
                values = [merged]
            target_machine = int(machines[target])
            for value in values:
                size = program.message_payload_bytes(value)
                step.network_bytes_per_machine[source_machine] += size
                step.network_bytes_per_machine[target_machine] += size
                # In-flight messages occupy memory on the receiving machine
                # until they are consumed at the next superstep.
                self._memory.charge(target_machine, size)
                outbox[target].append(value)

        # Release the message memory consumed by this superstep's inbox.
        for u, messages in enumerate(inbox):
            if not messages:
                continue
            machine = int(machines[u])
            released = sum(program.message_payload_bytes(m) for m in messages)
            self._memory.release(machine, released)

        for machine in range(num_machines):
            step.vertex_data_bytes_per_machine[machine] = self._memory.usage_bytes(machine)
        if self._store is not None:
            step.state_plane_bytes = self._store.nbytes()
            self._memory.observe_state_plane(step.state_plane_bytes)
        step.wall_clock_seconds = time.perf_counter() - step_start
        self._metrics.add_step(step)

        next_aggregated = dict(aggregator_contrib)
        return outbox, next_aggregated
