"""Simulated Bulk Synchronous Parallel (BSP / Pregel) engine substrate.

The paper contrasts the GAS model with Bulk Synchronous Processing engines
(Pregel, Giraph, Bagel — Sections 2.2 and 6) and names porting SNAPLE to them
as future work (Section 7).  This package provides that substrate: a
Pregel-style vertex-program API (messages, combiners, halting, aggregators),
a superstep engine with the same cluster/cost/memory accounting as the GAS
engine, and an edge-cut vertex partitioner — so the data-flow of the two
models can be compared on identical graphs and clusters.
"""

from repro.bsp.engine import BspEngine, BspRunResult
from repro.bsp.partition import (
    BlockVertexPartitioner,
    HashVertexPartitioner,
    VertexPartition,
    VertexPartitioner,
    partition_vertices,
)
from repro.bsp.programs import (
    ConnectedComponentsProgram,
    OutDegreeProgram,
    PageRankProgram,
    ShortestPathsProgram,
)
from repro.bsp.vertex import (
    BspVertexProgram,
    ComputeContext,
    MaxCombiner,
    MessageCombiner,
    MinCombiner,
    SumCombiner,
)

__all__ = [
    "BspVertexProgram",
    "ComputeContext",
    "MessageCombiner",
    "SumCombiner",
    "MinCombiner",
    "MaxCombiner",
    "BspEngine",
    "BspRunResult",
    "VertexPartition",
    "VertexPartitioner",
    "HashVertexPartitioner",
    "BlockVertexPartitioner",
    "partition_vertices",
    "PageRankProgram",
    "ConnectedComponentsProgram",
    "ShortestPathsProgram",
    "OutDegreeProgram",
]
