"""Vertex-program API of the Bulk Synchronous Parallel (BSP / Pregel) model.

The paper positions the GAS model against Bulk Synchronous Processing
(Section 2.2 and Section 6): Pregel-style engines such as Giraph or Bagel run
the computation as a sequence of *supersteps* in which every active vertex
receives the messages sent to it in the previous superstep, updates its own
state, and sends new messages, with a synchronization barrier between
supersteps.  Porting SNAPLE to these engines is listed as future work
(Section 7); this package provides the substrate for that port so the data
flow of the two models can be compared on equal footing.

A BSP program implements :class:`BspVertexProgram.compute`, which the engine
in :mod:`repro.bsp.engine` invokes once per active vertex per superstep with
a :class:`ComputeContext` giving access to the vertex's out-edges, message
sending, halting, and global aggregators.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.runtime.state import StateSchema

__all__ = [
    "BspVertexProgram",
    "ComputeContext",
    "MessageCombiner",
    "SumCombiner",
    "MinCombiner",
    "MaxCombiner",
]


class MessageCombiner(ABC):
    """Combines messages addressed to the same destination vertex.

    Pregel combiners reduce network traffic: messages produced on one machine
    for the same destination are merged into a single message before crossing
    the network.  A combiner must be commutative and associative, because the
    engine applies it in an arbitrary order.
    """

    @abstractmethod
    def combine(self, left: Any, right: Any) -> Any:
        """Merge two messages addressed to the same vertex."""


class SumCombiner(MessageCombiner):
    """Adds numeric messages together (the classic PageRank combiner)."""

    def combine(self, left: Any, right: Any) -> Any:
        return left + right


class MinCombiner(MessageCombiner):
    """Keeps the smallest message (used by connected-components / SSSP)."""

    def combine(self, left: Any, right: Any) -> Any:
        return min(left, right)


class MaxCombiner(MessageCombiner):
    """Keeps the largest message."""

    def combine(self, left: Any, right: Any) -> Any:
        return max(left, right)


class ComputeContext:
    """Per-vertex view of the engine handed to :meth:`BspVertexProgram.compute`.

    The context exposes exactly what a Pregel worker exposes to user code: the
    vertex's out-edges, a way to send messages (to out-neighbors or to any
    vertex id learned through earlier messages), ``vote_to_halt``, the
    superstep number, graph-level constants, and global aggregators whose
    values become visible in the *next* superstep.
    """

    __slots__ = (
        "superstep",
        "num_vertices",
        "num_edges",
        "_vertex",
        "_out_neighbors",
        "_send",
        "_halt",
        "_aggregate",
        "_aggregated_values",
        "messages_sent",
    )

    def __init__(
        self,
        *,
        superstep: int,
        num_vertices: int,
        num_edges: int,
        vertex: int,
        out_neighbors: Sequence[int],
        send: Callable[[int, int, Any], None],
        halt: Callable[[int], None],
        aggregate: Callable[[str, Any], None],
        aggregated_values: dict[str, Any],
    ) -> None:
        self.superstep = superstep
        self.num_vertices = num_vertices
        self.num_edges = num_edges
        self._vertex = vertex
        self._out_neighbors = out_neighbors
        self._send = send
        self._halt = halt
        self._aggregate = aggregate
        self._aggregated_values = aggregated_values
        self.messages_sent = 0

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def vertex(self) -> int:
        """Id of the vertex currently running ``compute``."""
        return self._vertex

    def out_neighbors(self) -> Sequence[int]:
        """Out-neighbors of the current vertex (its locally stored edges)."""
        return self._out_neighbors

    def out_degree(self) -> int:
        """Out-degree of the current vertex."""
        return len(self._out_neighbors)

    # ------------------------------------------------------------------
    # Messaging and halting
    # ------------------------------------------------------------------
    def send_message(self, target: int, value: Any) -> None:
        """Send ``value`` to ``target``; delivered at the next superstep."""
        self._send(self._vertex, target, value)
        self.messages_sent += 1

    def send_message_to_all_neighbors(self, value: Any) -> None:
        """Send the same message along every out-edge."""
        for target in self._out_neighbors:
            self.send_message(target, value)

    def vote_to_halt(self) -> None:
        """Deactivate this vertex until a message re-activates it."""
        self._halt(self._vertex)

    # ------------------------------------------------------------------
    # Global aggregators
    # ------------------------------------------------------------------
    def aggregate(self, name: str, value: Any) -> None:
        """Contribute ``value`` to the named global aggregator.

        The reduced value is visible to every vertex in the *next* superstep
        via :meth:`aggregated`, mirroring Pregel's aggregator semantics.
        """
        self._aggregate(name, value)

    def aggregated(self, name: str, default: Any = None) -> Any:
        """Value of the named aggregator reduced over the previous superstep."""
        return self._aggregated_values.get(name, default)


class BspVertexProgram(ABC):
    """A Pregel-style vertex program executed superstep by superstep.

    Subclasses implement :meth:`compute`; the engine calls it for every active
    vertex at every superstep, passing the messages delivered to that vertex.
    A vertex stays active until it calls ``context.vote_to_halt()`` and is
    re-activated whenever it receives a message.  The run terminates when all
    vertices are halted and no messages are in flight, or after
    ``max_supersteps``.
    """

    #: Human-readable program name used in run metrics.
    name: str = "bsp-program"

    #: Upper bound on supersteps; a safety net against non-terminating programs.
    max_supersteps: int = 50

    #: Optional combiner merging messages to the same destination per machine.
    combiner: MessageCombiner | None = None

    def state_schema(self) -> "StateSchema | None":
        """The typed state fields this program reads and writes.

        Programs declaring a :class:`~repro.runtime.state.StateSchema` run
        on the columnar state plane: the engine keeps vertex state in a
        :class:`~repro.runtime.state.StateStore` and passes dict-compatible
        :class:`~repro.runtime.state.VertexRow` views to :meth:`compute`.
        Returning ``None`` (the default) keeps the legacy dict state.
        """
        return None

    def aggregators(self) -> dict[str, Callable[[Any, Any], Any]]:
        """Named global reductions available through the compute context."""
        return {}

    def initial_state(self, vertex: int) -> dict[str, Any]:
        """Initial mutable state of ``vertex`` before superstep 0."""
        return {}

    @abstractmethod
    def compute(self, state: dict[str, Any], messages: list[Any],
                context: ComputeContext) -> None:
        """Update ``state`` from the received ``messages`` and send new ones."""

    def message_payload_bytes(self, value: Any) -> int:
        """Serialized size charged when a message crosses machines."""
        from repro.gas.vertex_program import payload_size_bytes

        return payload_size_bytes(value)

    def compute_cost(self, state: dict[str, Any], num_messages: int) -> int:
        """Abstract work units charged per ``compute`` invocation.

        Defaults to one unit plus one per received message; programs with
        heavier per-vertex work override this so the simulated times reflect
        the extra computation.
        """
        return 1 + num_messages
