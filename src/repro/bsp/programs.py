"""Classic Pregel programs used to validate the BSP substrate.

These programs are not part of SNAPLE itself; they are the standard
vertex-centric algorithms (PageRank, connected components, single-source
shortest paths, degree counting) every Pregel-style engine ships with.  They
exercise every feature of the substrate — messaging, combiners, halting,
global aggregators — independently of the link-prediction code, which keeps
the engine testable on algorithms with known closed-form answers.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.bsp.vertex import (
    BspVertexProgram,
    ComputeContext,
    MinCombiner,
    SumCombiner,
)

__all__ = [
    "PageRankProgram",
    "ConnectedComponentsProgram",
    "ShortestPathsProgram",
    "OutDegreeProgram",
]


def _scalar_schema(name: str, dtype: str):
    """A one-scalar-field state schema (built lazily; see module cycle note)."""
    from repro.runtime.state import FieldKind, StateField, StateSchema

    return StateSchema((StateField(name, FieldKind.SCALAR, dtype),))


class PageRankProgram(BspVertexProgram):
    """Power-iteration PageRank with a sum combiner.

    Every vertex starts at ``1 / |V|``; for ``num_iterations`` supersteps it
    distributes its rank equally over its out-edges and applies the damping
    update to the incoming sum.  The total rank mass is tracked through a
    global aggregator so tests can assert conservation.
    """

    name = "pagerank"
    combiner = SumCombiner()

    def state_schema(self):
        return _scalar_schema("rank", "float64")

    def __init__(self, *, damping: float = 0.85, num_iterations: int = 10) -> None:
        self._damping = damping
        self._num_iterations = num_iterations
        self.max_supersteps = num_iterations + 1

    def aggregators(self) -> dict[str, Callable[[Any, Any], Any]]:
        return {"total_rank": lambda a, b: a + b}

    def initial_state(self, vertex: int) -> dict[str, Any]:
        return {"rank": 0.0}

    def compute(self, state: dict[str, Any], messages: list[Any],
                context: ComputeContext) -> None:
        if context.superstep == 0:
            state["rank"] = 1.0 / context.num_vertices
        else:
            incoming = sum(messages)
            state["rank"] = (
                (1.0 - self._damping) / context.num_vertices
                + self._damping * incoming
            )
        context.aggregate("total_rank", state["rank"])
        if context.superstep < self._num_iterations:
            degree = context.out_degree()
            if degree:
                context.send_message_to_all_neighbors(state["rank"] / degree)
        else:
            context.vote_to_halt()


class ConnectedComponentsProgram(BspVertexProgram):
    """Label propagation for weakly connected components (min combiner).

    Each vertex adopts the smallest vertex id seen so far and forwards it;
    the run converges when no label changes.  The program treats the graph as
    undirected by sending along out-edges and relying on the symmetrized
    graphs used in tests; for directed graphs it computes the components of
    the out-reachability closure from minima.
    """

    name = "connected-components"
    combiner = MinCombiner()
    max_supersteps = 100

    def state_schema(self):
        return _scalar_schema("component", "int64")

    def initial_state(self, vertex: int) -> dict[str, Any]:
        return {"component": vertex}

    def compute(self, state: dict[str, Any], messages: list[Any],
                context: ComputeContext) -> None:
        if context.superstep == 0:
            state["component"] = context.vertex
            context.send_message_to_all_neighbors(state["component"])
            context.vote_to_halt()
            return
        smallest = min(messages) if messages else state["component"]
        if smallest < state["component"]:
            state["component"] = smallest
            context.send_message_to_all_neighbors(smallest)
        context.vote_to_halt()


class ShortestPathsProgram(BspVertexProgram):
    """Single-source shortest paths with unit edge weights (min combiner)."""

    name = "shortest-paths"
    combiner = MinCombiner()
    max_supersteps = 200

    def state_schema(self):
        return _scalar_schema("distance", "float64")

    def __init__(self, source: int) -> None:
        self._source = source

    def initial_state(self, vertex: int) -> dict[str, Any]:
        return {"distance": float("inf")}

    def compute(self, state: dict[str, Any], messages: list[Any],
                context: ComputeContext) -> None:
        candidate = min(messages) if messages else float("inf")
        if context.superstep == 0 and context.vertex == self._source:
            candidate = 0.0
        if candidate < state["distance"]:
            state["distance"] = candidate
            context.send_message_to_all_neighbors(candidate + 1.0)
        context.vote_to_halt()


class OutDegreeProgram(BspVertexProgram):
    """Trivial one-superstep program recording each vertex's out-degree.

    Used by tests as the smallest possible BSP program and by the engine
    benchmarks to measure the fixed per-superstep overhead.
    """

    name = "out-degree"
    max_supersteps = 1

    def state_schema(self):
        return _scalar_schema("degree", "int64")

    def initial_state(self, vertex: int) -> dict[str, Any]:
        return {"degree": 0}

    def compute(self, state: dict[str, Any], messages: list[Any],
                context: ComputeContext) -> None:
        state["degree"] = context.out_degree()
        context.vote_to_halt()
