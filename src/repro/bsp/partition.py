"""Edge-cut vertex partitioning (re-export shim).

The implementation moved to :mod:`repro.runtime.partition`, the single home
for both placement flavours (PowerGraph's vertex-cut used by the GAS engine
and Pregel's edge-cut used by the BSP engine), so the strategy interface,
assignment validation and balance metrics are no longer duplicated.  This
module remains so historical imports keep working.
"""

from __future__ import annotations

from repro.runtime.partition import (
    BlockVertexPartitioner,
    HashVertexPartitioner,
    VertexPartition,
    VertexPartitioner,
    partition_vertices,
)

__all__ = [
    "VertexPartition",
    "VertexPartitioner",
    "HashVertexPartitioner",
    "BlockVertexPartitioner",
    "partition_vertices",
]
