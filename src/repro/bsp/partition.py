"""Vertex (edge-cut) partitioning for the BSP/Pregel substrate.

Pregel-style engines distribute a graph by assigning each *vertex* — together
with its out-edges — to one machine (an edge-cut), unlike PowerGraph's
vertex-cut which assigns *edges* and replicates vertices.  The placement
determines which messages cross the network: a message from ``u`` to ``v``
is remote exactly when the two vertices live on different machines.

Two placements are provided:

* :class:`HashVertexPartitioner` — Pregel's default: hash the vertex id;
* :class:`BlockVertexPartitioner` — contiguous ranges of vertex ids, which
  keeps generator-produced communities together and serves as a locality
  ablation against the hash placement.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import PartitionError
from repro.graph.digraph import DiGraph

__all__ = [
    "VertexPartition",
    "VertexPartitioner",
    "HashVertexPartitioner",
    "BlockVertexPartitioner",
    "partition_vertices",
]


@dataclass
class VertexPartition:
    """Placement of every vertex (and its out-edges) on a machine.

    Attributes
    ----------
    num_machines:
        Number of machines in the simulated cluster.
    vertex_machine:
        Array with one entry per vertex giving the machine that owns it.
    """

    num_machines: int
    vertex_machine: np.ndarray

    @property
    def num_vertices(self) -> int:
        return int(self.vertex_machine.size)

    def machine_of(self, vertex: int) -> int:
        """Machine owning ``vertex``."""
        return int(self.vertex_machine[vertex])

    def vertices_per_machine(self) -> np.ndarray:
        """Number of vertices placed on each machine."""
        return np.bincount(self.vertex_machine, minlength=self.num_machines)

    def edges_per_machine(self, graph: DiGraph) -> np.ndarray:
        """Number of out-edges stored on each machine."""
        counts = np.zeros(self.num_machines, dtype=np.int64)
        degrees = graph.out_degrees()
        for machine in range(self.num_machines):
            counts[machine] = int(degrees[self.vertex_machine == machine].sum())
        return counts

    def load_imbalance(self, graph: DiGraph) -> float:
        """Max/mean ratio of per-machine edge counts (1.0 is perfectly even)."""
        counts = self.edges_per_machine(graph)
        if counts.size == 0 or counts.mean() == 0:
            return 1.0
        return float(counts.max() / counts.mean())

    def cut_edges(self, graph: DiGraph) -> int:
        """Number of edges whose endpoints live on different machines.

        Every cut edge turns the message sent along it into network traffic;
        this is the edge-cut analog of the vertex-cut's replication factor.
        """
        src, dst = graph.edge_arrays()
        return int(
            (self.vertex_machine[src] != self.vertex_machine[dst]).sum()
        )

    def cut_fraction(self, graph: DiGraph) -> float:
        """Fraction of edges that cross machines."""
        if graph.num_edges == 0:
            return 0.0
        return self.cut_edges(graph) / graph.num_edges


class VertexPartitioner(ABC):
    """Strategy interface for assigning vertices to machines."""

    @abstractmethod
    def assign_vertices(self, graph: DiGraph, num_machines: int,
                        *, seed: int) -> np.ndarray:
        """Return one machine id per vertex."""


class HashVertexPartitioner(VertexPartitioner):
    """Pregel's default placement: hash the vertex id modulo machine count."""

    def assign_vertices(self, graph: DiGraph, num_machines: int,
                        *, seed: int) -> np.ndarray:
        ids = np.arange(graph.num_vertices, dtype=np.int64)
        # A multiplicative hash decorrelates the placement from any structure
        # in the generator's id assignment while staying deterministic.
        mixed = (ids * np.int64(2654435761) + np.int64(seed)) & np.int64(0x7FFFFFFF)
        return mixed % num_machines


class BlockVertexPartitioner(VertexPartitioner):
    """Contiguous vertex-id ranges, one block per machine."""

    def assign_vertices(self, graph: DiGraph, num_machines: int,
                        *, seed: int) -> np.ndarray:
        if graph.num_vertices == 0:
            return np.zeros(0, dtype=np.int64)
        block = -(-graph.num_vertices // num_machines)  # ceiling division
        ids = np.arange(graph.num_vertices, dtype=np.int64)
        return np.minimum(ids // block, num_machines - 1)


def partition_vertices(
    graph: DiGraph,
    num_machines: int,
    *,
    partitioner: VertexPartitioner | None = None,
    seed: int = 0,
) -> VertexPartition:
    """Place every vertex of ``graph`` on one of ``num_machines`` machines."""
    if num_machines <= 0:
        raise PartitionError("num_machines must be positive")
    if partitioner is None:
        partitioner = HashVertexPartitioner()
    assignment = partitioner.assign_vertices(graph, num_machines, seed=seed)
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.shape != (graph.num_vertices,):
        raise PartitionError("partitioner returned an assignment of the wrong shape")
    if graph.num_vertices and (assignment.min() < 0 or assignment.max() >= num_machines):
        raise PartitionError("partitioner assigned a vertex to a non-existent machine")
    return VertexPartition(num_machines=num_machines, vertex_machine=assignment)
