"""Unit tests for the experiment runner."""

from __future__ import annotations

import math

import pytest

from repro.baselines.random_walk_ppr import RandomWalkConfig
from repro.eval.runner import ExperimentRun, ExperimentRunner
from repro.eval.metrics import QualityReport
from repro.gas.cluster import TYPE_II, ClusterConfig, cluster_of
from repro.snaple.config import SnapleConfig


@pytest.fixture(scope="module")
def runner() -> ExperimentRunner:
    """A runner on small dataset analogs shared by all tests in this module."""
    return ExperimentRunner(scale=0.3, seed=7)


class TestSplitsAndDatasets:
    def test_split_is_cached(self, runner):
        first = runner.split("gowalla")
        second = runner.split("gowalla")
        assert first is second

    def test_split_per_removal_count(self, runner):
        one = runner.split("gowalla", removed_edges_per_vertex=1)
        two = runner.split("gowalla", removed_edges_per_vertex=2)
        assert two.num_removed > one.num_removed

    def test_dataset_scale_respected(self):
        small = ExperimentRunner(scale=0.25, seed=7).dataset("pokec")
        large = ExperimentRunner(scale=0.75, seed=7).dataset("pokec")
        assert large.num_vertices > small.num_vertices

    def test_properties(self, runner):
        assert runner.scale == 0.3
        assert runner.seed == 7


class TestRuns:
    def test_snaple_local_run(self, runner):
        config = SnapleConfig.paper_default("linearSum", k_local=10)
        run = runner.run_snaple_local("gowalla", config)
        assert isinstance(run.quality, QualityReport)
        assert 0.0 <= run.recall <= 1.0
        assert run.wall_clock_seconds > 0
        assert run.simulated_seconds is None

    def test_snaple_gas_run_records_extras(self, runner):
        config = SnapleConfig.paper_default("counter", k_local=10)
        run = runner.run_snaple_gas("gowalla", config, cluster_of(TYPE_II, 2),
                                    enforce_memory=False)
        assert run.simulated_seconds is not None
        assert "network_bytes" in run.extra
        assert "peak_memory_bytes" in run.extra
        assert run.time_seconds == run.simulated_seconds

    def test_baseline_gas_run(self, runner):
        run = runner.run_baseline_gas("gowalla", cluster_of(TYPE_II, 2),
                                      enforce_memory=False)
        assert not run.failed
        assert run.recall > 0

    def test_baseline_failure_recorded_not_raised(self, runner):
        tiny = ClusterConfig(machine=TYPE_II, num_machines=2, memory_scale=1e-9)
        run = runner.run_baseline_gas("gowalla", tiny, enforce_memory=True)
        assert run.failed
        assert run.recall == 0.0
        assert "memory" in run.failure_reason.lower() or "exhausted" in run.failure_reason.lower()

    def test_snaple_failure_recorded_not_raised(self, runner):
        tiny = ClusterConfig(machine=TYPE_II, num_machines=2, memory_scale=1e-9)
        config = SnapleConfig.paper_default("linearSum", k_local=10)
        run = runner.run_snaple_gas("gowalla", config, tiny, enforce_memory=True)
        assert run.failed

    def test_random_walk_run(self, runner):
        run = runner.run_random_walk("gowalla", RandomWalkConfig(num_walks=20, depth=3))
        assert run.extra["walk_steps"] > 0
        assert 0.0 <= run.recall <= 1.0

    def test_random_walk_simulated_time_scales_with_walks(self, runner):
        few = runner.run_random_walk("gowalla", RandomWalkConfig(num_walks=10, depth=3))
        many = runner.run_random_walk("gowalla", RandomWalkConfig(num_walks=100, depth=3))
        assert many.simulated_seconds > few.simulated_seconds


class TestComparisons:
    def _run(self, recall: float, seconds: float) -> ExperimentRun:
        quality = QualityReport(recall=recall, precision=recall / 5,
                                mean_average_precision=recall, hits=0,
                                num_removed=1, num_predictions=5)
        return ExperimentRun(dataset="d", predictor="p", quality=quality,
                             wall_clock_seconds=seconds)

    def test_speedup(self):
        reference = self._run(0.1, 10.0)
        candidate = self._run(0.2, 2.0)
        assert ExperimentRunner.speedup(reference, candidate) == pytest.approx(5.0)

    def test_speedup_infinite_for_instant_candidate(self):
        assert math.isinf(
            ExperimentRunner.speedup(self._run(0.1, 10.0), self._run(0.1, 0.0))
        )

    def test_recall_gain(self):
        assert ExperimentRunner.recall_gain(
            self._run(0.1, 1.0), self._run(0.25, 1.0)
        ) == pytest.approx(2.5)

    def test_recall_gain_infinite_for_zero_reference(self):
        assert math.isinf(
            ExperimentRunner.recall_gain(self._run(0.0, 1.0), self._run(0.2, 1.0))
        )
