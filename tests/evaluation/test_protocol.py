"""Unit tests for the edge-removal evaluation protocol."""

from __future__ import annotations

import pytest

from repro.errors import EvaluationError
from repro.eval.protocol import holdout_split, remove_random_edges
from repro.graph.digraph import DiGraph


class TestRemoveRandomEdges:
    def test_only_eligible_vertices_lose_edges(self, small_social_graph):
        split = remove_random_edges(small_social_graph, min_degree=3, seed=0)
        for vertex in split.affected_vertices():
            assert small_social_graph.out_degree(vertex) > 3

    def test_one_edge_removed_per_eligible_vertex(self, small_social_graph):
        split = remove_random_edges(small_social_graph, edges_per_vertex=1, seed=0)
        removed_per_vertex: dict[int, int] = {}
        for source, _target in split.removed_edges:
            removed_per_vertex[source] = removed_per_vertex.get(source, 0) + 1
        assert all(count == 1 for count in removed_per_vertex.values())

    def test_removed_edges_existed_in_original(self, small_social_graph):
        split = remove_random_edges(small_social_graph, seed=0)
        for source, target in split.removed_edges:
            assert small_social_graph.has_edge(source, target)
            assert not split.train_graph.has_edge(source, target)

    def test_train_graph_edge_count(self, small_social_graph):
        split = remove_random_edges(small_social_graph, seed=0)
        assert (
            split.train_graph.num_edges
            == small_social_graph.num_edges - split.num_removed
        )

    def test_multiple_removals_leave_at_least_one_edge(self, small_social_graph):
        split = remove_random_edges(small_social_graph, edges_per_vertex=10, seed=0)
        for vertex in split.affected_vertices():
            assert split.train_graph.out_degree(vertex) >= 1

    def test_more_removals_remove_more_edges(self, small_social_graph):
        one = remove_random_edges(small_social_graph, edges_per_vertex=1, seed=0)
        three = remove_random_edges(small_social_graph, edges_per_vertex=3, seed=0)
        assert three.num_removed > one.num_removed

    def test_deterministic_given_seed(self, small_social_graph):
        first = remove_random_edges(small_social_graph, seed=7)
        second = remove_random_edges(small_social_graph, seed=7)
        assert first.removed_edges == second.removed_edges

    def test_different_seeds_differ(self, medium_social_graph):
        first = remove_random_edges(medium_social_graph, seed=1)
        second = remove_random_edges(medium_social_graph, seed=2)
        assert first.removed_edges != second.removed_edges

    def test_removed_targets_helper(self, small_social_graph):
        split = remove_random_edges(small_social_graph, seed=0)
        some_vertex = next(iter(split.affected_vertices()))
        targets = split.removed_targets(some_vertex)
        assert targets
        assert all((some_vertex, target) in split.removed_edges for target in targets)

    def test_validation(self, small_social_graph):
        with pytest.raises(EvaluationError):
            remove_random_edges(small_social_graph, edges_per_vertex=0)
        with pytest.raises(EvaluationError):
            remove_random_edges(small_social_graph, min_degree=-1)

    def test_no_eligible_vertices(self):
        sparse = DiGraph(4, [0, 1], [1, 2])
        split = remove_random_edges(sparse, min_degree=3)
        assert split.num_removed == 0
        assert split.train_graph.num_edges == sparse.num_edges


class TestHoldoutSplit:
    def test_fraction_of_edges_removed(self, medium_social_graph):
        split = holdout_split(medium_social_graph, fraction=0.1, seed=0)
        expected = int(medium_social_graph.num_edges * 0.1)
        assert split.num_removed == expected

    def test_invalid_fraction_rejected(self, small_social_graph):
        with pytest.raises(EvaluationError):
            holdout_split(small_social_graph, fraction=0.0)
        with pytest.raises(EvaluationError):
            holdout_split(small_social_graph, fraction=1.0)

    def test_train_plus_removed_covers_original(self, small_social_graph):
        split = holdout_split(small_social_graph, fraction=0.2, seed=1)
        total = split.train_graph.num_edges + split.num_removed
        assert total == small_social_graph.num_edges
