"""Unit tests for the plain-text table/figure rendering."""

from __future__ import annotations

import math

from repro.eval.report import FigureReport, Series, TextTable, format_number


class TestFormatNumber:
    def test_integers_rendered_plain(self):
        assert format_number(5.0) == "5"
        assert format_number(120) == "120"

    def test_floats_rounded(self):
        assert format_number(0.123456) == "0.123"
        assert format_number(0.123456, digits=1) == "0.1"

    def test_nan_and_infinity(self):
        assert format_number(float("nan")) == "-"
        assert format_number(math.inf) == "inf"
        assert format_number(-math.inf) == "-inf"


class TestTextTable:
    def test_rows_align_with_columns(self):
        table = TextTable(title="demo", columns=["name", "value"])
        table.add_row(["alpha", 1.5])
        table.add_row(["beta-longer", 22])
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[2]
        assert "alpha" in rendered
        assert "1.500" in rendered
        assert "22" in rendered

    def test_string_cells_not_reformatted(self):
        table = TextTable(title="t", columns=["a"])
        table.add_row(["0.28 (2.3)"])
        assert "0.28 (2.3)" in table.render()

    def test_column_width_accounts_for_long_cells(self):
        table = TextTable(title="t", columns=["x", "y"])
        table.add_row(["very-long-cell-content", 1])
        header_line, separator_line = table.render().splitlines()[2:4]
        assert len(separator_line) >= len("very-long-cell-content")
        assert len(header_line) == len(separator_line)


class TestSeriesAndFigure:
    def test_series_accumulates_points(self):
        series = Series(label="curve")
        series.add(1, 0.5)
        series.add(2, 0.7)
        assert series.xs() == [1.0, 2.0]
        assert series.ys() == [0.5, 0.7]
        assert "curve" in series.render()

    def test_figure_series_created_on_demand(self):
        figure = FigureReport(title="f", x_label="x", y_label="y")
        figure.add_point("a", 1, 2)
        figure.add_point("a", 2, 3)
        figure.add_point("b", 1, 1)
        assert set(figure.series) == {"a", "b"}
        assert figure.as_dict()["a"] == [(1.0, 2.0), (2.0, 3.0)]

    def test_figure_render_lists_all_series(self):
        figure = FigureReport(title="fig", x_label="k", y_label="recall")
        figure.add_point("zeta", 1, 0.1)
        figure.add_point("alpha", 1, 0.2)
        rendered = figure.render()
        assert "fig" in rendered
        assert rendered.index("alpha") < rendered.index("zeta")
