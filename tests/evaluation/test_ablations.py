"""Tests for the ablation experiments (small scale, shape-level assertions)."""

from __future__ import annotations

import pytest

from repro.eval.experiments import EXPERIMENTS
from repro.eval.experiments.ablation_alpha import run_ablation_alpha
from repro.eval.experiments.ablation_content import run_ablation_content
from repro.eval.experiments.ablation_engines import run_ablation_engines
from repro.eval.experiments.ablation_khop import run_ablation_khop
from repro.eval.experiments.ablation_partitioning import run_ablation_partitioning

SCALE = 0.12
SEED = 42


class TestAblationRegistry:
    def test_all_ablations_are_registered(self):
        for name in (
            "ablation-alpha",
            "ablation-content",
            "ablation-engines",
            "ablation-khop",
            "ablation-partitioning",
        ):
            assert name in EXPERIMENTS

    def test_registered_callables_accept_scale_and_seed(self):
        result = EXPERIMENTS["ablation-khop"](scale=SCALE, seed=SEED)
        assert result.rows


class TestAblationAlpha:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ablation_alpha(
            scale=SCALE, seed=SEED, datasets=("livejournal",), k_local=20
        )

    def test_covers_every_requested_alpha(self, result):
        alphas = {alpha for (_, alpha) in result.recalls}
        assert alphas == {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}

    def test_recalls_are_probabilities(self, result):
        assert all(0.0 <= value <= 1.0 for value in result.recalls.values())

    def test_pure_first_hop_weighting_is_worst(self, result):
        # alpha = 1 ignores the second hop entirely, so all candidates
        # reached through the same intermediate tie — recall must suffer.
        best = result.recall("livejournal", result.best_alpha("livejournal"))
        assert result.recall("livejournal", 1.0) < best

    def test_render_mentions_every_dataset(self, result):
        assert "livejournal" in result.render()


class TestAblationPartitioning:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ablation_partitioning(scale=SCALE, seed=SEED)

    def test_replication_factor_ordering(self, result):
        random_row = result.row("livejournal", "random")
        greedy_row = result.row("livejournal", "greedy")
        hdrf_row = result.row("livejournal", "hdrf")
        assert hdrf_row.replication_factor < greedy_row.replication_factor
        assert greedy_row.replication_factor < random_row.replication_factor

    def test_network_traffic_follows_replication(self, result):
        random_row = result.row("livejournal", "random")
        hdrf_row = result.row("livejournal", "hdrf")
        assert hdrf_row.network_mebibytes < random_row.network_mebibytes

    def test_partitioning_does_not_change_recall(self, result):
        recalls = {row.recall for row in result.rows}
        assert len(recalls) == 1

    def test_unknown_row_lookup_raises(self, result):
        with pytest.raises(KeyError):
            result.row("livejournal", "does-not-exist")

    def test_render_contains_all_partitioners(self, result):
        rendered = result.render()
        for name in ("random", "greedy", "hdrf"):
            assert name in rendered


class TestAblationEngines:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ablation_engines(scale=SCALE, seed=SEED)

    def test_all_engines_reach_the_same_recall(self, result):
        recalls = {row.recall for row in result.rows}
        assert len(recalls) == 1

    def test_greedy_gas_ships_fewest_bytes(self, result):
        greedy = result.row("livejournal", "GAS (greedy cut)")
        random_cut = result.row("livejournal", "GAS (random cut)")
        bsp = result.row("livejournal", "BSP (hash cut)")
        assert greedy.network_mebibytes < random_cut.network_mebibytes
        assert greedy.network_mebibytes < bsp.network_mebibytes

    def test_bsp_runs_four_supersteps_gas_runs_three(self, result):
        assert result.row("livejournal", "BSP (hash cut)").supersteps == 4
        assert result.row("livejournal", "GAS (random cut)").supersteps == 3

    def test_render_contains_all_engines(self, result):
        rendered = result.render()
        assert "GAS (greedy cut)" in rendered
        assert "BSP (hash cut)" in rendered

    def test_engines_parameter_restricts_rows(self):
        result = run_ablation_engines(scale=SCALE, seed=SEED,
                                      engines=("gas",))
        assert {row.engine for row in result.rows} == {"GAS (random cut)"}

    def test_unknown_engine_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown engine"):
            run_ablation_engines(scale=SCALE, seed=SEED, engines=("spark",))

    def test_to_dict_round_trips_through_json(self, result):
        import json

        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["num_machines"] == result.num_machines
        assert len(payload["rows"]) == len(result.rows)


class TestAblationKHop:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ablation_khop(scale=SCALE, seed=SEED, k_locals=(5,))

    def test_longer_paths_explore_many_more_candidates(self, result):
        two = result.row("livejournal", 2, 5)
        three = result.row("livejournal", 3, 5)
        assert three.explored_paths > 2 * two.explored_paths

    def test_two_hop_recall_is_non_trivial(self, result):
        assert result.row("livejournal", 2, 5).recall > 0.05

    def test_three_hop_recall_does_not_collapse(self, result):
        two = result.row("livejournal", 2, 5)
        three = result.row("livejournal", 3, 5)
        assert three.recall > 0.3 * two.recall

    def test_render_lists_both_path_lengths(self, result):
        rendered = result.render()
        assert " 2 " in rendered or "2  " in rendered
        assert " 3 " in rendered or "3  " in rendered


class TestAblationContent:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ablation_content(scale=SCALE, seed=SEED, k_local=20)

    def test_zero_weight_recall_is_identical_across_regimes(self, result):
        assert result.recall("homophilous profiles", 0.0) == pytest.approx(
            result.recall("random profiles", 0.0)
        )

    def test_random_profiles_degrade_at_full_content_weight(self, result):
        assert result.recall("random profiles", 1.0) < result.recall(
            "random profiles", 0.0
        )

    def test_homophilous_profiles_beat_random_profiles_at_full_weight(self, result):
        assert result.recall("homophilous profiles", 1.0) > result.recall(
            "random profiles", 1.0
        )

    def test_moderate_weight_with_homophilous_profiles_stays_competitive(self, result):
        topo = result.recall("homophilous profiles", 0.0)
        blended = result.recall("homophilous profiles", 0.5)
        assert blended > 0.85 * topo

    def test_render_contains_both_regimes(self, result):
        rendered = result.render()
        assert "homophilous profiles" in rendered
        assert "random profiles" in rendered
