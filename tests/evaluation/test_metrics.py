"""Unit tests for the recall/precision/MAP metrics."""

from __future__ import annotations

import pytest

from repro.eval.metrics import (
    evaluate_predictions,
    mean_average_precision,
    precision,
    recall,
)
from repro.eval.protocol import EdgeRemovalSplit
from repro.graph.digraph import DiGraph


def _make_split(removed: set[tuple[int, int]]) -> EdgeRemovalSplit:
    return EdgeRemovalSplit(
        train_graph=DiGraph(10, [], []),
        removed_edges=frozenset(removed),
        removed_per_vertex=1,
        min_degree=3,
        seed=0,
    )


class TestRecall:
    def test_perfect_recall(self):
        split = _make_split({(0, 1), (2, 3)})
        predictions = {0: [1], 2: [3]}
        assert recall(predictions, split) == pytest.approx(1.0)

    def test_zero_recall(self):
        split = _make_split({(0, 1)})
        assert recall({0: [5, 6]}, split) == 0.0

    def test_partial_recall(self):
        split = _make_split({(0, 1), (2, 3), (4, 5), (6, 7)})
        predictions = {0: [1], 2: [9], 4: [5], 6: []}
        assert recall(predictions, split) == pytest.approx(0.5)

    def test_empty_split(self):
        assert recall({0: [1]}, _make_split(set())) == 0.0

    def test_wrong_direction_not_counted(self):
        split = _make_split({(0, 1)})
        assert recall({1: [0]}, split) == 0.0


class TestPrecision:
    def test_precision_counts_correct_fraction_of_answers(self):
        split = _make_split({(0, 1)})
        predictions = {0: [1, 2, 3, 4, 5]}
        assert precision(predictions, split) == pytest.approx(0.2)

    def test_precision_with_no_predictions(self):
        assert precision({}, _make_split({(0, 1)})) == 0.0

    def test_precision_proportional_to_recall_with_fixed_k(self):
        # With one removed edge per vertex and k answers per vertex,
        # precision = recall / k (Section 5.2 of the paper).
        split = _make_split({(0, 1), (2, 3)})
        predictions = {0: [1, 9, 9, 9, 9], 2: [8, 8, 8, 8, 8]}
        assert precision(predictions, split) == pytest.approx(
            recall(predictions, split) / 5
        )


class TestMAP:
    def test_hit_at_rank_one(self):
        split = _make_split({(0, 1)})
        assert mean_average_precision({0: [1, 2, 3]}, split) == pytest.approx(1.0)

    def test_hit_at_rank_two(self):
        split = _make_split({(0, 1)})
        assert mean_average_precision({0: [9, 1]}, split) == pytest.approx(0.5)

    def test_miss_gives_zero(self):
        split = _make_split({(0, 1)})
        assert mean_average_precision({0: [7, 8]}, split) == 0.0

    def test_empty_split(self):
        assert mean_average_precision({0: [1]}, _make_split(set())) == 0.0


class TestQualityReport:
    def test_report_fields_consistent(self):
        split = _make_split({(0, 1), (2, 3)})
        predictions = {0: [1, 7], 2: [9, 8]}
        report = evaluate_predictions(predictions, split)
        assert report.hits == 1
        assert report.num_removed == 2
        assert report.num_predictions == 4
        assert report.recall == pytest.approx(0.5)
        assert report.precision == pytest.approx(0.25)

    def test_describe_contains_numbers(self):
        split = _make_split({(0, 1)})
        report = evaluate_predictions({0: [1]}, split)
        text = report.describe()
        assert "recall=1.000" in text
        assert "hits=1/1" in text
